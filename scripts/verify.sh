#!/usr/bin/env sh
# Tier-1 verification wrapper (see ROADMAP.md): runs the full test suite
# with the src/ layout on the path. Usage: scripts/verify.sh [pytest args]
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" exec python -m pytest -x -q "$@"
