#!/usr/bin/env python
"""End-to-end serving smoke: train → bundle → serve → traffic → scrape.

What CI's ``serve-smoke`` job (``make serve-smoke``) runs.  The script

1. trains a tiny GCN on the tiny IMDB spec and exports a model bundle,
2. starts :class:`repro.serving.ServingServer` with tracing and access
   logging wired into a JSONL event sink,
3. drives real HTTP traffic: predictions (cold + warm), an onboard, the
   health/readiness probes, and a readiness drain/restore cycle,
4. scrapes ``/metrics`` to ``SERVE_metrics.txt`` and leaves the span +
   access records in ``SERVE_trace.jsonl`` (both uploaded as CI
   artifacts),
5. validates the scrape with :func:`repro.telemetry.parse_prometheus`
   and checks the trace file contains a complete
   ``http_request → batch → forward`` chain under one trace id.

Exits non-zero on any failed check, so the job is a real gate rather
than a log producer.
"""

from __future__ import annotations

import json
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.completion import FixedAssignmentFeatures, SearchSpace  # noqa: E402
from repro.datasets import get_dataset  # noqa: E402
from repro.models import build_model  # noqa: E402
from repro.serving import (  # noqa: E402
    DatasetSpec,
    EngineConfig,
    InferenceEngine,
    ServingServer,
    build_bundle,
)
from repro.telemetry import (  # noqa: E402
    EventSink,
    Tracer,
    parse_prometheus,
)
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed  # noqa: E402

HIDDEN_DIM = 32
EPOCHS = 3
NUM_QUERIES = 12
METRICS_OUT = REPO / "SERVE_metrics.txt"
TRACE_OUT = REPO / "SERVE_trace.jsonl"

_failures: list = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def export_bundle(tmp_dir: Path) -> Path:
    set_seed(0)
    dataset = get_dataset("imdb", scale="tiny", seed=0)
    space = SearchSpace()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, len(space),
                              size=dataset.missing_global_ids.shape[0])
    features = FixedAssignmentFeatures(dataset, HIDDEN_DIM, assignment,
                                       space=space)
    model = build_model("gcn", dataset, hidden_dim=HIDDEN_DIM,
                        out_dim=HIDDEN_DIM)
    NodeClassificationTrainer(model, features, dataset,
                              TrainConfig(epochs=EPOCHS, patience=10)).train()
    bundle = build_bundle(dataset, DatasetSpec("imdb", "tiny", 0), "gcn",
                          model, features, hidden_dim=HIDDEN_DIM,
                          out_dim=HIDDEN_DIM)
    return bundle.save(tmp_dir / "serve_smoke_bundle.npz")


def get(url: str):
    try:
        with urllib.request.urlopen(url, timeout=30) as reply:
            return reply.status, reply.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


def post(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=60) as reply:
        return reply.status, json.loads(reply.read())


def drive_traffic(server: ServingServer) -> None:
    print("traffic:")
    status, body = get(server.url + "/healthz")
    check(status == 200 and json.loads(body)["check"] == "liveness",
          "/healthz answers the liveness probe")
    status, body = get(server.url + "/readyz")
    check(status == 200 and json.loads(body)["status"] == "ready",
          "/readyz reports ready")

    ids = list(range(NUM_QUERIES))
    status, payload = post(server.url + "/predict", {"node_ids": ids})
    check(status == 200 and len(payload["predictions"]) == NUM_QUERIES,
          f"cold /predict answers {NUM_QUERIES} queries")
    status, warm = post(server.url + "/predict", {"node_ids": ids})
    check(status == 200 and warm["predictions"] == payload["predictions"],
          "warm /predict repeats the cold answers from cache")

    status, onboarded = post(server.url + "/onboard", {
        "node_type": "actor",
        "edges": {"movie:stars:actor": [0, 1]},
    })
    check(status == 200 and onboarded["node_type"] == "actor",
          "/onboard adds a node online")

    server.set_ready(False)
    status, _ = get(server.url + "/readyz")
    check(status == 503, "/readyz flips to 503 while draining")
    status, _ = get(server.url + "/healthz")
    check(status == 200, "/healthz stays alive while draining")
    server.set_ready(True)
    check(get(server.url + "/readyz")[0] == 200,
          "/readyz recovers after the drain")

    status, stats = get(server.url + "/stats")
    stats = json.loads(stats)
    check(status == 200 and stats["queries"] >= 2 * NUM_QUERIES,
          "/stats sees the traffic")
    check(all(key in stats["latency"]
              for key in ("p50_ms", "p95_ms", "p99_ms")),
          "/stats reports latency percentiles")


def validate_scrape(text: str) -> None:
    print("scrape:")
    parsed = parse_prometheus(text)  # raises MetricError on bad format
    names = {name for name, _ in parsed["samples"]}
    check(bool(parsed["samples"]), "scrape parses as Prometheus 0.0.4 text")
    for family in ("engine_queries_total", "engine_batches_total",
                   "engine_cache_requests_total",
                   "engine_query_seconds_bucket", "http_requests_total",
                   "http_request_seconds_count", "onboard_nodes_total",
                   "train_epochs_total"):
        check(family in names, f"scrape covers {family}")
    hits = parsed["samples"].get(
        ("engine_cache_requests_total", (("result", "hit"),)), 0)
    misses = parsed["samples"].get(
        ("engine_cache_requests_total", (("result", "miss"),)), 0)
    check(hits >= NUM_QUERIES and misses >= NUM_QUERIES,
          "cache hit/miss labels both saw traffic")


def validate_trace(path: Path) -> None:
    print("trace:")
    records = [json.loads(line) for line in
               path.read_text().splitlines() if line.strip()]
    spans = [record for record in records if record["kind"] == "span"]
    access = [record for record in records if record["kind"] == "access"]
    check(bool(access), "access log records were emitted")
    check(all(entry["trace_id"] for entry in access),
          "every access record carries a trace id")

    # at least one request produced the full http → batch → forward chain
    by_id = {span["span_id"]: span for span in spans}
    chains = 0
    for span in spans:
        if span["name"] != "forward":
            continue
        batch = by_id.get(span["parent_id"])
        if batch is None or batch["name"] != "batch":
            continue
        root = by_id.get(batch["parent_id"])
        if (root is not None and root["name"] == "http_request"
                and root["trace_id"] == batch["trace_id"]
                == span["trace_id"]):
            chains += 1
    check(chains >= 1,
          "a traced request chains http_request → batch → forward "
          "under one trace id")
    check(any(span.get("attrs", {}).get("ops") for span in spans
              if span["name"] == "forward"),
          "forward spans captured per-op timings")


def main() -> int:
    TRACE_OUT.unlink(missing_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        print("exporting bundle (tiny IMDB, gcn)...")
        bundle_path = export_bundle(Path(tmp))
        sink = EventSink(str(TRACE_OUT))
        engine = InferenceEngine.from_path(
            bundle_path, EngineConfig(max_batch_size=NUM_QUERIES),
            tracer=Tracer(sink))
        server = ServingServer(engine, port=0,
                               access_sink=sink).start_background()
        print(f"serving on {server.url}")
        try:
            drive_traffic(server)
            status, text = get(server.url + "/metrics")
            check(status == 200, "/metrics scrape succeeds")
            METRICS_OUT.write_text(text)
            validate_scrape(text)
        finally:
            server.shutdown()
            sink.close()
    validate_trace(TRACE_OUT)
    print(f"artifacts: {METRICS_OUT.name}, {TRACE_OUT.name}")
    if _failures:
        print(f"\nserve-smoke FAILED ({len(_failures)} checks):")
        for message in _failures:
            print(f"  - {message}")
        return 1
    print("\nserve-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
