#!/usr/bin/env python
"""Chaos smoke: deterministic fault injection against the live stack.

What CI's ``chaos-smoke`` job (``make chaos-smoke``) runs.  Every fault
comes from a seeded :class:`repro.faults.FaultPlan`, so a failing run
replays identically.  Three phases, each leaving accounting records in
``CHAOS_report.jsonl``:

1. **serving under fire** — a live :class:`ServingServer` with a plan
   that raises inside the engine's batch flush ~35% of the time.  A
   retrying client drives predictions and proves the contract: *no
   request is ever lost without an explicit 5xx* — every attempt gets a
   definite answer, failed attempts recover on retry, and the process
   stays alive and consistent throughout.
2. **torn artifacts** — the same plan machinery corrupts the bytes of a
   bundle as they are written; loading the damaged file must raise
   :class:`BundleIntegrityError` (a torn artifact is *rejected*, never
   served), while a clean rewrite round-trips.
3. **trial-worker chaos** — an autotune search with ``kill`` faults
   shooting worker processes mid-trial must self-heal to the *identical
   leaderboard* as an undisturbed run, and resuming from its journal
   must replay every verdict without re-executing anything.
4. **serving-tier worker kills** — a 2-worker preforked tier with a
   ``kill`` rule shooting workers mid-*predict* (never mid-onboard: the
   WAL append is the commit point, and killing between append and reply
   would make client retries at-least-once).  Clients must see zero
   failures — the front requeues the dead worker's in-flight batch and
   forks a replacement that replays the onboarding WAL — and the full
   leaderboard of served predictions (base + onboarded nodes) must be
   identical before and after every death.

Exits non-zero on any failed check, so the job is a real gate.
"""

from __future__ import annotations

import json
import multiprocessing
import sys
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.completion import FixedAssignmentFeatures, SearchSpace  # noqa: E402
from repro.faults import FaultPlan, FaultRule, armed  # noqa: E402
from repro.models import build_model  # noqa: E402
from repro.serving import (  # noqa: E402
    BundleIntegrityError,
    DatasetSpec,
    EngineConfig,
    InferenceEngine,
    ModelBundle,
    ServerConfig,
    ServingServer,
    build_bundle,
)
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed  # noqa: E402

HIDDEN_DIM = 32
EPOCHS = 3
NUM_REQUESTS = 40
MAX_ATTEMPTS = 10
FLUSH_FAILURE_RATE = 0.35
CHAOS_SEED = 11
REPORT_OUT = REPO / "CHAOS_report.jsonl"

_failures: list = []
_records: list = []


def check(condition: bool, message: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {message}")
    if not condition:
        _failures.append(message)


def record(kind: str, **fields) -> None:
    _records.append({"kind": kind, **fields})


def export_bundle(tmp_dir: Path) -> Path:
    from repro.datasets import get_dataset

    set_seed(0)
    dataset = get_dataset("imdb", scale="tiny", seed=0)
    space = SearchSpace()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, len(space),
                              size=dataset.missing_global_ids.shape[0])
    features = FixedAssignmentFeatures(dataset, HIDDEN_DIM, assignment,
                                       space=space)
    model = build_model("gcn", dataset, hidden_dim=HIDDEN_DIM,
                        out_dim=HIDDEN_DIM)
    NodeClassificationTrainer(model, features, dataset,
                              TrainConfig(epochs=EPOCHS, patience=10)).train()
    bundle = build_bundle(dataset, DatasetSpec("imdb", "tiny", 0), "gcn",
                          model, features, hidden_dim=HIDDEN_DIM,
                          out_dim=HIDDEN_DIM)
    return bundle.save(tmp_dir / "chaos_bundle.npz")


def post(url: str, payload: dict):
    """POST returning (status, body-dict); HTTP errors are answers too."""
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def get(url: str):
    with urllib.request.urlopen(url, timeout=30) as reply:
        return reply.status, json.loads(reply.read())


# ---------------------------------------------------------------------------
# Phase 1: serving under fire
# ---------------------------------------------------------------------------
def phase_serving(bundle_path: Path) -> float:
    print("phase 1: serving under injected flush failures")
    plan = FaultPlan(
        [FaultRule(site="engine.flush", action="raise",
                   probability=FLUSH_FAILURE_RATE,
                   message="injected flush chaos"),
         FaultRule(site="engine.forward", action="delay",
                   latency_ms=30.0, max_hits=4)],
        seed=CHAOS_SEED)
    engine = InferenceEngine.from_path(
        bundle_path, EngineConfig(max_batch_size=8))
    server = ServingServer(engine, port=0,
                           config=ServerConfig(max_inflight=4)
                           ).start_background()
    reference = None
    failed_once = recovered = lost = answered_5xx = 0
    try:
        with armed(plan, export_env=False):
            for index in range(NUM_REQUESTS):
                node_id = index % 8
                attempts = 0
                final_status = None
                for attempts in range(1, MAX_ATTEMPTS + 1):
                    status, body = post(server.url + "/predict",
                                        {"node_ids": [node_id]})
                    final_status = status
                    if status == 200:
                        break
                    # the contract under test: a failed attempt is an
                    # explicit server-side error, never a hang or a
                    # silent drop
                    answered_5xx += 1
                    if status < 500:
                        break
                if attempts > 1:
                    failed_once += 1
                if final_status == 200 and attempts > 1:
                    recovered += 1
                if final_status != 200:
                    lost += 1
                record("request", index=index, node_id=node_id,
                       attempts=attempts, final_status=final_status)
        counters = plan.counters()["engine.flush#0"]
        delays = plan.counters()["engine.forward#1"]
        print(f"  injected {counters['hits']} failures over "
              f"{counters['visits']} flushes (+{delays['hits']} delayed "
              f"forwards); {failed_once} requests needed retries, "
              f"{recovered} recovered")
        check(counters["hits"] >= 3,
              "the plan actually injected flush failures")
        check(delays["hits"] >= 1,
              "the plan actually delayed forwards")
        check(lost == 0,
              f"every request eventually succeeded ({lost} lost)")
        check(failed_once > 0 and recovered == failed_once,
              "every initially-failed request recovered via retry")
        status, body = get(server.url + "/healthz")
        check(status == 200 and body["status"] == "ok",
              "/healthz alive after the fault storm")
        # the engine still serves clean traffic once the plan is gone
        status, _ = post(server.url + "/predict",
                         {"node_ids": list(range(8))})
        check(status == 200, "fault-free traffic serves after disarm")
    finally:
        server.shutdown()
        engine.close()
    rate = (recovered / failed_once) if failed_once else 1.0
    record("phase", phase="serving", failed_once=failed_once,
           recovered=recovered, lost=lost, answered_5xx=answered_5xx,
           recovered_rate=rate)
    return rate


# ---------------------------------------------------------------------------
# Phase 2: torn artifacts
# ---------------------------------------------------------------------------
def phase_artifacts(bundle_path: Path, tmp_dir: Path) -> None:
    print("phase 2: corrupted bundle writes are rejected at load")
    bundle = ModelBundle.load(bundle_path)
    torn_path = tmp_dir / "torn_bundle.npz"
    corrupt = FaultPlan(
        [FaultRule(site="io.atomic_write", action="corrupt")],
        seed=CHAOS_SEED)
    with armed(corrupt, export_env=False):
        bundle.save(torn_path)
    rejected = False
    try:
        ModelBundle.load(torn_path)
    except BundleIntegrityError as error:
        rejected = True
        print(f"  rejected as expected: {str(error)[:72]}...")
    check(rejected, "a corrupted bundle write fails load with "
                    "BundleIntegrityError")
    # the same save path round-trips bit-exact once the fault is gone
    clean_path = tmp_dir / "clean_bundle.npz"
    bundle.save(clean_path)
    reloaded = ModelBundle.load(clean_path)
    check(reloaded.model_name == bundle.model_name,
          "a clean write of the same bundle still round-trips")
    record("phase", phase="artifacts", rejected=rejected)


# ---------------------------------------------------------------------------
# Phase 3: trial-worker chaos
# ---------------------------------------------------------------------------
def phase_autotune(tmp_dir: Path) -> None:
    print("phase 3: killed trial workers self-heal to the same result")
    if "fork" not in multiprocessing.get_all_start_methods():
        print("  skipped: no fork start method on this platform")
        record("phase", phase="autotune", skipped=True)
        return

    from repro.autotune import DatasetRef, TrialScheduler, TuneTask, build_strategy

    task = TuneTask(dataset=DatasetRef("imdb", "tiny", 0), model_name="gcn",
                    hidden_dim=16, out_dim=16, num_slots=4, max_budget=4)

    def run(journal=None, resume=False):
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, seed=3,
                                  num_trials=4)
        return TrialScheduler(task, strategy, workers=2, mp_context="fork",
                              journal=journal, resume=resume,
                              max_trial_retries=2,
                              retry_backoff_s=0.01).run()

    baseline = run()
    journal_path = tmp_dir / "chaos_tune.jsonl"
    kills = FaultPlan([FaultRule(site="worker.trial", action="kill",
                                 keys=("1:0", "3:0"))], seed=CHAOS_SEED)
    with armed(kills):  # exported: the pool workers inherit the plan
        chaotic = run(journal=journal_path)
    print(f"  worker deaths: {chaotic.stats.worker_deaths}, "
          f"retries: {chaotic.stats.retried}, "
          f"quarantined: {chaotic.stats.quarantined}")
    check(chaotic.stats.worker_deaths >= 2,
          "the kill rules actually shot workers")
    check(chaotic.stats.quarantined == 0,
          "transient deaths retried instead of quarantining")
    want = [(r.trial_id, r.score) for r in baseline.leaderboard()]
    got = [(r.trial_id, r.score) for r in chaotic.leaderboard()]
    check(want == got,
          "the self-healed leaderboard is identical to the undisturbed one")

    resumed = run(journal=journal_path, resume=True)
    check(resumed.stats.executed == 0 and resumed.stats.replayed >= 4,
          "resume replays the chaotic run's journal without re-executing")
    resumed_board = [(r.trial_id, r.score) for r in resumed.leaderboard()]
    check(resumed_board == want, "the resumed leaderboard matches too")
    record("phase", phase="autotune",
           worker_deaths=chaotic.stats.worker_deaths,
           retried=chaotic.stats.retried,
           leaderboard_identical=want == got)


# ---------------------------------------------------------------------------
# Phase 4: serving-tier worker kills
# ---------------------------------------------------------------------------
def phase_tier(bundle_path: Path, tmp_dir: Path) -> None:
    print("phase 4: tier workers shot mid-predict; clients never notice")
    if "fork" not in multiprocessing.get_all_start_methods():
        print("  skipped: no fork start method on this platform")
        record("phase", phase="tier", skipped=True)
        return

    import time

    from repro.datasets import get_dataset
    from repro.serving import FrontendConfig, ServingTier, TierConfig

    raw_dim = get_dataset("imdb", scale="tiny",
                          seed=0).features["movie"].shape[1]
    wal_path = tmp_dir / "tier_onboard.wal"
    # each worker process dies on its 7th visit that is a predict op;
    # forked replacements inherit fresh counters, so sustained traffic
    # keeps shooting them — the respawn budget must absorb it all
    plan = FaultPlan([FaultRule(site="tier.worker.loop", action="kill",
                                keys=("predict",), after=6, max_hits=1)],
                     seed=CHAOS_SEED)
    with armed(plan):  # exported: forked workers inherit the plan
        tier = ServingTier(
            bundle_path, TierConfig(workers=2, wal_path=wal_path),
            frontend_config=FrontendConfig(deadline_ms=60_000.0)
            ).start_background()
        try:
            status, onboarded = post(tier.url + "/onboard", {
                "node_type": "movie",
                "edges": {"movie:stars:actor": [0, 1]},
                "raw_features": [0.25] * raw_dim})
            check(status == 200, "onboarding through the writer succeeds")
            new_id = onboarded["node_id"]
            every_id = list(range(new_id)) + [new_id]

            status, before = post(tier.url + "/predict",
                                  {"node_ids": every_id})
            check(status == 200, "full leaderboard served pre-chaos")

            # NO client-side retry loop: a killed worker's batch is
            # requeued by the front, so every request must answer 200
            lost = 0
            for index in range(30):
                status, body = post(tier.url + "/predict",
                                    {"node_ids": [every_id[
                                        index % len(every_id)]]})
                if status != 200:
                    lost += 1
                record("tier_request", index=index, status=status)
            check(lost == 0,
                  f"no request lost across worker kills ({lost} lost)")

            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                stats = get(tier.url + "/stats")[1]
                if stats["tier"]["alive"] >= 2:
                    break
                time.sleep(0.2)
            deaths = stats["tier"]["deaths"]
            respawns = stats["tier"]["respawns"]
            print(f"  worker deaths: {deaths}, respawns: {respawns}")
            check(deaths >= 1, "the kill rule actually shot tier workers")
            check(respawns >= 1, "dead workers were respawned")
            check(stats["tier"]["alive"] == 2,
                  "the tier is back to full capacity")

            status, after = post(tier.url + "/predict",
                                 {"node_ids": every_id})
            identical = (status == 200
                         and after["predictions"] == before["predictions"])
            check(identical,
                  "the served leaderboard (base + onboarded) is identical "
                  "after every death — respawns replayed the WAL")
        finally:
            tier.shutdown()
    rate = 1.0 if lost == 0 else 1.0 - lost / 30.0
    record("phase", phase="tier", deaths=deaths, respawns=respawns,
           lost=lost, leaderboard_identical=identical,
           recovered_rate=rate)


def main() -> int:
    REPORT_OUT.unlink(missing_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        tmp_dir = Path(tmp)
        print("exporting bundle (tiny IMDB, gcn)...")
        bundle_path = export_bundle(tmp_dir)
        rate = phase_serving(bundle_path)
        phase_artifacts(bundle_path, tmp_dir)
        phase_autotune(tmp_dir)
        phase_tier(bundle_path, tmp_dir)
    record("summary", recovered_rate=rate, checks_failed=len(_failures))
    with REPORT_OUT.open("w", encoding="utf-8") as handle:
        for entry in _records:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"artifacts: {REPORT_OUT.name}")
    if _failures:
        print(f"\nchaos-smoke FAILED ({len(_failures)} checks):")
        for message in _failures:
            print(f"  - {message}")
        return 1
    print(f"\nchaos-smoke passed (recovered-request rate: {rate:.2f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
