"""Chaos recovery guard — fault-injected serving must fully recover.

Not a paper table: this benchmark guards the robustness layer
(``repro.faults`` + the serving hardening, see docs/ROBUSTNESS.md).  It
trains a small bundle, serves it through a live HTTP server, arms a
seeded fault plan that raises inside the engine's batch flush ~35% of
the time, and drives a retrying client through it.

The contract asserted (and recorded into ``BENCH_perf.json``):

* every failed attempt is an explicit 5xx answer — nothing hangs and
  nothing is silently dropped;
* **every** initially-failed request recovers on retry
  (``chaos_recovered_rate == 1.0``);
* the server is still alive and serving clean traffic afterwards.
"""

from __future__ import annotations

import json
import tempfile
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np

from repro.completion import FixedAssignmentFeatures, SearchSpace
from repro.faults import FaultPlan, FaultRule, armed
from repro.models import build_model
from repro.serving import (
    DatasetSpec,
    EngineConfig,
    InferenceEngine,
    ServerConfig,
    ServingServer,
    build_bundle,
)
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed

from conftest import SCALE, run_once

NUM_REQUESTS = 40
MAX_ATTEMPTS = 10
FLUSH_FAILURE_RATE = 0.35
CHAOS_SEED = 11
HIDDEN_DIM = 32
EPOCHS = 3


def _export_bundle(tmp_dir: Path, scale: str) -> Path:
    from repro.datasets import get_dataset

    set_seed(0)
    dataset = get_dataset("imdb", scale=scale, seed=0)
    space = SearchSpace()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, len(space),
                              size=dataset.missing_global_ids.shape[0])
    features = FixedAssignmentFeatures(dataset, HIDDEN_DIM, assignment,
                                       space=space)
    model = build_model("gcn", dataset, hidden_dim=HIDDEN_DIM,
                        out_dim=HIDDEN_DIM)
    NodeClassificationTrainer(model, features, dataset,
                              TrainConfig(epochs=EPOCHS, patience=10)).train()
    bundle = build_bundle(dataset, DatasetSpec("imdb", scale, 0), "gcn",
                          model, features, hidden_dim=HIDDEN_DIM,
                          out_dim=HIDDEN_DIM)
    return bundle.save(tmp_dir / "chaos_recovery_bundle.npz")


def _post(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=60) as reply:
            return reply.status, json.loads(reply.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def drive(scale: str = SCALE) -> dict:
    plan = FaultPlan(
        [FaultRule(site="engine.flush", action="raise",
                   probability=FLUSH_FAILURE_RATE,
                   message="injected flush chaos")],
        seed=CHAOS_SEED)
    with tempfile.TemporaryDirectory() as tmp:
        path = _export_bundle(Path(tmp), scale)
        engine = InferenceEngine.from_path(
            path, EngineConfig(max_batch_size=8))
        server = ServingServer(engine, port=0,
                               config=ServerConfig(max_inflight=4)
                               ).start_background()
        failed_once = recovered = lost = hung = 0
        try:
            with armed(plan, export_env=False):
                for index in range(NUM_REQUESTS):
                    final_status = None
                    attempts = 0
                    for attempts in range(1, MAX_ATTEMPTS + 1):
                        try:
                            final_status, _ = _post(
                                server.url + "/predict",
                                {"node_ids": [index % 8]})
                        except OSError:
                            hung += 1
                            break
                        if final_status == 200:
                            break
                    if attempts > 1:
                        failed_once += 1
                        if final_status == 200:
                            recovered += 1
                    if final_status != 200:
                        lost += 1
            status, _ = _post(server.url + "/predict",
                              {"node_ids": list(range(8))})
            alive_after = status == 200
            counters = plan.counters()["engine.flush#0"]
        finally:
            server.shutdown()
            engine.close()
    return {
        "injected": counters["hits"],
        "flushes": counters["visits"],
        "failed_once": failed_once,
        "recovered": recovered,
        "lost": lost,
        "hung": hung,
        "alive_after": alive_after,
        "recovered_rate": (recovered / failed_once) if failed_once else 1.0,
    }


def test_chaos_recovery(benchmark, record_benchmark):
    result = run_once(benchmark, drive)
    record_benchmark("chaos_recovered_rate", result["recovered_rate"],
                     "fraction")
    record_benchmark("chaos_injected_failures", result["injected"], "faults")
    print()
    print(f"injected {result['injected']} flush failures over "
          f"{result['flushes']} flushes")
    print(f"retried  {result['failed_once']} requests, recovered "
          f"{result['recovered']} (rate {result['recovered_rate']:.2f})")

    assert result["injected"] >= 3, "the plan never fired — no chaos applied"
    assert result["hung"] == 0, "a request hung instead of failing fast"
    assert result["lost"] == 0, "a request was lost without recovery"
    assert result["failed_once"] > 0, "no request ever needed a retry"
    assert result["recovered_rate"] == 1.0
    assert result["alive_after"], "server did not serve clean traffic after"
