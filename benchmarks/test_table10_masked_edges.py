"""Table X — varying masked-edge rates in link prediction.

Paper shape: AutoAC beats the plain backbone at every mask rate, and both
degrade as more edges are masked.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import reporting, tables

from conftest import run_once


def test_table10(benchmark, scale):
    result = run_once(benchmark, tables.table10, scale=scale,
                      datasets=("imdb",), mask_rates=(0.05, 0.10, 0.30))
    print()
    print(reporting.render_table10(result))

    for ds_name, ladder in result["rows"].items():
        # degradation direction: the easiest setting beats the hardest
        assert ladder[0]["baseline_roc_auc"] >= ladder[-1]["baseline_roc_auc"] - 0.10
        wins = sum(row["autoac_roc_auc"] > row["baseline_roc_auc"] - 0.05
                   for row in ladder)
        assert wins >= len(ladder) - 1, (
            f"AutoAC should be competitive at (almost) every mask rate on {ds_name}")
