"""Table III — AutoAC vs the attention-based completion baseline HGNN-AC.

Paper shape: AutoAC beats HGNN-AC on every dataset/backbone; HGNN-AC's
gains over the plain backbone are unstable (sometimes negative).
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table3(benchmark, scale):
    result = run_once(benchmark, tables.table3, scale=scale,
                      backbones=("simple_hgn",))
    print()
    print(reporting.render_node_clf_table(result))

    rows = result["rows"]
    wins = 0
    for ds_name in result["datasets"]:
        autoac = rows["simple_hgn-autoac"][ds_name]["macro_f1"]
        hgnnac = rows["simple_hgn-hgnnac"][ds_name]["macro_f1"]
        if autoac > hgnnac:
            wins += 1
    assert wins >= len(result["datasets"]) - 1, (
        "AutoAC should beat HGNN-AC on (almost) every dataset")
