"""Figure 4 — convergence of the unsupervised clustering loss L_GmoC.

Paper shape: a stable decreasing trend on every dataset.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure4(benchmark, scale):
    result = run_once(benchmark, figures.figure4, scale=scale)
    print()
    print(reporting.render_figure4(result))

    for ds_name, trace in result["traces"].items():
        arr = np.asarray(trace)
        assert arr.size >= 10, f"search on {ds_name} ended too early"
        head = arr[: max(arr.size // 5, 1)].mean()
        tail = arr[-max(arr.size // 5, 1):].mean()
        assert tail <= head + 1e-6, (
            f"L_GmoC should trend downward on {ds_name}: "
            f"head={head:.4f} tail={tail:.4f}")
