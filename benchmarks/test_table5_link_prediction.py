"""Table V — link prediction (ROC-AUC / MRR) with 10% masked target edges.

Paper shape: SimpleHGN is the strongest baseline; SimpleHGN-AutoAC improves
it further (dramatically on IMDB in the paper).
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table5(benchmark, scale):
    result = run_once(benchmark, tables.table5, scale=scale,
                      datasets=("lastfm", "imdb"))
    print()
    print(reporting.render_table5(result))

    rows = result["rows"]
    for ds_name in result["datasets"]:
        assert rows["simple_hgn"][ds_name]["roc_auc"] > 0.5, (
            "SimpleHGN must beat random on link prediction")
        autoac = rows["simple_hgn-autoac"][ds_name]["roc_auc"]
        baseline = rows["simple_hgn"][ds_name]["roc_auc"]
        assert autoac > baseline - 0.08, (
            f"AutoAC link prediction should be competitive on {ds_name}")
