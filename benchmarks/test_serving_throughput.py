"""Serving engine — micro-batching and cache speedups.

Not a paper table: this benchmark guards the serving subsystem
(`repro.serving`).  It trains a small bundle, then measures three serving
regimes on fresh engines:

* **single-query** — every query arrives alone, so every cold query pays
  one full model forward;
* **batched** — the same queries arrive together and share one forward
  per micro-batch (``max_batch_size``);
* **warm** — repeat queries are answered from the LRU result cache.

Asserted floors: batched throughput ≥ 3× single-query throughput, and a
warm cache hit ≥ 10× faster than a cold query.  Both margins are huge in
practice (batching B queries saves B-1 forwards; a warm hit is a
dictionary lookup), so the floors stay robust on slow CI machines.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.completion import FixedAssignmentFeatures, SearchSpace
from repro.models import build_model
from repro.serving import DatasetSpec, EngineConfig, InferenceEngine, build_bundle
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed

from conftest import SCALE, run_once

NUM_QUERIES = 16
WARM_REPEATS = 25
HIDDEN_DIM = 32
EPOCHS = 3


def _export_bundle(tmp_dir: Path, scale: str) -> Path:
    from repro.datasets import get_dataset

    set_seed(0)
    dataset = get_dataset("imdb", scale=scale, seed=0)
    space = SearchSpace()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, len(space),
                              size=dataset.missing_global_ids.shape[0])
    features = FixedAssignmentFeatures(dataset, HIDDEN_DIM, assignment,
                                       space=space)
    model = build_model("gcn", dataset, hidden_dim=HIDDEN_DIM,
                        out_dim=HIDDEN_DIM)
    NodeClassificationTrainer(model, features, dataset,
                              TrainConfig(epochs=EPOCHS, patience=10)).train()
    bundle = build_bundle(dataset, DatasetSpec("imdb", scale, 0), "gcn",
                          model, features, hidden_dim=HIDDEN_DIM,
                          out_dim=HIDDEN_DIM)
    return bundle.save(tmp_dir / "throughput_bundle.npz")


def _fresh_engine(path: Path, max_batch_size: int) -> InferenceEngine:
    return InferenceEngine.from_path(
        path, EngineConfig(max_batch_size=max_batch_size, cache_size=4096))


def drive(scale: str = SCALE) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        path = _export_bundle(Path(tmp), scale)

        engine = _fresh_engine(path, max_batch_size=NUM_QUERIES)
        ids = np.arange(NUM_QUERIES)

        # single-query regime: each (cold) query pays its own forward
        single_engine = _fresh_engine(path, max_batch_size=NUM_QUERIES)
        start = time.perf_counter()
        for node_id in ids:
            single_engine.predict([node_id])
        single_seconds = time.perf_counter() - start

        # batched regime: the same queries share one micro-batch flush
        start = time.perf_counter()
        batched_predictions = engine.predict(ids)
        batched_seconds = time.perf_counter() - start

        single_predictions = np.array(
            [int(single_engine.predict([node_id])[0]) for node_id in ids])
        assert np.array_equal(batched_predictions, single_predictions)

        # cold vs warm: median cold query vs best warm repeat, same engine
        cold_engine = _fresh_engine(path, max_batch_size=1)
        cold_samples = []
        for node_id in range(NUM_QUERIES):
            start = time.perf_counter()
            cold_engine.predict([node_id])
            cold_samples.append(time.perf_counter() - start)
        cold_seconds = float(np.median(cold_samples))
        warm_seconds = np.inf
        for _ in range(WARM_REPEATS):
            start = time.perf_counter()
            cold_engine.predict([0])
            warm_seconds = min(warm_seconds, time.perf_counter() - start)

        stats = engine.stats()
        return {
            "num_queries": NUM_QUERIES,
            "single_seconds": single_seconds,
            "batched_seconds": batched_seconds,
            "batched_speedup": single_seconds / batched_seconds,
            "single_qps": NUM_QUERIES / single_seconds,
            "batched_qps": NUM_QUERIES / batched_seconds,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "warm_speedup": cold_seconds / warm_seconds,
            "batched_forward_passes": stats["forward_passes"],
        }


def test_serving_throughput(benchmark, record_benchmark):
    result = run_once(benchmark, drive)
    record_benchmark("serving_batched_speedup", result["batched_speedup"], "x")
    record_benchmark("serving_batched_qps", result["batched_qps"], "q/s")
    record_benchmark("serving_warm_speedup", result["warm_speedup"], "x")
    print()
    print(f"single  {result['single_seconds'] * 1e3:8.2f} ms "
          f"({result['single_qps']:8.0f} q/s)")
    print(f"batched {result['batched_seconds'] * 1e3:8.2f} ms "
          f"({result['batched_qps']:8.0f} q/s)  "
          f"speedup {result['batched_speedup']:.1f}x")
    print(f"cold    {result['cold_seconds'] * 1e6:8.1f} us/query")
    print(f"warm    {result['warm_seconds'] * 1e6:8.1f} us/query  "
          f"speedup {result['warm_speedup']:.1f}x")

    # one flush answered the whole batch
    assert result["batched_forward_passes"] == 1
    assert result["batched_speedup"] >= 3.0, (
        f"micro-batching only {result['batched_speedup']:.2f}x over "
        f"single-query serving")
    assert result["warm_speedup"] >= 10.0, (
        f"warm cache hit only {result['warm_speedup']:.2f}x over a cold "
        f"query")
