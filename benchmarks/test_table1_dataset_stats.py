"""Table I — dataset statistics.

Prints the synthetic datasets' statistics in the paper's Table I layout and
checks the schema-fidelity facts that matter to AutoAC: which type carries
raw attributes, the target types, and the attribute missing rates (45% /
69-73% / 77% / ~20% for DBLP / ACM / IMDB / LastFM).
"""

from __future__ import annotations

from repro.datasets import dataset_names, dataset_statistics, get_dataset
from repro.datasets.stats import render_table1

from conftest import run_once


def _collect(scale):
    return [dataset_statistics(get_dataset(name, scale=scale, seed=0))
            for name in dataset_names()]


def test_table1(benchmark, scale):
    stats = run_once(benchmark, _collect, scale)
    print()
    print(render_table1(stats))

    by_name = {s.name: s for s in stats}
    raw_types = {
        "dblp": "paper", "acm": "paper", "imdb": "movie", "lastfm": "artist",
    }
    for name, expected_raw in raw_types.items():
        per_type = {t.name: t.attribute for t in by_name[name].per_type}
        assert per_type[expected_raw] == "Raw"
        assert all(attr == "Missing" for t, attr in per_type.items()
                   if t != expected_raw)
    assert 0.70 < by_name["imdb"].attribute_missing_rate < 0.85
    assert 0.40 < by_name["dblp"].attribute_missing_rate < 0.55
