"""Figure 8 — sensitivity to the number of clusters M.

Paper shape: performance is stable across M (robustness claim).
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure8(benchmark, scale):
    result = run_once(benchmark, figures.figure8, scale=scale,
                      datasets=("imdb",), backbones=("simple_hgn",),
                      m_values=(2, 4, 8, 16))
    print()
    print(reporting.render_sweep(result, "series", "M"))

    # single-run F1 at tiny scale carries ~±0.1 seed noise per cell
    # (tests/test_core.py quantifies it); the robustness band scales with it
    tolerance = 0.45 if scale == "tiny" else 0.25
    for backbone, per_ds in result["series"].items():
        for ds_name, sweep in per_ds.items():
            values = np.array(list(sweep.values()))
            assert values.max() - values.min() < tolerance, (
                f"AutoAC should be reasonably robust to M on {ds_name}: {sweep}")
