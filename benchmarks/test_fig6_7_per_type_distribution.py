"""Figures 6/7 — per-node-type distribution of searched operations.

Paper shape: even within one node type, multiple operations are selected
(the core "fine-grained completion" claim).
"""

from __future__ import annotations

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure6_7(benchmark, scale):
    result = run_once(benchmark, figures.figure6_7, scale=scale)
    print()
    print(reporting.render_figure6_7(result))

    multi_op_types = 0
    total_types = 0
    for ds_name, per_type in result["per_type"].items():
        for type_name, dist in per_type.items():
            total_types += 1
            used = sum(1 for fraction in dist.values() if fraction > 0.0)
            if used >= 2:
                multi_op_types += 1
    assert total_types > 0
    assert multi_op_types >= total_types // 2, (
        "fine-grained completion: most node types should mix several ops")
