"""End-to-end AutoAC search — fast runtime profile vs float64 baseline.

Not a paper table: this benchmark guards ``repro.perf``.  It runs the
*identical* bi-level search twice on a synthetic citation graph
(``search_benchmark_spec``: papers attributed, authors missing):

* **reference** — float64, unfused kernels, no candidate cache.  This is
  the bit-for-bit historical engine and the baseline of the paper's
  runtime claims (Table IV).
* **fast** — float32, fused kernels (addmm, fused cross-entropy, fused
  segment softmax, fused attention score/aggregate, bincount scatter)
  and the per-epoch search-loop candidate cache.

Asserted floors: the fast profile finishes the same number of epochs
**≥ 2× faster** while landing within a small tolerance of the reference
best validation score (the search is numerically equivalent — only float
precision and op fusion differ).  Measured margin is ~3× on a laptop
CPU, so the 2× floor stays robust on slow CI machines.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import AutoACConfig
from repro.core.adapters import NodeClassificationAdapter
from repro.core.search import AutoACSearcher
from repro.datasets import generate, search_benchmark_spec
from repro.perf import runtime_profile
from repro.training import set_seed

from conftest import SCALE, run_once

#: |best_val_score(ref) - best_val_score(fast)| ceiling; scores are
#: negative validation losses with magnitude ~2 on this dataset, and the
#: observed float32 drift is ~2e-3
SCORE_TOLERANCE = 0.1

SEARCH_EPOCHS = 6
NUM_NODES = {"tiny": 2000, "small": 3000, "medium": 5000, "paper": 8000}


def _run_search(profile_name: str, num_nodes: int):
    """One full search under a runtime profile; returns (result, seconds).

    Dataset, model and searcher are constructed inside the profile so
    every array uses the profile's dtype; only ``search()`` is timed
    (construction cost is identical either way and dominated by the
    one-off sparse propagations).
    """
    with runtime_profile(profile_name):
        set_seed(0)
        dataset = generate(search_benchmark_spec(num_nodes=num_nodes), seed=0)
        config = AutoACConfig(search_epochs=SEARCH_EPOCHS,
                              patience=10 * SEARCH_EPOCHS,  # no early stop
                              warmup_epochs=1, hidden_dim=64)
        searcher = AutoACSearcher(NodeClassificationAdapter(dataset),
                                  "simple_hgn", config, seed=0)
        start = time.perf_counter()
        result = searcher.search()
        seconds = time.perf_counter() - start
    return result, seconds


def drive(scale: str = SCALE) -> dict:
    num_nodes = NUM_NODES.get(scale, NUM_NODES["tiny"])
    reference, reference_seconds = _run_search("reference", num_nodes)
    fast, fast_seconds = _run_search("fast", num_nodes)
    return {
        "num_nodes": num_nodes,
        "epochs": SEARCH_EPOCHS,
        "reference_seconds": reference_seconds,
        "fast_seconds": fast_seconds,
        "speedup": reference_seconds / fast_seconds,
        "reference_score": reference.best_val_score,
        "fast_score": fast.best_val_score,
        "score_gap": abs(reference.best_val_score - fast.best_val_score),
        "reference_epochs_run": reference.epochs_run,
        "fast_epochs_run": fast.epochs_run,
    }


def test_search_speedup(benchmark, record_benchmark):
    result = run_once(benchmark, drive)
    print()
    print(f"nodes={result['num_nodes']}  epochs={result['epochs']}")
    print(f"reference {result['reference_seconds']:7.2f}s  "
          f"score {result['reference_score']:.4f}")
    print(f"fast      {result['fast_seconds']:7.2f}s  "
          f"score {result['fast_score']:.4f}")
    print(f"speedup   {result['speedup']:.2f}x  "
          f"score gap {result['score_gap']:.2e}")

    record_benchmark("search_speedup", result["speedup"], "x")
    record_benchmark("search_reference_seconds",
                     result["reference_seconds"], "s")
    record_benchmark("search_fast_seconds", result["fast_seconds"], "s")
    record_benchmark("search_score_gap", result["score_gap"], "val-score")

    # identical amount of search work on both sides
    assert result["reference_epochs_run"] == result["fast_epochs_run"]
    # quality parity: the fast profile finds an equivalent completion
    assert result["score_gap"] <= SCORE_TOLERANCE, (
        f"fast profile val score drifted {result['score_gap']:.3f} "
        f"from the float64 reference (tolerance {SCORE_TOLERANCE})")
    # the headline: end-to-end search at least 2x faster
    assert result["speedup"] >= 2.0, (
        f"fast runtime profile only {result['speedup']:.2f}x faster than "
        f"the float64 unfused baseline")
