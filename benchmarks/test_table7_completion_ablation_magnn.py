"""Table VII — single-operation completion ablation on MAGNN.

Same protocol as Table VI with the metapath backbone; the paper's point is
that the best op differs between backbones (e.g. DBLP prefers GCN_AC under
SimpleHGN but MEAN_AC under MAGNN).
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table7(benchmark, scale):
    result = run_once(benchmark, tables.table7, scale=scale,
                      datasets=("dblp", "imdb"))
    print()
    print(reporting.render_node_clf_table(result))

    rows = result["rows"]
    slack = 0.12 if scale == "tiny" else 0.05
    wins = 0
    for ds_name in result["datasets"]:
        baseline = rows["baseline"][ds_name]["macro_f1"]
        autoac = rows["autoac"][ds_name]["macro_f1"]
        if autoac > baseline - slack:
            wins += 1
    assert wins >= len(result["datasets"]) - 1, (
        "MAGNN-AutoAC should be competitive with MAGNN on (almost) every dataset")
