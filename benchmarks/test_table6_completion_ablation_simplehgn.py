"""Table VI — single-operation completion ablation on SimpleHGN.

Paper shape: no single operation wins everywhere; random completion is
unstable; AutoAC matches or beats the best single op per dataset.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import reporting, tables

from conftest import run_once


def test_table6(benchmark, scale):
    result = run_once(benchmark, tables.table6, scale=scale)
    print()
    print(reporting.render_node_clf_table(result))

    rows = result["rows"]
    single_keys = [f"{op}_ac" for op in tables.SINGLE_OPS if op != "random"]
    # "track the best single op": slack covers per-cell seed noise, which
    # dominates at tiny scale (±0.1 macro-F1, see tests/test_core.py)
    slack = 0.12 if scale == "tiny" else 0.03
    wins = 0
    for ds_name in result["datasets"]:
        best_single = max(rows[key][ds_name]["macro_f1"]
                          for key in single_keys)
        autoac = rows["autoac"][ds_name]["macro_f1"]
        if autoac >= best_single - slack:
            wins += 1
    assert wins >= len(result["datasets"]) - 1, (
        "AutoAC should track the best single op on (almost) every dataset")
