"""Figures 10/11 — sensitivity to alpha's learning rate and weight decay.

Paper shape: AutoAC is robust to both hyperparameters across the swept
ranges.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure10_11(benchmark, scale):
    result = run_once(benchmark, figures.figure10_11, scale=scale,
                      datasets=("imdb",),
                      lr_values=(3e-3, 5e-3, 7e-3),
                      wd_values=(5e-6, 2e-5, 4e-3))
    print()
    print(reporting.render_figure10_11(result))

    for series in (result["lr_series"], result["wd_series"]):
        for ds_name, sweep in series.items():
            values = np.array(list(sweep.values()))
            assert values.max() - values.min() < 0.25, (
                f"AutoAC should be robust on {ds_name}: {sweep}")
