"""Figure 5 — distribution of searched completion operations.

Paper shape: distributions differ across datasets and backbones (DBLP
leans GCN_AC under SimpleHGN, ACM leans PPNP_AC, IMDB leans GCN_AC);
no degenerate all-one-op collapse across the board.
"""

from __future__ import annotations

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure5(benchmark, scale):
    result = run_once(benchmark, figures.figure5, scale=scale,
                      backbones=("simple_hgn",))
    print()
    print(reporting.render_figure5(result))

    for backbone, per_ds in result["distributions"].items():
        for ds_name, dist in per_ds.items():
            assert abs(sum(dist.values()) - 1.0) < 1e-9
        # the searched distribution is dataset-dependent: at least two
        # datasets must disagree on their dominant op OR on its share
        dominants = {ds: max(d, key=d.get) for ds, d in per_ds.items()}
        shares = {ds: max(d.values()) for ds, d in per_ds.items()}
        assert len(set(dominants.values())) > 1 or \
            max(shares.values()) - min(shares.values()) > 0.05, (
                f"op distributions should differ across datasets: {per_ds}")
