"""Autotune guard — ASHA on the trial scheduler vs the baselines.

Not a paper table: this benchmark guards ``repro.autotune``.  On the
synthetic ``tune_benchmark_spec`` graph (papers attributed, authors V⁻)
it runs three searches over the completion-op space:

* **darts**    — the paper's one-shot bi-level search, as a strategy;
* **random**   — sequential full-budget random search (the trial-based
  baseline ASHA must beat on cost);
* **asha**     — successive halving with 4 workers and a trial journal.

Asserted floors: ASHA spends **≥ 2× less wall-clock** than sequential
full-budget random search (measured ~2.8× on a 1-core container — the
margin comes from early-stopping weak trials at low rungs, so it holds
with or without real CPU parallelism) while its winner's retrained
macro-F1 lands **within noise of (or above) the one-shot DARTS
baseline**.  A second test simulates a mid-run kill: the journal is cut
back to a prefix (plus a torn line, exactly what SIGKILL during a write
leaves) and a fresh scheduler resumed from it must reproduce the
*identical* leaderboard while re-executing only the missing trials.
"""

from __future__ import annotations

import json
import time

from repro.autotune import DatasetRef, TrialScheduler, TuneTask, build_strategy
from repro.core import AutoACConfig
from repro.training import TrainConfig

from conftest import TUNE_JOURNAL_PATH, run_once

#: retrained macro-F1 headroom vs the one-shot baseline ("within noise"):
#: seeds are fixed so runs are deterministic; the observed gap is ~0.02
#: in ASHA's favour, and single-seed noise on this spec is ~0.03
NOISE_MARGIN = 0.05

MODEL = "gcn"
HIDDEN = 32
NUM_SLOTS = 6
NUM_TRIALS = 10
FULL_BUDGET = 60      #: retrain epochs of one full-budget trial
MIN_BUDGET = 7        #: ASHA first-rung epochs
ETA = 3
WORKERS = 4
SEARCH_EPOCHS = 20    #: bi-level epochs of the one-shot baseline


def _task(spec) -> TuneTask:
    search_config = AutoACConfig(
        hidden_dim=HIDDEN, out_dim=HIDDEN, num_clusters=NUM_SLOTS,
        search_epochs=SEARCH_EPOCHS, patience=SEARCH_EPOCHS,
        warmup_epochs=2,
        retrain=TrainConfig(epochs=FULL_BUDGET,
                            patience=max(FULL_BUDGET // 4, 5)))
    return TuneTask(dataset=DatasetRef.from_spec(spec, seed=0),
                    model_name=MODEL, hidden_dim=HIDDEN, out_dim=HIDDEN,
                    num_slots=NUM_SLOTS, max_budget=FULL_BUDGET,
                    search_config=search_config)


def _asha_strategy(task: TuneTask, seed: int = 0):
    return build_strategy("asha", num_slots=task.num_slots,
                          num_ops=task.num_ops, max_budget=task.max_budget,
                          seed=seed, num_trials=NUM_TRIALS,
                          min_budget=MIN_BUDGET, eta=ETA)


def _run(task: TuneTask, strategy, workers: int = 0, journal=None,
         resume: bool = False):
    scheduler = TrialScheduler(task, strategy, workers=workers,
                               journal=journal, resume=resume)
    start = time.perf_counter()
    report = scheduler.run()
    return report, time.perf_counter() - start


def drive(spec) -> dict:
    task = _task(spec)

    darts = build_strategy("darts", num_slots=task.num_slots,
                           num_ops=task.num_ops, max_budget=task.max_budget,
                           seed=0)
    darts_report, darts_seconds = _run(task, darts)

    random = build_strategy("random", num_slots=task.num_slots,
                            num_ops=task.num_ops, max_budget=task.max_budget,
                            seed=0, num_trials=NUM_TRIALS)
    random_report, random_seconds = _run(task, random, workers=0)

    asha_report, asha_seconds = _run(task, _asha_strategy(task),
                                     workers=WORKERS,
                                     journal=TUNE_JOURNAL_PATH)

    return {
        "num_nodes": sum(spec.node_counts.values()),
        "darts_seconds": darts_seconds,
        "darts_macro_f1": darts_report.best.macro_f1,
        "random_seconds": random_seconds,
        "random_macro_f1": random_report.best.macro_f1,
        "random_epochs": sum(r.budget_used for r in random_report.results),
        "asha_seconds": asha_seconds,
        "asha_macro_f1": asha_report.best.macro_f1,
        "asha_epochs": sum(r.budget_used for r in asha_report.results),
        "asha_trials": len(asha_report.results),
        "speedup": random_seconds / asha_seconds,
        "asha_leaderboard": [(r.trial_id, r.score)
                             for r in asha_report.leaderboard()],
    }


def test_autotune_speedup(benchmark, record_benchmark, tune_spec):
    result = run_once(benchmark, drive, tune_spec)
    print()
    print(f"nodes={result['num_nodes']}  trials={NUM_TRIALS}  "
          f"budget={FULL_BUDGET}ep")
    print(f"darts  {result['darts_seconds']:6.2f}s  "
          f"macro-F1 {result['darts_macro_f1']:.4f}")
    print(f"random {result['random_seconds']:6.2f}s  "
          f"macro-F1 {result['random_macro_f1']:.4f}  "
          f"({result['random_epochs']} epochs, sequential)")
    print(f"asha   {result['asha_seconds']:6.2f}s  "
          f"macro-F1 {result['asha_macro_f1']:.4f}  "
          f"({result['asha_epochs']} epochs, {WORKERS} workers)")
    print(f"speedup {result['speedup']:.2f}x  journal {TUNE_JOURNAL_PATH}")

    record_benchmark("tune_speedup", result["speedup"], "x")
    record_benchmark("tune_asha_seconds", result["asha_seconds"], "s")
    record_benchmark("tune_random_seconds", result["random_seconds"], "s")
    record_benchmark("tune_asha_macro_f1", result["asha_macro_f1"], "f1")
    record_benchmark("tune_darts_macro_f1", result["darts_macro_f1"], "f1")

    # the journal artifact the CI job uploads must exist and be non-trivial
    assert TUNE_JOURNAL_PATH.exists()
    assert result["asha_trials"] >= NUM_TRIALS

    # quality: ASHA's retrained winner within noise of (or above) one-shot
    assert result["asha_macro_f1"] >= result["darts_macro_f1"] - NOISE_MARGIN, (
        f"ASHA winner macro-F1 {result['asha_macro_f1']:.4f} fell more than "
        f"{NOISE_MARGIN} below the one-shot DARTS baseline "
        f"{result['darts_macro_f1']:.4f}")
    # cost: early stopping (plus workers) buys at least 2x wall-clock
    assert result["speedup"] >= 2.0, (
        f"ASHA only {result['speedup']:.2f}x faster than sequential "
        f"full-budget random search")


def test_resume_after_kill_reproduces_leaderboard(tmp_path, tune_spec):
    """Journal prefix + torn line (what SIGKILL leaves) → identical board."""
    task = _task(tune_spec)
    journal = tmp_path / "tune_journal.jsonl"

    full_report, _ = _run(task, _asha_strategy(task), workers=0,
                          journal=journal)
    reference = [(r.trial_id, r.score, r.budget_used)
                 for r in full_report.leaderboard()]
    total = len(full_report.results)

    # simulate the kill: keep header + the first half of the trial records
    # (trial lines interleave with derived timeline lines, so cut on the
    # parsed kind), with a torn final line from the interrupted write
    lines = journal.read_text().splitlines()
    trial_line_indices = [i for i, line in enumerate(lines)
                          if json.loads(line).get("kind") == "trial"]
    survivors = total // 2
    keep = trial_line_indices[survivors - 1] + 1
    torn = tmp_path / "torn.jsonl"
    torn.write_text("\n".join(lines[:keep]) + "\n"
                    + '{"kind": "trial", "trial": {"trial_id"')

    resumed_report, _ = _run(task, _asha_strategy(task), workers=0,
                             journal=torn, resume=True)
    resumed = [(r.trial_id, r.score, r.budget_used)
               for r in resumed_report.leaderboard()]

    assert resumed_report.stats.replayed == survivors
    assert resumed_report.stats.executed == total - survivors
    assert resumed == reference, "resumed leaderboard differs from original"

    # the journal now holds every trial; resuming again replays everything
    final_report, _ = _run(task, _asha_strategy(task), workers=0,
                           journal=torn, resume=True)
    assert final_report.stats.executed == 0
    assert final_report.stats.replayed == total
    assert [(r.trial_id, r.score, r.budget_used)
            for r in final_report.leaderboard()] == reference
