"""Sparse fast path — CSR spmm vs dense propagation on a large graph.

Not a paper table: this benchmark guards the tensor engine's sparse
subsystem.  It generates the synthetic large-graph scenario from
``repro.datasets.generator.sparse_benchmark_spec`` (≥ 10k nodes, well
under 1% adjacency density), propagates a feature matrix through the
normalized adjacency on both paths, and asserts that

* sparse and dense forward outputs agree to 1e-6, and
* the CSR path is at least 3× faster than the dense matmul.

The margin is enormous in practice (the dense path is O(N²) in both
memory and flops), so the 3× floor stays robust on slow CI machines.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets import generate, sparse_benchmark_spec
from repro.tensor import Tensor, spmm

from conftest import run_once

NUM_NODES = 10_000
FEATURE_DIM = 64
REPEATS = 3


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def drive(num_nodes: int = NUM_NODES, dim: int = FEATURE_DIM) -> dict:
    dataset = generate(sparse_benchmark_spec(num_nodes=num_nodes), seed=0)
    graph = dataset.graph
    adj = graph.normalized_adjacency(mode="sym", self_loops=True)
    x = np.random.default_rng(0).normal(size=(graph.num_nodes, dim))

    dense = adj.to_dense()
    sparse_out = adj.matmul_data(x)
    dense_out = dense @ x

    sparse_seconds = _best_of(lambda: adj.matmul_data(x))
    dense_seconds = _best_of(lambda: dense @ x)
    # the autograd wrapper should not give the speedup back
    x_t = Tensor(x, requires_grad=True)
    autograd_seconds = _best_of(lambda: spmm(adj, x_t))

    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges(),
        "nnz": adj.nnz,
        "density": adj.density,
        "sparse_seconds": sparse_seconds,
        "dense_seconds": dense_seconds,
        "autograd_seconds": autograd_seconds,
        "speedup": dense_seconds / sparse_seconds,
        "max_abs_diff": float(np.abs(sparse_out - dense_out).max()),
    }


def test_sparse_speedup(benchmark, record_benchmark):
    result = run_once(benchmark, drive)
    record_benchmark("sparse_speedup", result["speedup"], "x")
    record_benchmark("sparse_spmm_seconds", result["sparse_seconds"], "s")
    print()
    print(f"nodes={result['num_nodes']}  nnz={result['nnz']}  "
          f"density={result['density']:.4%}")
    print(f"sparse  {result['sparse_seconds'] * 1e3:8.2f} ms")
    print(f"autograd{result['autograd_seconds'] * 1e3:8.2f} ms")
    print(f"dense   {result['dense_seconds'] * 1e3:8.2f} ms")
    print(f"speedup {result['speedup']:.1f}x")

    assert result["num_nodes"] >= 10_000
    assert result["density"] <= 0.01, "benchmark graph must be sparse"
    assert result["max_abs_diff"] <= 1e-6, (
        "sparse and dense propagation disagree")
    assert result["speedup"] >= 3.0, (
        f"CSR fast path only {result['speedup']:.2f}x faster than dense")
    # the autograd wrapper must stay within ~3x of the raw CSR kernel
    assert result["autograd_seconds"] <= result["sparse_seconds"] * 3.0, (
        "spmm autograd overhead is eating the sparse speedup")
