"""Mini-batch scale guard — sampled training on a ~50k-node graph.

Not a paper table: this benchmark guards the sampled execution path
introduced for scaling past full-graph training.  It generates the
``repro.datasets.generator.scale_spec`` synthetic graph (50k nodes by
default — an order of magnitude past the HGB-style specs), trains a
``supports_sampling`` backbone through
:class:`~repro.training.MiniBatchTrainer` for a few capped epochs, and
asserts the bounded-memory contract:

* **no ``(N, hidden)`` activation** — every tensor the sampled path
  creates is instrumented (``Tensor.__init__`` watermark) and its row
  count must stay a small fraction of ``N``;
* **fan-out bound** — the peak rows are also checked against the
  sampler's analytic worst case ``B · (1 + Σ_l (R · fanout)^l)``;
* the sampled loop actually trains (loss decreases from the first to the
  best epoch average).

Quality parity with the full-graph path is asserted in the tier-1 suite
(``tests/test_minibatch.py``) on a small graph, where a generous fanout
makes sampling exact.
"""

from __future__ import annotations

import contextlib

import numpy as np

import repro.tensor.tensor as tensor_module
from repro.completion import FixedAssignmentFeatures
from repro.datasets import generate, scale_spec
from repro.models import build_model
from repro.training import MiniBatchConfig, MiniBatchTrainer, set_seed

from conftest import run_once

NUM_NODES = 50_000
HIDDEN_DIM = 32
BATCH_SIZE = 64
FANOUT = 3
EPOCHS = 2
BATCHES_PER_EPOCH = 4


@contextlib.contextmanager
def activation_watermark():
    """Track the largest leading dimension of every Tensor created.

    Wraps ``Tensor.__init__`` for the duration of the block; the returned
    dict's ``"rows"`` entry is the high-water mark.  This is the teeth of
    the "never materialize an (N, hidden) activation" guarantee — any
    full-graph tensor sneaking into the sampled path trips it.
    """
    mark = {"rows": 0}
    original = tensor_module.Tensor.__init__

    def patched(self, data, *args, **kwargs):
        original(self, data, *args, **kwargs)
        shape = getattr(self.data, "shape", ())
        if len(shape) >= 1 and len(shape) <= 3:
            mark["rows"] = max(mark["rows"], int(shape[0]))

    tensor_module.Tensor.__init__ = patched
    try:
        yield mark
    finally:
        tensor_module.Tensor.__init__ = original


def drive(num_nodes: int = NUM_NODES) -> dict:
    set_seed(0)
    dataset = generate(scale_spec(num_nodes=num_nodes), seed=0)
    graph = dataset.graph
    model = build_model("gcn", dataset, hidden_dim=HIDDEN_DIM,
                        out_dim=HIDDEN_DIM)
    features = FixedAssignmentFeatures.random(
        dataset, HIDDEN_DIM, np.random.default_rng(0))
    config = MiniBatchConfig(
        epochs=EPOCHS, patience=EPOCHS + 1, batch_size=BATCH_SIZE,
        fanout=FANOUT, batches_per_epoch=BATCHES_PER_EPOCH,
        eval_batch_size=BATCH_SIZE, eval_every=1)
    trainer = MiniBatchTrainer(model, features, dataset, config)
    # evaluate only a slice of val/test — this guard times the sampled
    # loop, it does not chase benchmark-quality F1 on 50k nodes
    dataset.split.val = dataset.split.val[:BATCH_SIZE]
    dataset.split.test = dataset.split.test[:BATCH_SIZE]
    with activation_watermark() as mark:
        result = trainer.train()
    bound = trainer.sampler.max_view_nodes(BATCH_SIZE)
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges(),
        "num_relations": graph.num_relations,
        "peak_rows": mark["rows"],
        "peak_view_nodes": trainer.peak_view_nodes,
        "fanout_bound": bound,
        "train_loss": result.history["train_loss"],
        "train_seconds": result.train_seconds,
        "macro_f1": result.macro_f1,
    }


def test_minibatch_scale(benchmark, record_benchmark):
    result = run_once(benchmark, drive)
    n = result["num_nodes"]
    record_benchmark("minibatch_peak_rows", result["peak_rows"], "rows")
    record_benchmark("minibatch_peak_fraction",
                     result["peak_rows"] / n, "frac")
    record_benchmark("minibatch_step_seconds",
                     result["train_seconds"]
                     / (EPOCHS * BATCHES_PER_EPOCH), "s")
    print()
    print(f"nodes={n}  edges={result['num_edges']}")
    print(f"peak tensor rows  {result['peak_rows']}  "
          f"({result['peak_rows'] / n:.2%} of N)")
    print(f"peak view nodes   {result['peak_view_nodes']}  "
          f"(fan-out bound {result['fanout_bound']})")
    print(f"train loss        {result['train_loss'][0]:.4f} -> "
          f"{min(result['train_loss']):.4f}")

    assert n >= 50_000
    # the sampled path must never touch an (N, ·) tensor: peak rows stay
    # a small fraction of the graph...
    assert result["peak_rows"] < n * 0.25, (
        f"sampled path materialized a {result['peak_rows']}-row tensor "
        f"on a {n}-node graph")
    # ...and inside the sampler's analytic fan-out bound (loose factor
    # for the per-edge tensors, which exceed node counts but are equally
    # fan-out-bounded: E_view <= R * fanout * V_view)
    assert result["peak_view_nodes"] <= result["fanout_bound"]
    # per-edge tensors exceed node counts but are equally fan-out
    # bounded: E_view <= V_view * R * fanout (+ self loops)
    edge_bound = result["fanout_bound"] * (
        result["num_relations"] * FANOUT + 1)
    assert result["peak_rows"] <= edge_bound
    # the stochastic loop must actually optimize
    assert min(result["train_loss"]) < result["train_loss"][0], (
        "mini-batch training did not reduce the loss")
