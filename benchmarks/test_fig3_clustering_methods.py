"""Figure 3 — clustering-method ablation (w/o cluster, EM, EM+warmup, AutoAC).

Paper shape: the modularity-based joint clustering is the best of the four
on every dataset; searching without clustering is the weakest/noisiest.
"""

from __future__ import annotations

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure3(benchmark, scale):
    result = run_once(benchmark, figures.figure3, scale=scale,
                      datasets=("imdb",), backbones=("simple_hgn",))
    print()
    print(reporting.render_figure3(result))

    for backbone, per_ds in result["series"].items():
        for ds_name, per_method in per_ds.items():
            best = max(per_method, key=per_method.get)
            assert per_method["modularity"] >= per_method[best] - 0.08, (
                f"modularity clustering should be competitive on "
                f"{backbone}/{ds_name}: {per_method}")
