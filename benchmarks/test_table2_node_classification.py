"""Table II — node classification: AutoAC vs handcrafted heterogeneous GNNs.

Paper shape to check in the printed table: SimpleHGN-AutoAC is the global
best on every dataset; MAGNN-AutoAC beats MAGNN; attribute completion
closes the gap between weak and strong backbones.
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table2(benchmark, scale):
    result = run_once(benchmark, tables.table2, scale=scale)
    print()
    print(reporting.render_node_clf_table(result))

    rows = result["rows"]
    # the headline claim, with slack for seed noise: single tiny-scale runs
    # carry ~±0.1 macro-F1 (quantified in tests/test_core.py), so at tiny
    # scale the bench asserts the majority direction rather than every cell
    slack = 0.15 if scale == "tiny" else 0.03
    wins = 0
    for ds_name in result["datasets"]:
        autoac = rows["simple_hgn-autoac"][ds_name]["macro_f1"]
        baseline = rows["simple_hgn"][ds_name]["macro_f1"]
        if autoac > baseline - slack:
            wins += 1
    assert wins >= len(result["datasets"]) - 1, (
        "SimpleHGN-AutoAC should be competitive on (almost) every dataset")
