"""Figure 9 — sensitivity to the clustering-loss coefficient lambda.

Paper shape: IMDB is very robust to lambda; performance varies only mildly
in [0.1, 0.5].
"""

from __future__ import annotations

import numpy as np

from repro.experiments import figures, reporting

from conftest import run_once


def test_figure9(benchmark, scale):
    result = run_once(benchmark, figures.figure9, scale=scale,
                      datasets=("imdb",), backbones=("simple_hgn",),
                      lambda_values=(0.1, 0.3, 0.5))
    print()
    print(reporting.render_sweep(result, "series", "lambda"))

    for backbone, per_ds in result["series"].items():
        for ds_name, sweep in per_ds.items():
            values = np.array(list(sweep.values()))
            assert values.max() - values.min() < 0.25, (
                f"AutoAC should be robust to lambda on {ds_name}: {sweep}")
