"""Table IV — end-to-end runtime decomposition: AutoAC vs HGNN-AC.

Paper shape: HGNN-AC's metapath2vec pre-learning dominates its end-to-end
cost, so AutoAC (search + retrain, no pre-learning) is faster end to end.
The paper reports 7.5-465x; the exact ratio depends on walk budgets, so we
assert the direction, not the magnitude.
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table4(benchmark, scale):
    result = run_once(benchmark, tables.table4, scale=scale,
                      datasets=("dblp", "imdb"), backbones=("simple_hgn",))
    print()
    print(reporting.render_table4(result))

    for ds_name, per_model in result["rows"].items():
        for backbone, row in per_model.items():
            assert row["hgnnac_prelearn"] > row["hgnnac_train"] * 0.2, (
                "pre-learning should be a substantial share of HGNN-AC cost")
            assert row["speedup"] > 0.5, (
                f"AutoAC should not be drastically slower on {ds_name}")
