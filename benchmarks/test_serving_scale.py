"""Serving tier — horizontal scaling and tail latency under load.

Not a paper table: this benchmark guards the preforked serving tier
(`repro.serving.tier`).  It exports a small bundle, then measures:

* **capacity** — sustained q/s of a 1-worker tier vs an N-worker tier
  (``REPRO_TIER_WORKERS``, default 4) under the same closed-loop client
  pool hammering distinct single-id predicts over keep-alive
  connections;
* **tail latency** — an *open-loop* generator then offers ~1.3× the
  measured multi-worker capacity (arrivals on a fixed schedule, sent
  whether or not earlier requests completed).  The front's admission
  control sheds what it cannot serve (503 queue-full / 504 deadline),
  so the p99 of the *successful* requests must stay bounded by the
  request deadline instead of growing with the backlog.

The scaling floor adapts to the machine: preforked workers buy
throughput only when there are cores to run them, and CI containers
span one to many cores.  ≥4 effective cores asserts the paper-style
≥2.5× for 4 workers; 2–3 cores asserts ≥1.15×; a single core only
asserts the tier is not catastrophically slower than one worker
(coalescing keeps the penalty small).  Measured numbers are recorded
to ``BENCH_perf.json`` either way, so the trajectory shows real
hardware, not the floor.
"""

from __future__ import annotations

import http.client
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.completion import FixedAssignmentFeatures, SearchSpace
from repro.models import build_model
from repro.serving import (
    DatasetSpec,
    EngineConfig,
    FrontendConfig,
    ServingTier,
    TierConfig,
    build_bundle,
)
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed

from conftest import SCALE, run_once

HIDDEN_DIM = 32
EPOCHS = 3
CLIENTS = 8
CAPACITY_SECONDS = 3.0
OPEN_LOOP_SECONDS = 3.0
DEADLINE_MS = 1500.0
MULTI_WORKERS = max(2, int(os.environ.get("REPRO_TIER_WORKERS", "4")))
EFFECTIVE_CORES = len(os.sched_getaffinity(0))


def _scaling_floor(cores: int, workers: int) -> float:
    if cores >= 4 and workers >= 4:
        return 2.5
    if cores >= 2 and workers >= 2:
        return 1.15
    return 0.45  # single core: no parallelism to buy, only overhead to cap


def _export_bundle(tmp_dir: Path, scale: str) -> Path:
    from repro.datasets import get_dataset

    set_seed(0)
    dataset = get_dataset("imdb", scale=scale, seed=0)
    space = SearchSpace()
    rng = np.random.default_rng(0)
    assignment = rng.integers(0, len(space),
                              size=dataset.missing_global_ids.shape[0])
    features = FixedAssignmentFeatures(dataset, HIDDEN_DIM, assignment,
                                       space=space)
    model = build_model("gcn", dataset, hidden_dim=HIDDEN_DIM,
                        out_dim=HIDDEN_DIM)
    NodeClassificationTrainer(model, features, dataset,
                              TrainConfig(epochs=EPOCHS, patience=10)).train()
    bundle = build_bundle(dataset, DatasetSpec("imdb", scale, 0), "gcn",
                          model, features, hidden_dim=HIDDEN_DIM,
                          out_dim=HIDDEN_DIM)
    num_target = dataset.graph.num_nodes_of(bundle.target_type)
    return bundle.save(tmp_dir / "scale_bundle.npz"), num_target


def _boot_tier(path: Path, workers: int) -> ServingTier:
    tier = ServingTier(
        path,
        TierConfig(workers=workers),
        # tiny cache: every distinct id pays real engine work, so q/s
        # measures compute throughput rather than dict lookups
        engine_config=EngineConfig(max_batch_size=64, cache_size=4),
        frontend_config=FrontendConfig(deadline_ms=DEADLINE_MS,
                                       max_queue=512))
    return tier.start_background()


def _predict_once(conn: http.client.HTTPConnection, node_id: int):
    body = json.dumps({"node_ids": [node_id]})
    started = time.perf_counter()
    conn.request("POST", "/predict", body,
                 {"Content-Type": "application/json"})
    response = conn.getresponse()
    response.read()
    return response.status, time.perf_counter() - started


def _closed_loop(tier: ServingTier, seconds: float, ids_mod: int) -> dict:
    """CLIENTS keep-alive connections sending back-to-back requests."""
    host, port = tier.address
    stop_at = time.perf_counter() + seconds
    per_client = [[] for _ in range(CLIENTS)]

    def client(slot: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        node_id = slot
        try:
            while time.perf_counter() < stop_at:
                status, latency = _predict_once(conn, node_id % ids_mod)
                per_client[slot].append((status, latency))
                node_id += CLIENTS  # distinct ids across the pool
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(slot,))
               for slot in range(CLIENTS)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    outcomes = [entry for bucket in per_client for entry in bucket]
    ok = [latency for status, latency in outcomes if status == 200]
    return {"qps": len(ok) / elapsed, "ok": len(ok),
            "total": len(outcomes), "elapsed": elapsed}


def _open_loop(tier: ServingTier, seconds: float, offered_qps: float,
               ids_mod: int) -> dict:
    """Fixed arrival schedule split across CLIENTS senders.

    A sender that falls behind its schedule fires immediately instead
    of skipping — the offered load does not slow down just because the
    server is struggling (that is what makes the loop *open*)."""
    host, port = tier.address
    per_sender = offered_qps / CLIENTS
    per_client = [[] for _ in range(CLIENTS)]

    def client(slot: int) -> None:
        conn = http.client.HTTPConnection(host, port, timeout=60)
        begin = time.perf_counter()
        sent = 0
        try:
            while True:
                target = begin + sent / per_sender
                now = time.perf_counter()
                if now - begin >= seconds:
                    break
                if target > now:
                    time.sleep(target - now)
                status, latency = _predict_once(
                    conn, (slot + sent * CLIENTS) % ids_mod)
                per_client[slot].append((status, latency))
                sent += 1
        finally:
            conn.close()

    threads = [threading.Thread(target=client, args=(slot,))
               for slot in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    outcomes = [entry for bucket in per_client for entry in bucket]
    ok = sorted(latency for status, latency in outcomes if status == 200)
    shed = sum(1 for status, _ in outcomes if status in (503, 504))
    p99 = ok[min(len(ok) - 1, int(0.99 * len(ok)))] if ok else float("nan")
    return {"sent": len(outcomes), "ok": len(ok), "shed": shed,
            "p99_ms": p99 * 1e3,
            "ok_rate": len(ok) / max(1, len(outcomes))}


def drive(scale: str = SCALE) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        path, num_target = _export_bundle(Path(tmp), scale)

        single = _boot_tier(path, workers=1)
        try:
            single_run = _closed_loop(single, CAPACITY_SECONDS, num_target)
        finally:
            single.shutdown()

        multi = _boot_tier(path, workers=MULTI_WORKERS)
        try:
            multi_run = _closed_loop(multi, CAPACITY_SECONDS, num_target)
            tail = _open_loop(multi, OPEN_LOOP_SECONDS,
                              offered_qps=1.3 * max(multi_run["qps"], 1.0),
                              ids_mod=num_target)
        finally:
            multi.shutdown()

        return {
            "workers": MULTI_WORKERS,
            "effective_cores": EFFECTIVE_CORES,
            "single_qps": single_run["qps"],
            "multi_qps": multi_run["qps"],
            "scaling": multi_run["qps"] / max(single_run["qps"], 1e-9),
            "scaling_floor": _scaling_floor(EFFECTIVE_CORES, MULTI_WORKERS),
            "p99_ms": tail["p99_ms"],
            "open_loop_ok_rate": tail["ok_rate"],
            "open_loop_sent": tail["sent"],
            "open_loop_shed": tail["shed"],
        }


def test_serving_tier_scaling(benchmark, record_benchmark):
    result = run_once(benchmark, drive)
    record_benchmark("serving_tier_qps_single", result["single_qps"], "q/s")
    record_benchmark("serving_tier_qps_multi", result["multi_qps"], "q/s")
    record_benchmark("serving_tier_scaling", result["scaling"], "x")
    record_benchmark("serving_tier_p99_ms", result["p99_ms"], "ms")
    record_benchmark("serving_tier_open_loop_ok_rate",
                     result["open_loop_ok_rate"], "frac")

    print(f"\nserving tier: {result['workers']} workers on "
          f"{result['effective_cores']} core(s) — "
          f"{result['single_qps']:.0f} → {result['multi_qps']:.0f} q/s "
          f"({result['scaling']:.2f}x, floor {result['scaling_floor']}x), "
          f"open-loop p99 {result['p99_ms']:.0f} ms "
          f"(ok rate {result['open_loop_ok_rate']:.2f}, "
          f"shed {result['open_loop_shed']}/{result['open_loop_sent']})")

    assert result["scaling"] >= result["scaling_floor"]
    # the front answers 504 instead of queueing past the deadline, so
    # successful-request p99 must not balloon under saturation (margin
    # covers client-side scheduling noise on busy CI hosts)
    assert result["p99_ms"] <= DEADLINE_MS * 2.0
    assert result["open_loop_sent"] > 0
    assert result["open_loop_ok_rate"] > 0.2
