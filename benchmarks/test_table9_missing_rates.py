"""Table IX — varying attribute missing rates (node classification).

Paper shape: SimpleHGN-AutoAC's F1 does not degrade as more node types
lose their attributes — searched completion beats the handcrafted one-hot
fill, so rows with higher missing rates score at least as well.
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table9(benchmark, scale):
    result = run_once(benchmark, tables.table9, scale=scale,
                      datasets=("imdb",))
    print()
    print(reporting.render_table9(result))

    for ds_name, ladder in result["rows"].items():
        rates = [row["missing_rate"] for row in ladder]
        assert rates == sorted(rates), "ladder must be ordered by missing rate"
        zero_rate = ladder[0]["macro_f1"]
        full_rate = ladder[-1]["macro_f1"]
        assert full_rate > zero_rate - 0.10, (
            f"AutoAC should absorb missing attributes on {ds_name}: "
            f"{full_rate:.3f} vs {zero_rate:.3f} at 0% missing")
