"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure at the scale given by
the ``REPRO_SCALE`` environment variable (default ``tiny`` so the full
suite finishes in minutes on CPU; use ``small`` for a faithful run).
Rendered tables are printed so the run log doubles as the reproduction
report (see EXPERIMENTS.md).
"""

from __future__ import annotations

import os

import pytest

SCALE = os.environ.get("REPRO_SCALE", "tiny")


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
