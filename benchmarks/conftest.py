"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure at the scale given by
the ``REPRO_SCALE`` environment variable (default ``tiny`` so the full
suite finishes in minutes on CPU; use ``small`` for a faithful run).
Rendered tables are printed so the run log doubles as the reproduction
report (see EXPERIMENTS.md).

Perf trajectory: the ``record_benchmark`` fixture appends machine-readable
``{name, value, unit, commit}`` rows to ``BENCH_perf.json`` at the repo
root.  The guard benchmarks (sparse speedup, serving throughput, search
speedup) record their headline numbers there, so ``make bench`` leaves a
commit-stamped perf history behind.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.perf.recording import current_commit, merge_bench_rows  # noqa: E402

SCALE = os.environ.get("REPRO_SCALE", "tiny")

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


@pytest.fixture(scope="session")
def scale() -> str:
    return SCALE


#: autotune benchmark graph size per scale (nodes of tune_benchmark_spec)
TUNE_BENCH_NODES = {"tiny": 900, "small": 1500, "medium": 2500, "paper": 4000}

#: the trial journal the autotune benchmark leaves behind (CI uploads it)
TUNE_JOURNAL_PATH = BENCH_PATH.parent / "TUNE_journal.jsonl"


@pytest.fixture(scope="session")
def tune_spec():
    """The autotune speedup benchmark's synthetic schema, sized by scale."""
    from repro.datasets import tune_benchmark_spec

    return tune_benchmark_spec(
        num_nodes=TUNE_BENCH_NODES.get(SCALE, TUNE_BENCH_NODES["tiny"]))


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def record_benchmark():
    """Session-scoped recorder appending rows to ``BENCH_perf.json``.

    Usage inside a benchmark test::

        def test_x(benchmark, record_benchmark):
            ...
            record_benchmark("sparse_speedup", result["speedup"], "x")

    Rows are buffered and flushed once at session end, merged with the
    rows already on disk via :func:`repro.perf.recording.merge_bench_rows`
    so repeated ``make bench`` runs accumulate a trajectory.  The merge
    is idempotent per ``(name, commit)``, and a re-record at a *clean*
    commit evicts any provisional ``-dirty`` rows of the same benchmark
    — only moving to a new clean commit grows the trajectory.
    """
    rows = []
    commit = current_commit(BENCH_PATH.parent)

    def record(name: str, value: float, unit: str) -> None:
        rows.append({"name": str(name), "value": float(value),
                     "unit": str(unit), "commit": commit})

    yield record

    if not rows:
        return
    existing = []
    if BENCH_PATH.exists():
        try:
            existing = json.loads(BENCH_PATH.read_text())
        except (json.JSONDecodeError, OSError):
            existing = []
    if not isinstance(existing, list):
        existing = []
    BENCH_PATH.write_text(
        json.dumps(merge_bench_rows(existing, rows), indent=2) + "\n")
