"""Table VIII — ablation of the discrete constraints (proximal search).

Paper shape: with discrete constraints the search is several times faster
at equal or better F1 (the mixture-mode ablation pays for evaluating every
candidate op plus the second-order unrolled gradient).
"""

from __future__ import annotations

from repro.experiments import reporting, tables

from conftest import run_once


def test_table8(benchmark, scale):
    result = run_once(benchmark, tables.table8, scale=scale,
                      datasets=("imdb",), backbones=("simple_hgn",))
    print()
    print(reporting.render_table8(result))

    rows = result["rows"]
    for ds_name in result["datasets"]:
        fast = rows["simple_hgn-autoac"][ds_name]["search_seconds"]
        slow = rows["simple_hgn-w/o-discrete"][ds_name]["search_seconds"]
        assert fast < slow, (
            f"discrete constraints must cut search time on {ds_name}: "
            f"{fast:.1f}s vs {slow:.1f}s")
