PYTHON ?= python

.PHONY: verify test bench benchmarks bench-smoke bench-scale tune-smoke serve-smoke serve-scale chaos-smoke profile report

# Tier-1 verification (ROADMAP.md): the full test suite, fail-fast.
verify:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

test: verify

# Paper tables/figures + the perf guards (sparse propagation, serving
# throughput, search speedup). REPRO_SCALE=tiny|small. Guard benchmarks
# append {name, value, unit, commit} rows to BENCH_perf.json.
bench:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q

benchmarks: bench

# Just the three perf guards (what CI's bench-smoke job runs).
bench-smoke:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q \
		test_sparse_speedup.py test_serving_throughput.py test_search_speedup.py

# Mini-batch scale guard: sampled training on the 50k-node scale_spec
# graph with bounded peak activations (see docs/SCALING.md).
bench-scale:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q \
		test_minibatch_scale.py

# Autotune guard: a tiny ASHA search on the synthetic tune spec vs the
# sequential and one-shot baselines; leaves the trial journal behind as
# TUNE_journal.jsonl (see docs/TUNING.md).
tune-smoke:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q \
		test_autotune_speedup.py

# Serving smoke: export a tiny bundle, serve it over HTTP with tracing
# and access logging on, drive predict/onboard/drain traffic, scrape
# /metrics and validate it; leaves SERVE_metrics.txt and
# SERVE_trace.jsonl behind (see docs/OBSERVABILITY.md).
serve-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/serve_smoke.py

# Serving-tier scale guard: preforked multi-worker tier vs one worker
# under a closed-loop client pool, then open-loop saturation for tail
# latency; REPRO_TIER_WORKERS picks the fleet size (default 4); floors
# adapt to the host's core count (see docs/SCALING.md).  Rows land in
# BENCH_perf.json.
serve-scale:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q \
		test_serving_scale.py

# Chaos smoke: deterministic fault injection against the live stack —
# serving under injected flush failures (no request lost without a 5xx),
# corrupted bundle writes rejected at load, killed trial workers
# self-healing to the identical leaderboard, and tier workers shot
# mid-predict with zero client-visible failures; leaves
# CHAOS_report.jsonl behind (see docs/ROBUSTNESS.md).
chaos-smoke:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) scripts/chaos_smoke.py

# Static HTML report from the tune-smoke journal (docs/OBSERVABILITY.md).
report:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro report \
		TUNE_journal.jsonl --out TUNE_report.html

# Per-op profiler table for a small search run (see docs/PERFORMANCE.md).
profile:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m repro profile --scale tiny --runtime fast
