PYTHON ?= python

.PHONY: verify test bench benchmarks

# Tier-1 verification (ROADMAP.md): the full test suite, fail-fast.
verify:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

test: verify

# Paper tables/figures + the sparse-speedup and serving-throughput guards
# (REPRO_SCALE=tiny|small).
bench:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q

benchmarks: bench
