PYTHON ?= python

.PHONY: verify test benchmarks

# Tier-1 verification (ROADMAP.md): the full test suite, fail-fast.
verify:
	PYTHONPATH=src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -x -q

test: verify

# Paper tables/figures + the sparse-speedup guard (REPRO_SCALE=tiny|small).
benchmarks:
	cd benchmarks && PYTHONPATH=../src$${PYTHONPATH:+:$$PYTHONPATH} $(PYTHON) -m pytest -q
