"""Pluggable trial-based search strategies behind one ask/tell interface.

A :class:`Strategy` proposes batches of :class:`~repro.autotune.Trial`\\ s
(``ask``) and digests finished :class:`~repro.autotune.TrialResult`\\ s
(``tell``).  The scheduler runs each batch to completion — possibly in
parallel — and tells the results back **in trial-id order**, so a
strategy's decisions depend only on ``(seed, told history)``, never on
worker count or completion order.  That contract is what makes parallel
runs, reruns and journal resumes produce identical leaderboards.

Registered strategies (``repro strategies`` lists them):

* ``random``     — independent uniform op-vectors at full budget;
* ``evolution``  — regularized evolution (tournament-select, mutate one
  slot, age out the oldest) over the discrete op-assignment space;
* ``asha``       — successive halving: rungs of geometrically growing
  epoch budgets, the top ``1/eta`` of each rung promoted to the next;
* ``darts``      — the paper's one-shot differentiable search, wrapped
  as a single trial (the baseline every trial-based run is judged by);
* ``grid``       — an explicit list of search-config overrides, one
  one-shot trial each (the paper's sensitivity sweeps, Figs. 8–11).

The registry mirrors ``repro.models.registry``: factories keyed by name,
``build_strategy`` raising a clear ``ValueError`` for unknown names.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..training import derive_seed
from .trial import Trial, TrialResult


class Strategy:
    """Base ask/tell strategy over op-vector space.

    Subclasses implement :meth:`ask` (next batch of trials; empty list →
    done) and may extend :meth:`tell`.  Trial ids are handed out by the
    base class in ask order and each trial's seed is pre-derived as
    ``derive_seed(seed, trial_id)`` — see :mod:`repro.training.seed`.
    """

    name: str = "base"

    def __init__(self, num_slots: int, num_ops: int, max_budget: int,
                 seed: int = 0) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be >= 1")
        if num_ops < 1:
            raise ValueError("num_ops must be >= 1")
        if max_budget < 1:
            raise ValueError("max_budget must be >= 1")
        self.num_slots = int(num_slots)
        self.num_ops = int(num_ops)
        self.max_budget = int(max_budget)
        self.seed = int(seed)
        self.rng = np.random.default_rng(derive_seed(seed, 0x5712a))
        self.results: Dict[int, TrialResult] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    def _new_trial(self, ops: Optional[Sequence[int]],
                   budget: Optional[int], rung: int = 0,
                   parent_id: Optional[int] = None,
                   params: Optional[Dict[str, Any]] = None,
                   seed: Optional[int] = None) -> Trial:
        trial_id = self._next_id
        self._next_id += 1
        return Trial(
            trial_id=trial_id,
            budget=budget,
            seed=derive_seed(self.seed, trial_id) if seed is None else seed,
            ops=None if ops is None else [int(o) for o in ops],
            rung=rung,
            parent_id=parent_id,
            params=dict(params or {}),
        )

    def _random_ops(self) -> List[int]:
        return [int(o) for o in
                self.rng.integers(0, self.num_ops, size=self.num_slots)]

    # ------------------------------------------------------------------
    def ask(self) -> List[Trial]:
        """Next batch of trials to run; ``[]`` means the search is done."""
        raise NotImplementedError

    def tell(self, trial: Trial, result: TrialResult) -> None:
        """Digest one finished trial (called in trial-id order)."""
        self.results[trial.trial_id] = result

    def is_done(self) -> bool:
        return False

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-able identity for the journal header (resume validation)."""
        return {"strategy": self.name, "num_slots": self.num_slots,
                "num_ops": self.num_ops, "max_budget": self.max_budget,
                "seed": self.seed, **self.params()}

    def params(self) -> Dict[str, Any]:
        """Strategy-specific knobs (merged into the fingerprint)."""
        return {}


class RandomSearch(Strategy):
    """Uniform random op-vectors, each evaluated at full budget.

    The budget-matched baseline every smarter strategy must beat — and,
    per the related NAS repo, a surprisingly strong one.
    """

    name = "random"

    def __init__(self, num_slots: int, num_ops: int, max_budget: int,
                 seed: int = 0, num_trials: int = 16,
                 budget: Optional[int] = None) -> None:
        super().__init__(num_slots, num_ops, max_budget, seed=seed)
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        self.num_trials = int(num_trials)
        self.budget = int(budget) if budget is not None else self.max_budget
        self._asked = False

    def ask(self) -> List[Trial]:
        if self._asked:
            return []
        self._asked = True
        return [self._new_trial(self._random_ops(), self.budget)
                for _ in range(self.num_trials)]

    def is_done(self) -> bool:
        return self._asked

    def params(self) -> Dict[str, Any]:
        return {"num_trials": self.num_trials, "budget": self.budget}


class RegularizedEvolution(Strategy):
    """Aging evolution over discrete op-assignments (Real et al., 2019).

    Seeds a random population, then repeatedly: tournament-sample
    ``sample_size`` members, mutate the winner in one random slot, and
    age out the oldest member.  Children are produced ``batch_size`` at a
    time so the scheduler can evaluate them in parallel; each batch's
    parents are drawn from the population *before* the batch runs, which
    keeps the trial stream deterministic.
    """

    name = "evolution"

    def __init__(self, num_slots: int, num_ops: int, max_budget: int,
                 seed: int = 0, num_trials: int = 24,
                 population_size: int = 8, sample_size: int = 3,
                 batch_size: int = 4, budget: Optional[int] = None) -> None:
        super().__init__(num_slots, num_ops, max_budget, seed=seed)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 1 <= sample_size <= population_size:
            raise ValueError("sample_size must be in [1, population_size]")
        if num_trials < population_size:
            raise ValueError("num_trials must cover the initial population")
        self.num_trials = int(num_trials)
        self.population_size = int(population_size)
        self.sample_size = int(sample_size)
        self.batch_size = max(1, int(batch_size))
        self.budget = int(budget) if budget is not None else self.max_budget
        #: (trial_id, ops, score) in tell order — the aging queue
        self.population: List[tuple] = []

    def _mutate(self, ops: List[int]) -> List[int]:
        child = list(ops)
        slot = int(self.rng.integers(0, self.num_slots))
        if self.num_ops > 1:
            shift = int(self.rng.integers(1, self.num_ops))
            child[slot] = (child[slot] + shift) % self.num_ops
        return child

    def ask(self) -> List[Trial]:
        remaining = self.num_trials - self._next_id
        if remaining <= 0:
            return []
        if self._next_id == 0:
            count = min(self.population_size, remaining)
            return [self._new_trial(self._random_ops(), self.budget)
                    for _ in range(count)]
        if not self.population:
            # every seed trial failed; fall back to fresh random trials
            count = min(self.batch_size, remaining)
            return [self._new_trial(self._random_ops(), self.budget)
                    for _ in range(count)]
        batch = []
        for _ in range(min(self.batch_size, remaining)):
            picks = self.rng.choice(len(self.population),
                                    size=min(self.sample_size,
                                             len(self.population)),
                                    replace=False)
            parent = max((self.population[int(i)] for i in picks),
                         key=lambda entry: (entry[2], -entry[0]))
            batch.append(self._new_trial(self._mutate(parent[1]), self.budget,
                                         parent_id=parent[0]))
        return batch

    def tell(self, trial: Trial, result: TrialResult) -> None:
        super().tell(trial, result)
        if result.failed:
            return
        self.population.append((trial.trial_id, list(trial.ops),
                                float(result.score)))
        if len(self.population) > self.population_size:
            self.population.pop(0)  # age out the oldest

    def is_done(self) -> bool:
        return self._next_id >= self.num_trials

    def params(self) -> Dict[str, Any]:
        return {"num_trials": self.num_trials,
                "population_size": self.population_size,
                "sample_size": self.sample_size,
                "batch_size": self.batch_size, "budget": self.budget}


class SuccessiveHalving(Strategy):
    """Successive halving with geometric rung budgets (ASHA-style).

    ``num_trials`` random op-vectors start at ``min_budget`` epochs; after
    each rung completes, the top ``1/eta`` (deterministic score-then-id
    ranking) are re-evaluated at ``eta×`` the budget, until one rung runs
    at ``max_budget``.  Promotions reuse the parent trial's seed, so a
    promotion differs from its parent *only* in budget — the clean
    early-stopping semantics the speedup benchmark measures.
    """

    name = "asha"

    def __init__(self, num_slots: int, num_ops: int, max_budget: int,
                 seed: int = 0, num_trials: int = 8, eta: int = 2,
                 min_budget: Optional[int] = None) -> None:
        super().__init__(num_slots, num_ops, max_budget, seed=seed)
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if num_trials < 1:
            raise ValueError("num_trials must be >= 1")
        self.eta = int(eta)
        self.num_trials = int(num_trials)
        if min_budget is None:
            # deepest geometric ladder that still starts at >= 1 epoch
            rungs = max(1, int(math.floor(math.log(max_budget, self.eta))))
            min_budget = max(1, max_budget // (self.eta ** rungs))
        if not 1 <= min_budget <= max_budget:
            raise ValueError("min_budget must be in [1, max_budget]")
        self.min_budget = int(min_budget)
        # divide down from max_budget so the ladder ends *exactly* at the
        # full budget (multiplying up from min_budget would append a
        # near-duplicate top rung whenever eta^k misses max_budget)
        ladder = [self.max_budget]
        while ladder[-1] // self.eta >= self.min_budget and \
                ladder[-1] // self.eta < ladder[-1]:
            ladder.append(ladder[-1] // self.eta)
        if ladder[-1] > self.min_budget:
            ladder.append(self.min_budget)
        self.budgets: List[int] = list(reversed(ladder))
        self._rung = 0
        self._pending: Dict[int, Trial] = {}
        self._rung_done: List[tuple] = []  # (trial from this rung, result)

    def ask(self) -> List[Trial]:
        if self._rung >= len(self.budgets):
            return []
        if self._pending:  # previous rung still in flight
            return []
        if self._rung == 0 and not self._rung_done:
            batch = [self._new_trial(self._random_ops(), self.budgets[0],
                                     rung=0)
                     for _ in range(self.num_trials)]
        else:
            survivors = [entry for entry in self._rung_done
                         if not entry[1].failed]
            if not survivors:
                self._rung = len(self.budgets)
                return []
            survivors.sort(key=lambda entry: (-entry[1].score,
                                              entry[0].trial_id))
            keep = max(1, len(self._rung_done) // self.eta)
            batch = [self._new_trial(parent.ops, self.budgets[self._rung],
                                     rung=self._rung,
                                     parent_id=parent.trial_id,
                                     seed=parent.seed)
                     for parent, _ in survivors[:keep]]
        self._rung_done = []
        self._pending = {t.trial_id: t for t in batch}
        return batch

    def tell(self, trial: Trial, result: TrialResult) -> None:
        super().tell(trial, result)
        self._pending.pop(trial.trial_id, None)
        self._rung_done.append((trial, result))
        if not self._pending:
            self._rung += 1

    def is_done(self) -> bool:
        return self._rung >= len(self.budgets) and not self._pending

    def params(self) -> Dict[str, Any]:
        return {"num_trials": self.num_trials, "eta": self.eta,
                "min_budget": self.min_budget, "budgets": self.budgets}


class OneShotDARTS(Strategy):
    """The paper's one-shot bi-level search as a single-trial strategy.

    Folding AutoAC proper behind the ask/tell interface means the same
    scheduler, journal and leaderboard serve both worlds — and the
    speedup benchmark can compare them on equal footing.
    """

    name = "darts"

    def __init__(self, num_slots: int, num_ops: int, max_budget: int,
                 seed: int = 0,
                 overrides: Optional[Mapping[str, Any]] = None) -> None:
        super().__init__(num_slots, num_ops, max_budget, seed=seed)
        self.overrides = dict(overrides or {})
        self._asked = False

    def ask(self) -> List[Trial]:
        if self._asked:
            return []
        self._asked = True
        params = {"overrides": self.overrides} if self.overrides else {}
        return [self._new_trial(None, None, params=params, seed=self.seed)]

    def is_done(self) -> bool:
        return self._asked

    def params(self) -> Dict[str, Any]:
        return {"overrides": self.overrides}


class GridSearch(Strategy):
    """One one-shot trial per explicit search-config override set.

    Reimplements the paper's sensitivity sweeps (cluster count M,
    lambda, alpha lr/wd — Figs. 8–11) on the scheduler: every grid point
    runs the full search+retrain with ``values[i]`` applied on top of the
    task's search config.  All trials share the *base* seed (not a
    derived one) so a grid point reproduces the equivalent sequential
    ``train_autoac(..., **overrides)`` call bit for bit.
    """

    name = "grid"

    def __init__(self, num_slots: int, num_ops: int, max_budget: int,
                 seed: int = 0,
                 values: Sequence[Mapping[str, Any]] = ()) -> None:
        super().__init__(num_slots, num_ops, max_budget, seed=seed)
        if not values:
            raise ValueError("grid search needs a non-empty values list")
        self.values = [dict(v) for v in values]
        self._asked = False

    def ask(self) -> List[Trial]:
        if self._asked:
            return []
        self._asked = True
        return [self._new_trial(None, None,
                                params={"overrides": overrides},
                                seed=self.seed)
                for overrides in self.values]

    def is_done(self) -> bool:
        return self._asked

    def params(self) -> Dict[str, Any]:
        return {"values": self.values}


# ----------------------------------------------------------------------
# registry (mirrors repro.models.registry)
# ----------------------------------------------------------------------

STRATEGY_REGISTRY: Dict[str, Callable[..., Strategy]] = {}


def register_strategy(name: str, factory: Callable[..., Strategy],
                      overwrite: bool = False) -> None:
    """Register a strategy factory under ``name``.

    ``factory(num_slots=..., num_ops=..., max_budget=..., seed=...,
    **kwargs) -> Strategy``.
    """
    if name in STRATEGY_REGISTRY and not overwrite:
        raise ValueError(f"strategy {name!r} already registered")
    STRATEGY_REGISTRY[name] = factory


def available_strategies() -> List[str]:
    return sorted(STRATEGY_REGISTRY)


def build_strategy(name: str, num_slots: int, num_ops: int, max_budget: int,
                   seed: int = 0, **kwargs) -> Strategy:
    """Instantiate a registered strategy; unknown names raise ValueError."""
    key = str(name).lower()
    if key not in STRATEGY_REGISTRY:
        raise ValueError(f"unknown strategy {name!r}; "
                         f"available: {available_strategies()}")
    return STRATEGY_REGISTRY[key](num_slots=num_slots, num_ops=num_ops,
                                  max_budget=max_budget, seed=seed, **kwargs)


register_strategy(RandomSearch.name, RandomSearch)
register_strategy(RegularizedEvolution.name, RegularizedEvolution)
register_strategy(SuccessiveHalving.name, SuccessiveHalving)
register_strategy(OneShotDARTS.name, OneShotDARTS)
register_strategy(GridSearch.name, GridSearch)


__all__ = [
    "Strategy",
    "RandomSearch",
    "RegularizedEvolution",
    "SuccessiveHalving",
    "OneShotDARTS",
    "GridSearch",
    "STRATEGY_REGISTRY",
    "register_strategy",
    "available_strategies",
    "build_strategy",
]
