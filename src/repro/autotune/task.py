"""The tuning task: everything a worker needs to evaluate one trial.

A :class:`TuneTask` must cross a ``multiprocessing`` pipe (picklable) and
leave a faithful fingerprint in the journal header (JSON-able), so it is
built from declarative pieces only: a :class:`DatasetRef` that *names* a
dataset instead of carrying its arrays, plain dimensions, and (for
one-shot trials) an :class:`~repro.core.AutoACConfig`.

Trial-based strategies search over *slots*, not individual V⁻ nodes —
the same coarsening the paper applies through its learned clustering
(§IV-C: nodes in one cluster share one completion op).  Since trials
propose assignments up front, the slot map must exist before any
training happens: :func:`slot_labels` buckets V⁻ nodes by node type and
degree, deterministically, so a slot groups structurally similar nodes
(high-degree nodes favour aggregation ops, isolated ones favour one-hot
— the generator's "guest node" story).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..completion import SearchSpace
from ..core import AutoACConfig
from ..datasets import HeteroDataset, generate, get_dataset
from ..datasets.generator import SchemaSpec


@dataclass(frozen=True)
class DatasetRef:
    """A regenerable pointer to a dataset (never the arrays themselves).

    Either a registry name + scale (``DatasetRef("imdb", "tiny")``) or an
    inline generator :class:`SchemaSpec` (``DatasetRef.from_spec(spec)``)
    — both rebuild bit-identical datasets in any process, which is what
    makes spawn-mode workers and journal resumes exact.
    """

    name: str = "imdb"
    scale: str = "tiny"
    seed: int = 0
    spec: Optional[SchemaSpec] = None

    @classmethod
    def from_spec(cls, spec: SchemaSpec, seed: int = 0) -> "DatasetRef":
        return cls(name=spec.name, scale="spec", seed=seed, spec=spec)

    def build(self) -> HeteroDataset:
        if self.spec is not None:
            return generate(self.spec, seed=self.seed)
        return get_dataset(self.name, scale=self.scale, seed=self.seed)

    def fingerprint(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "scale": self.scale,
                               "seed": self.seed}
        if self.spec is not None:
            out["spec"] = dataclasses.asdict(self.spec)
        return out


def slot_labels(dataset: HeteroDataset, num_slots: int) -> np.ndarray:
    """Deterministic V⁻ node → slot map (the trial search granularity).

    V⁻ nodes are ordered by ``(node type, total degree, global id)`` and
    cut into ``num_slots`` contiguous, equally-sized buckets.  Pure
    arithmetic on the graph — no RNG, no training — so every process
    derives the identical map and journaled op-vectors stay meaningful
    across resumes.
    """
    missing = dataset.missing_global_ids
    if missing.size == 0:
        raise ValueError("dataset has no missing attributes to tune over")
    num_slots = min(int(num_slots), missing.size)
    if num_slots < 1:
        raise ValueError("num_slots must be >= 1")
    degrees = dataset.graph.degrees()[missing]
    types = dataset.graph.node_type_index[missing]
    order = np.lexsort((missing, degrees, types))
    labels = np.empty(missing.size, dtype=np.int64)
    # equal-size contiguous chunks over the sorted order
    labels[order] = (np.arange(missing.size, dtype=np.int64)
                     * num_slots) // missing.size
    return labels


@dataclass
class TuneTask:
    """Declarative description of one tuning problem.

    ``num_slots`` fixes the op-vector length strategies search over;
    ``max_budget`` is the full retrain epoch budget (ASHA's top rung,
    random search's default).  ``search_config`` is consulted only by
    one-shot trials (``ops=None``) — its ``hidden_dim``/``out_dim``/
    ``model_kwargs`` then override the task's, mirroring
    :func:`repro.core.run_autoac`.
    """

    dataset: DatasetRef
    model_name: str = "simple_hgn"
    hidden_dim: int = 64
    out_dim: int = 64
    num_slots: int = 8
    max_budget: int = 40
    op_names: Optional[Tuple[str, ...]] = None   #: None → the paper's space
    search_config: Optional[AutoACConfig] = None
    model_kwargs: Dict[str, Any] = field(default_factory=dict)

    def space(self) -> SearchSpace:
        if self.op_names is None:
            return SearchSpace()
        return SearchSpace(list(self.op_names))

    @property
    def num_ops(self) -> int:
        return len(self.space())

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-able identity for the journal header (resume validation)."""
        out: Dict[str, Any] = {
            "dataset": self.dataset.fingerprint(),
            "model_name": self.model_name,
            "hidden_dim": self.hidden_dim,
            "out_dim": self.out_dim,
            "num_slots": self.num_slots,
            "max_budget": self.max_budget,
            "op_names": (None if self.op_names is None
                         else list(self.op_names)),
            "model_kwargs": dict(self.model_kwargs),
        }
        if self.search_config is not None:
            out["search_config"] = dataclasses.asdict(self.search_config)
        return out


__all__ = ["DatasetRef", "TuneTask", "slot_labels"]
