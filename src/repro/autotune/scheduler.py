"""The parallel, resumable trial scheduler.

Drives a :class:`~repro.autotune.Strategy` through ask/tell rounds:

* each asked batch is executed by :func:`~repro.autotune.worker.
  execute_trial` — inline for ``workers <= 1``, on a persistent
  ``multiprocessing`` pool otherwise (fork where available, spawn-safe
  either way because trials carry pre-derived seeds);
* results are told back **in trial-id order**, so the strategy's decision
  stream — and therefore the leaderboard — is identical no matter how
  many workers ran or which finished first;
* every completed trial is appended to a JSON-lines
  :class:`~repro.autotune.TrialJournal` (flushed + fsync'd), and
  ``resume=True`` replays the journal instead of re-running its trials:
  a scheduler killed mid-run restarts exactly where it left off and
  reproduces the identical leaderboard.
"""

from __future__ import annotations

import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..telemetry import DEFAULT_TIME_BUCKETS, get_registry
from .journal import TrialJournal, validate_fingerprint
from .stoppers import TrialStopper
from .strategies import Strategy
from .task import TuneTask
from .trial import Trial, TrialResult, leaderboard_key
from .worker import execute_trial


@dataclass
class TuneStats:
    """Execution accounting — the resume tests assert on these."""

    executed: int = 0       #: trials actually run this session
    replayed: int = 0       #: trials served from the journal
    failed: int = 0         #: trials that returned a failed result
    batches: int = 0        #: ask/tell rounds driven
    worker_deaths: int = 0  #: worker processes lost (OOM kill, segfault)

    def to_dict(self) -> Dict[str, int]:
        return {"executed": self.executed, "replayed": self.replayed,
                "failed": self.failed, "batches": self.batches,
                "worker_deaths": self.worker_deaths}


@dataclass
class TuneReport:
    """Outcome of one scheduler run: every result plus the accounting."""

    results: List[TrialResult]
    stats: TuneStats
    task: TuneTask
    strategy_fingerprint: Dict[str, Any] = field(default_factory=dict)
    journal_path: Optional[str] = None
    #: ``{"trial_id", "reason", "stopper"}`` when a stopper ended the run
    stopped: Optional[Dict[str, Any]] = None

    def leaderboard(self, k: Optional[int] = None) -> List[TrialResult]:
        """Completed trials, best score first (deterministic tie-break)."""
        ranked = sorted((r for r in self.results if not r.failed),
                        key=leaderboard_key)
        return ranked if k is None else ranked[:k]

    @property
    def best(self) -> TrialResult:
        ranked = self.leaderboard(1)
        if not ranked:
            raise ValueError("no completed trials — nothing to export")
        return ranked[0]


def _normalize(payload: Dict[str, Any]) -> Dict[str, Any]:
    """JSON round-trip so in-memory and journaled values compare equal."""
    return json.loads(json.dumps(payload, sort_keys=True))


class TrialScheduler:
    """Runs one strategy over one task; see the module docstring."""

    def __init__(self, task: TuneTask, strategy: Strategy,
                 workers: int = 0, journal: Optional[str] = None,
                 resume: bool = False,
                 mp_context: Optional[str] = None,
                 stopper: Optional[TrialStopper] = None,
                 timelines: bool = True) -> None:
        self.task = task
        self.strategy = strategy
        self.workers = max(0, int(workers))
        self.journal_path = journal
        self.resume = bool(resume)
        if mp_context is None:
            mp_context = ("fork" if "fork" in
                          multiprocessing.get_all_start_methods()
                          else "spawn")
        self.mp_context = mp_context
        self.stopper = stopper
        self.timelines = bool(timelines)
        self.stats = TuneStats()
        self._pool_broken = False
        # worker/journal events mirror TuneStats onto the process-global
        # registry so a long-lived tuner is scrapeable like the server
        registry = get_registry()
        self._m_trials = registry.counter(
            "tune_trials_total", "Trials by outcome", labels=("status",))
        self._m_batches = registry.counter(
            "tune_batches_total", "Ask/tell rounds driven")
        self._m_trial_seconds = registry.histogram(
            "tune_trial_seconds", "Per-trial evaluation wall time",
            buckets=DEFAULT_TIME_BUCKETS)
        self._m_journal = registry.counter(
            "tune_journal_records_total", "Journal lines appended",
            labels=("kind",))

    # ------------------------------------------------------------------
    def fingerprint(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"task": self.task.fingerprint(),
                                   "strategy": self.strategy.fingerprint()}
        if self.stopper is not None:
            # a changed stop rule changes the trial stream, so it must
            # invalidate resume exactly like a changed strategy would;
            # stopper-less runs keep the original two-key layout so old
            # journals stay resumable
            payload["stopper"] = self.stopper.fingerprint()
        return _normalize(payload)

    # ------------------------------------------------------------------
    def _load_replay(self) -> Dict[int, Dict[str, Any]]:
        """Journal entries keyed by trial id (empty without resume)."""
        if not (self.journal_path and self.resume):
            return {}
        header, entries = TrialJournal.read(self.journal_path)
        if header is None:
            return {}
        validate_fingerprint(header, self.fingerprint(), self.journal_path)
        return {int(entry["trial"]["trial_id"]): entry for entry in entries}

    def _replayed_result(self, trial: Trial,
                         entry: Dict[str, Any]) -> TrialResult:
        """Validate one journal entry against the re-asked trial."""
        recorded = {key: entry["trial"].get(key)
                    for key in ("trial_id", "budget", "seed", "ops",
                                "rung", "params")}
        expected = _normalize(trial.fingerprint())
        if _normalize(recorded) != expected:
            raise ValueError(
                f"journal replay mismatch for trial {trial.trial_id}: the "
                f"strategy re-asked a different trial than the journal "
                f"recorded (did the code or config change?)\n"
                f"  journal: {json.dumps(recorded, sort_keys=True)[:300]}\n"
                f"  asked:   {json.dumps(expected, sort_keys=True)[:300]}")
        return TrialResult.from_dict(entry["result"])

    # ------------------------------------------------------------------
    def _execute_batch(self, pool: Optional[ProcessPoolExecutor],
                       pending: List[Trial],
                       journal: Optional[TrialJournal]) -> Dict[int,
                                                                TrialResult]:
        """Run the pending trials, journaling each one *as it finishes*.

        Journaling per completion (not per batch) is what makes a kill
        mid-batch cheap to resume from: every already-finished trial of
        the interrupted batch is on disk.  Journal line order may differ
        from trial-id order under parallel workers; replay is keyed by
        trial id, so resume does not care.
        """
        if not pending:
            return {}
        payloads: Dict[int, Dict] = {}

        def record(trial: Trial, payload: Dict) -> None:
            # the timeline is derived observability data: it rides next
            # to the result over the mp pipe but is journaled as its own
            # record kind, never inside the trial line resume replays
            timeline = payload.pop("timeline", None)
            payloads[int(payload["trial_id"])] = payload
            # worker deaths are transient infrastructure failures, not
            # evaluation outcomes — keep them out of the journal so a
            # resume re-executes them instead of replaying the failure
            if journal is not None and payload.get("status") != "worker_died":
                journal.append_trial(trial.to_dict(), payload)
                self._m_journal.inc(kind="trial")
                if timeline is not None and self.timelines:
                    journal.append_timeline(timeline)
                    self._m_journal.inc(kind="timeline")

        if pool is None:
            for trial in pending:
                record(trial, execute_trial(self.task, trial))
        else:
            futures = {pool.submit(execute_trial, self.task, trial): trial
                       for trial in pending}
            for future in as_completed(futures):
                trial = futures[future]
                try:
                    payload = future.result()
                except Exception as exc:  # noqa: BLE001
                    # execute_trial catches in-process errors itself, so
                    # reaching here means the worker *process* died (OOM
                    # kill, segfault) and the pool is broken — record a
                    # failed trial and let run() rebuild the pool, instead
                    # of aborting the whole search
                    self._pool_broken = True
                    self.stats.worker_deaths += 1
                    self._m_trials.inc(status="worker_died")
                    payload = {
                        "trial_id": int(trial.trial_id), "score": None,
                        "seed": int(trial.seed), "rung": int(trial.rung),
                        "ops": trial.ops, "status": "worker_died",
                        "error": (f"worker process died: "
                                  f"{type(exc).__name__}: {exc}"),
                    }
                record(trial, payload)
        return {trial_id: TrialResult.from_dict(payload)
                for trial_id, payload in payloads.items()}

    # ------------------------------------------------------------------
    def run(self) -> TuneReport:
        replay = self._load_replay()
        journal = None
        if self.journal_path:
            journal = TrialJournal(self.journal_path)
            journal.open(self.fingerprint(), append=bool(replay))
            self._m_journal.inc(kind="header")

        pool: Optional[ProcessPoolExecutor] = None
        results: List[TrialResult] = []
        stopped: Optional[Dict[str, Any]] = None
        try:
            while stopped is None:
                batch = self.strategy.ask()
                if not batch:
                    break
                self.stats.batches += 1
                self._m_batches.inc()
                pending = [t for t in batch if t.trial_id not in replay]
                if pending and pool is None and self.workers > 1:
                    pool = ProcessPoolExecutor(
                        max_workers=self.workers,
                        mp_context=multiprocessing.get_context(
                            self.mp_context))
                fresh = self._execute_batch(pool, pending, journal)
                if self._pool_broken and pool is not None:
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None  # lazily rebuilt for the next batch
                    self._pool_broken = False
                for trial in sorted(batch, key=lambda t: t.trial_id):
                    if trial.trial_id in replay:
                        result = self._replayed_result(
                            trial, replay[trial.trial_id])
                        self.stats.replayed += 1
                        self._m_trials.inc(status="replayed")
                    else:
                        result = fresh[trial.trial_id]
                        self.stats.executed += 1
                        self._m_trials.inc(status="executed")
                        self._m_trial_seconds.observe(result.seconds)
                    if result.failed:
                        self.stats.failed += 1
                        self._m_trials.inc(status="failed")
                    self.strategy.tell(trial, result)
                    results.append(result)
                    # the stopper sees the identical trial-id-ordered
                    # stream strategies do, so its verdict is a pure
                    # function of the told history — the whole batch is
                    # still told (it already ran), then the run ends
                    if self.stopper is not None and stopped is None:
                        reason = self.stopper.update(trial, result)
                        if reason is not None:
                            stopped = {"trial_id": int(trial.trial_id),
                                       "reason": str(reason),
                                       "stopper": self.stopper.name}
        finally:
            if pool is not None:
                pool.shutdown()
            if journal is not None:
                # the footer is what `repro runs` surfaces: session
                # accounting (incl. worker deaths, once swallowed by the
                # pool loop) and the stopper verdict that ended the run
                journal.append_footer({"stats": self.stats.to_dict(),
                                       "stopped": stopped})
                self._m_journal.inc(kind="footer")
                journal.close()

        return TuneReport(results=results, stats=self.stats, task=self.task,
                          strategy_fingerprint=self.strategy.fingerprint(),
                          journal_path=(str(self.journal_path)
                                        if self.journal_path else None),
                          stopped=stopped)


__all__ = ["TrialScheduler", "TuneReport", "TuneStats"]
