"""The parallel, resumable trial scheduler.

Drives a :class:`~repro.autotune.Strategy` through ask/tell rounds:

* each asked batch is executed by :func:`~repro.autotune.worker.
  execute_trial` — inline for ``workers <= 1``, on a persistent
  ``multiprocessing`` pool otherwise (fork where available, spawn-safe
  either way because trials carry pre-derived seeds);
* results are told back **in trial-id order**, so the strategy's decision
  stream — and therefore the leaderboard — is identical no matter how
  many workers ran or which finished first;
* every completed trial is appended to a JSON-lines
  :class:`~repro.autotune.TrialJournal` (flushed + fsync'd), and
  ``resume=True`` replays the journal instead of re-running its trials:
  a scheduler killed mid-run restarts exactly where it left off and
  reproduces the identical leaderboard.
"""

from __future__ import annotations

import json
import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..faults import fault_site
from ..telemetry import DEFAULT_TIME_BUCKETS, get_registry
from .journal import TrialJournal, validate_fingerprint
from .stoppers import TrialStopper
from .strategies import Strategy
from .task import TuneTask
from .trial import Trial, TrialResult, leaderboard_key
from .worker import execute_trial


@dataclass
class TuneStats:
    """Execution accounting — the resume tests assert on these."""

    executed: int = 0       #: trials actually run this session
    replayed: int = 0       #: trials served from the journal
    failed: int = 0         #: trials that returned a failed result
    batches: int = 0        #: ask/tell rounds driven
    worker_deaths: int = 0  #: worker processes lost (OOM kill, segfault)
    retried: int = 0        #: attempts re-queued after a worker death
    quarantined: int = 0    #: trials given up on after exhausting retries
    timeouts: int = 0       #: trials abandoned at the trial timeout

    def to_dict(self) -> Dict[str, int]:
        return {"executed": self.executed, "replayed": self.replayed,
                "failed": self.failed, "batches": self.batches,
                "worker_deaths": self.worker_deaths,
                "retried": self.retried,
                "quarantined": self.quarantined,
                "timeouts": self.timeouts}


@dataclass
class TuneReport:
    """Outcome of one scheduler run: every result plus the accounting."""

    results: List[TrialResult]
    stats: TuneStats
    task: TuneTask
    strategy_fingerprint: Dict[str, Any] = field(default_factory=dict)
    journal_path: Optional[str] = None
    #: ``{"trial_id", "reason", "stopper"}`` when a stopper ended the run
    stopped: Optional[Dict[str, Any]] = None

    def leaderboard(self, k: Optional[int] = None) -> List[TrialResult]:
        """Completed trials, best score first (deterministic tie-break)."""
        ranked = sorted((r for r in self.results if not r.failed),
                        key=leaderboard_key)
        return ranked if k is None else ranked[:k]

    @property
    def best(self) -> TrialResult:
        ranked = self.leaderboard(1)
        if not ranked:
            raise ValueError("no completed trials — nothing to export")
        return ranked[0]


def _normalize(payload: Dict[str, Any]) -> Dict[str, Any]:
    """JSON round-trip so in-memory and journaled values compare equal."""
    return json.loads(json.dumps(payload, sort_keys=True))


class TrialScheduler:
    """Runs one strategy over one task; see the module docstring."""

    def __init__(self, task: TuneTask, strategy: Strategy,
                 workers: int = 0, journal: Optional[str] = None,
                 resume: bool = False,
                 mp_context: Optional[str] = None,
                 stopper: Optional[TrialStopper] = None,
                 timelines: bool = True,
                 max_trial_retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 trial_timeout_s: Optional[float] = None) -> None:
        self.task = task
        self.strategy = strategy
        self.workers = max(0, int(workers))
        self.journal_path = journal
        self.resume = bool(resume)
        if mp_context is None:
            mp_context = ("fork" if "fork" in
                          multiprocessing.get_all_start_methods()
                          else "spawn")
        self.mp_context = mp_context
        self.stopper = stopper
        self.timelines = bool(timelines)
        #: how many times a trial whose worker *process* died is re-run
        #: before it is quarantined (0 → first death is final); in-process
        #: trial failures are results, not deaths, and are never retried
        self.max_trial_retries = max(0, int(max_trial_retries))
        self.retry_backoff_s = max(0.0, float(retry_backoff_s))
        #: wall-clock cap per submission wave; a trial still running past
        #: it is recorded as failed and its (hung) pool is abandoned
        self.trial_timeout_s = (None if trial_timeout_s is None
                                else float(trial_timeout_s))
        self.stats = TuneStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        # worker/journal events mirror TuneStats onto the process-global
        # registry so a long-lived tuner is scrapeable like the server
        registry = get_registry()
        self._m_trials = registry.counter(
            "tune_trials_total", "Trials by outcome", labels=("status",))
        self._m_batches = registry.counter(
            "tune_batches_total", "Ask/tell rounds driven")
        self._m_trial_seconds = registry.histogram(
            "tune_trial_seconds", "Per-trial evaluation wall time",
            buckets=DEFAULT_TIME_BUCKETS)
        self._m_journal = registry.counter(
            "tune_journal_records_total", "Journal lines appended",
            labels=("kind",))
        self._m_retries = registry.counter(
            "tune_trial_retries_total",
            "Trial attempts re-queued after a worker death")

    # ------------------------------------------------------------------
    def fingerprint(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"task": self.task.fingerprint(),
                                   "strategy": self.strategy.fingerprint()}
        if self.stopper is not None:
            # a changed stop rule changes the trial stream, so it must
            # invalidate resume exactly like a changed strategy would;
            # stopper-less runs keep the original two-key layout so old
            # journals stay resumable
            payload["stopper"] = self.stopper.fingerprint()
        return _normalize(payload)

    # ------------------------------------------------------------------
    def _load_replay(self) -> Dict[int, Dict[str, Any]]:
        """Journal entries keyed by trial id (empty without resume)."""
        if not (self.journal_path and self.resume):
            return {}
        header, entries = TrialJournal.read(self.journal_path)
        if header is None:
            return {}
        validate_fingerprint(header, self.fingerprint(), self.journal_path)
        return {int(entry["trial"]["trial_id"]): entry for entry in entries}

    def _replayed_result(self, trial: Trial,
                         entry: Dict[str, Any]) -> TrialResult:
        """Validate one journal entry against the re-asked trial."""
        recorded = {key: entry["trial"].get(key)
                    for key in ("trial_id", "budget", "seed", "ops",
                                "rung", "params")}
        expected = _normalize(trial.fingerprint())
        if _normalize(recorded) != expected:
            raise ValueError(
                f"journal replay mismatch for trial {trial.trial_id}: the "
                f"strategy re-asked a different trial than the journal "
                f"recorded (did the code or config change?)\n"
                f"  journal: {json.dumps(recorded, sort_keys=True)[:300]}\n"
                f"  asked:   {json.dumps(expected, sort_keys=True)[:300]}")
        return TrialResult.from_dict(entry["result"])

    # ------------------------------------------------------------------
    # pool lifecycle — lazily built, abandoned when broken or hung
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self.workers > 1 and self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.mp_context))
        return self._pool

    def _abandon_pool(self) -> None:
        """Drop a broken/hung pool; the next wave builds a fresh one.

        ``wait=False`` because a hung worker cannot be joined — its
        process is leaked until it finishes or dies on its own, which
        is the honest trade for not stalling the whole search.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    # ------------------------------------------------------------------
    def _failure_payload(self, trial: Trial, status: str,
                         error: str) -> Dict[str, Any]:
        return {"trial_id": int(trial.trial_id), "score": None,
                "seed": int(trial.seed), "rung": int(trial.rung),
                "ops": trial.ops, "status": status, "error": error}

    def _execute_batch(self, pending: List[Trial],
                       journal: Optional[TrialJournal]) -> Dict[int,
                                                                TrialResult]:
        """Run the pending trials, journaling each one *as it finishes*.

        Journaling per completion (not per batch) is what makes a kill
        mid-batch cheap to resume from: every already-finished trial of
        the interrupted batch is on disk.  Journal line order may differ
        from trial-id order under parallel workers; replay is keyed by
        trial id, so resume does not care.

        Self-healing: a trial whose worker *process* died (OOM kill,
        segfault, injected fault) is re-queued up to
        ``max_trial_retries`` times with exponential backoff on a
        rebuilt pool; a trial that keeps killing its worker is
        **quarantined** — journaled with ``status="quarantined"`` so a
        resume replays the verdict instead of walking back into the
        crash.  Transient deaths (retry succeeded, or retries left)
        stay out of the journal.  A wave that outlives
        ``trial_timeout_s`` marks its unfinished trials failed and
        abandons the hung pool.
        """
        if not pending:
            return {}
        payloads: Dict[int, Dict] = {}

        def record(trial: Trial, payload: Dict) -> None:
            # the timeline is derived observability data: it rides next
            # to the result over the mp pipe but is journaled as its own
            # record kind, never inside the trial line resume replays
            timeline = payload.pop("timeline", None)
            payloads[int(payload["trial_id"])] = payload
            # worker deaths are transient infrastructure failures, not
            # evaluation outcomes — keep them out of the journal so a
            # resume re-executes them instead of replaying the failure
            # (a quarantined trial IS journaled: its verdict is final)
            if journal is not None and payload.get("status") != "worker_died":
                journal.append_trial(trial.to_dict(), payload)
                self._m_journal.inc(kind="trial")
                if timeline is not None and self.timelines:
                    journal.append_timeline(timeline)
                    self._m_journal.inc(kind="timeline")

        if self.workers <= 1:
            for trial in pending:
                record(trial, execute_trial(self.task, trial))
            return {trial_id: TrialResult.from_dict(payload)
                    for trial_id, payload in payloads.items()}

        attempts: Dict[int, int] = {t.trial_id: 0 for t in pending}
        queue: List[Trial] = list(pending)
        while queue:
            pool = self._ensure_pool()
            if any(attempts[t.trial_id] for t in queue):
                # retries run ONE at a time: a poison trial breaks every
                # pool it touches, and each break fails its in-flight
                # siblings too — isolating retries stops innocent trials
                # from absorbing the poison trial's deaths (and being
                # quarantined as collateral damage)
                queue.sort(key=lambda t: t.trial_id)
                wave = [queue.pop(0)]
            else:
                wave = queue
                queue = []
            futures = {
                pool.submit(execute_trial, self.task, trial,
                            attempts[trial.trial_id]): trial
                for trial in wave}
            submitted = time.monotonic()
            outstanding = set(futures)
            pool_damaged = False
            while outstanding:
                if self.trial_timeout_s is None:
                    done, outstanding = wait(outstanding,
                                             return_when=FIRST_COMPLETED)
                else:
                    budget = (submitted + self.trial_timeout_s
                              - time.monotonic())
                    done, outstanding = wait(outstanding,
                                             timeout=max(budget, 0.0),
                                             return_when=FIRST_COMPLETED)
                    if not done and budget <= 0:
                        # the wave's time budget is gone: everything
                        # still running is hung — fail those trials and
                        # walk away from the pool that holds them
                        for future in outstanding:
                            trial = futures[future]
                            self.stats.timeouts += 1
                            self._m_trials.inc(status="timeout")
                            record(trial, self._failure_payload(
                                trial, "failed",
                                f"trial exceeded the "
                                f"{self.trial_timeout_s}s timeout"))
                        outstanding = set()
                        pool_damaged = True
                        continue
                for future in done:
                    trial = futures[future]
                    try:
                        payload = future.result()
                    except Exception as exc:  # noqa: BLE001
                        # execute_trial catches in-process errors itself,
                        # so reaching here means the worker *process*
                        # died and the pool is broken
                        pool_damaged = True
                        self.stats.worker_deaths += 1
                        self._m_trials.inc(status="worker_died")
                        attempt = attempts[trial.trial_id]
                        if attempt < self.max_trial_retries:
                            attempts[trial.trial_id] = attempt + 1
                            self.stats.retried += 1
                            self._m_retries.inc()
                            if self.retry_backoff_s:
                                time.sleep(self.retry_backoff_s
                                           * (2 ** attempt))
                            queue.append(trial)
                            continue
                        status = ("quarantined" if self.max_trial_retries
                                  else "worker_died")
                        if status == "quarantined":
                            self.stats.quarantined += 1
                            self._m_trials.inc(status="quarantined")
                        record(trial, self._failure_payload(
                            trial, status,
                            f"worker process died "
                            f"(attempt {attempt + 1} of "
                            f"{self.max_trial_retries + 1}): "
                            f"{type(exc).__name__}: {exc}"))
                        continue
                    record(trial, payload)
            if pool_damaged:
                self._abandon_pool()
        return {trial_id: TrialResult.from_dict(payload)
                for trial_id, payload in payloads.items()}

    # ------------------------------------------------------------------
    def run(self) -> TuneReport:
        replay = self._load_replay()
        journal = None
        if self.journal_path:
            journal = TrialJournal(self.journal_path)
            journal.open(self.fingerprint(), append=bool(replay))
            self._m_journal.inc(kind="header")

        results: List[TrialResult] = []
        stopped: Optional[Dict[str, Any]] = None
        try:
            while stopped is None:
                batch = self.strategy.ask()
                if not batch:
                    break
                fault_site("scheduler.batch")
                self.stats.batches += 1
                self._m_batches.inc()
                pending = [t for t in batch if t.trial_id not in replay]
                fresh = self._execute_batch(pending, journal)
                for trial in sorted(batch, key=lambda t: t.trial_id):
                    if trial.trial_id in replay:
                        result = self._replayed_result(
                            trial, replay[trial.trial_id])
                        self.stats.replayed += 1
                        self._m_trials.inc(status="replayed")
                    else:
                        result = fresh[trial.trial_id]
                        self.stats.executed += 1
                        self._m_trials.inc(status="executed")
                        self._m_trial_seconds.observe(result.seconds)
                    if result.failed:
                        self.stats.failed += 1
                        self._m_trials.inc(status="failed")
                    self.strategy.tell(trial, result)
                    results.append(result)
                    # the stopper sees the identical trial-id-ordered
                    # stream strategies do, so its verdict is a pure
                    # function of the told history — the whole batch is
                    # still told (it already ran), then the run ends
                    if self.stopper is not None and stopped is None:
                        reason = self.stopper.update(trial, result)
                        if reason is not None:
                            stopped = {"trial_id": int(trial.trial_id),
                                       "reason": str(reason),
                                       "stopper": self.stopper.name}
        finally:
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
            if journal is not None:
                # the footer is what `repro runs` surfaces: session
                # accounting (incl. worker deaths, once swallowed by the
                # pool loop) and the stopper verdict that ended the run
                journal.append_footer({"stats": self.stats.to_dict(),
                                       "stopped": stopped})
                self._m_journal.inc(kind="footer")
                journal.close()

        return TuneReport(results=results, stats=self.stats, task=self.task,
                          strategy_fingerprint=self.strategy.fingerprint(),
                          journal_path=(str(self.journal_path)
                                        if self.journal_path else None),
                          stopped=stopped)


__all__ = ["TrialScheduler", "TuneReport", "TuneStats"]
