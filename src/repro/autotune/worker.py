"""The trial execution body — runs inline or inside a worker process.

:func:`execute_trial` is a module-level function of picklable arguments
(:class:`TuneTask`, :class:`Trial`) returning a plain JSON/npz-able dict,
so the scheduler can ship it through ``multiprocessing`` under fork *or*
spawn.  Nothing is inherited from the parent: the dataset is regenerated
from the task's :class:`DatasetRef` (memoized per process, so a pool
worker pays the cost once) and every RNG is seeded from the trial's
pre-derived seed via :func:`repro.training.set_seed`.
"""

from __future__ import annotations

import dataclasses
import json
import traceback
from typing import Any, Dict, Tuple

import numpy as np

from ..core import AutoACConfig, evaluate_architecture
from ..datasets import HeteroDataset
from ..faults import fault_site
from ..runs.timeline import timeline_from_evaluation
from ..training import set_seed
from .task import TuneTask, slot_labels
from .trial import Trial

#: per-process dataset memo: fingerprint JSON → (dataset, slot labels)
_DATASET_CACHE: Dict[str, Tuple[HeteroDataset, np.ndarray]] = {}


def _dataset_for(task: TuneTask) -> Tuple[HeteroDataset, np.ndarray]:
    key = json.dumps({"dataset": task.dataset.fingerprint(),
                      "num_slots": task.num_slots}, sort_keys=True)
    cached = _DATASET_CACHE.get(key)
    if cached is None:
        dataset = task.dataset.build()
        cached = (dataset, slot_labels(dataset, task.num_slots))
        _DATASET_CACHE.clear()  # one live dataset per worker is plenty
        _DATASET_CACHE[key] = cached
    return cached


def _search_config(task: TuneTask, trial: Trial) -> AutoACConfig:
    """The one-shot search config with the trial's overrides applied."""
    base = task.search_config or AutoACConfig(hidden_dim=task.hidden_dim,
                                              out_dim=task.out_dim,
                                              model_kwargs=dict(
                                                  task.model_kwargs))
    overrides = trial.params.get("overrides") or {}
    return dataclasses.replace(base, **overrides) if overrides else base


def execute_trial(task: TuneTask, trial: Trial,
                  attempt: int = 0) -> Dict[str, Any]:
    """Evaluate one trial; never raises — failures become failed results.

    ``attempt`` is the scheduler's retry counter for this trial.  It
    does not change the evaluation (the trial's pre-derived seed does
    all the seeding) — it exists so the ``worker.trial`` fault site can
    key kill rules as ``"<trial_id>:<attempt>"``: a plan that kills
    ``"3:0"`` takes down the first attempt's worker process and lets
    the retry through, deterministically, on every run.
    """
    try:
        fault_site("worker.trial", key=f"{int(trial.trial_id)}:{int(attempt)}")
        dataset, labels = _dataset_for(task)
        set_seed(trial.seed)
        space = task.space()
        if trial.ops is None:
            evaluation = evaluate_architecture(
                dataset, None, task.model_name, budget=trial.budget,
                space=space, seed=trial.seed,
                search_config=_search_config(task, trial))
        else:
            ops = np.asarray(trial.ops, dtype=np.int64)
            # slot_labels caps the slot count at |V⁻|, so a shorter label
            # range than task.num_slots is fine; the vector must cover it
            if ops.ndim != 1 or ops.shape[0] <= int(labels.max()):
                raise ValueError(
                    f"trial ops must have one entry per slot "
                    f"({task.num_slots}); got shape {ops.shape}")
            # train under the same retrain config one-shot trials use
            # (lr/weight-decay/...; the budget still overrides epochs and
            # patience) so every strategy's trials are scored on equal
            # footing within one task
            base_train = (task.search_config.retrain
                          if task.search_config is not None else None)
            evaluation = evaluate_architecture(
                dataset, ops[labels], task.model_name, budget=trial.budget,
                hidden_dim=task.hidden_dim, out_dim=task.out_dim,
                space=space, seed=trial.seed, train_config=base_train,
                **task.model_kwargs)
        payload: Dict[str, Any] = {
            "trial_id": int(trial.trial_id),
            "score": float(evaluation.val_macro_f1),
            "macro_f1": float(evaluation.macro_f1),
            "micro_f1": float(evaluation.micro_f1),
            "budget_used": int(evaluation.epochs_run),
            "seconds": float(evaluation.seconds),
            "seed": int(trial.seed),
            "rung": int(trial.rung),
            "ops": trial.ops,
            "op_distribution": evaluation.op_distribution(),
            "status": "completed",
            "error": None,
            "extra": {},
        }
        if trial.ops is None:
            # one-shot trials discover their assignment during the search;
            # persist it so export/resume can rebuild the winner
            payload["assignment"] = [int(a) for a in evaluation.assignment]
            if evaluation.search is not None:
                payload["extra"] = {
                    "search_seconds":
                        float(evaluation.search.search_seconds),
                    "search_epochs": float(evaluation.search.epochs_run),
                    "best_val_score":
                        float(evaluation.search.best_val_score),
                }
        else:
            payload["assignment"] = None
        # the timeline rides next to the result through the mp pipe; the
        # scheduler pops it and journals it as its own record kind
        payload["timeline"] = timeline_from_evaluation(trial,
                                                       evaluation).to_dict()
        return payload
    except Exception as exc:  # noqa: BLE001 — a trial must not kill the run
        return {
            "trial_id": int(trial.trial_id),
            "score": None,
            "seed": int(trial.seed),
            "rung": int(trial.rung),
            "ops": trial.ops,
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}\n"
                     f"{traceback.format_exc(limit=5)}",
        }


__all__ = ["execute_trial"]
