"""Composable trial stoppers — search-level early stopping for any strategy.

The per-trial budget already has early stopping (``TrainConfig.patience``
inside :func:`~repro.core.evaluate_architecture`); what the paper's
convergence story (Fig. 4) motivates *across* trials is a scheduler-level
stop: "the search has plateaued, stop paying for more trials".  A
:class:`TrialStopper` watches the scheduler's tell stream and decides
when the whole run should end.

Determinism is inherited, not earned: the scheduler feeds stoppers the
same **trial-id-ordered** result stream strategies see, so a stopper's
verdict depends only on ``(its configuration, told history)`` — never on
worker count, completion order or wall clock.  Inline, parallel and
journal-resumed runs therefore stop at the identical trial and report
identical leaderboards.  (For the same reason stoppers must not consult
time or RNGs — see :class:`TrialStopper.update`.)

Stoppers compose with ``|`` (stop when either fires) and ``&`` (stop
once both have fired), the deep-kernel ``EarlyStop`` combinator idiom:

    stopper = ProgressThresholdStopper(patience=6) | \
        TargetScoreStopper(0.9)

Every stopper is journaled into the run fingerprint (resume refuses a
journal recorded under a different stopper — a changed stop rule changes
the trial stream) and its firing verdict lands in the journal footer.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .trial import Trial, TrialResult


class TrialStopper:
    """Base search-level stopper; subclasses implement :meth:`update`.

    :meth:`update` digests one told ``(trial, result)`` pair — called in
    trial-id order, exactly like ``Strategy.tell`` — and returns a human
    -readable reason string when the search should stop, else ``None``.
    Implementations must be pure functions of their configuration and
    the told history: no clocks, no RNGs, no filesystem.
    """

    name: str = "base"

    def update(self, trial: Trial, result: TrialResult) -> Optional[str]:
        raise NotImplementedError

    def fingerprint(self) -> Dict[str, Any]:
        """JSON-able identity (journal header / resume validation)."""
        return {"stopper": self.name, **self.params()}

    def params(self) -> Dict[str, Any]:
        return {}

    # ------------------------------------------------------------------
    def __or__(self, other: "TrialStopper") -> "AnyStopper":
        return AnyStopper(self, other)

    def __and__(self, other: "TrialStopper") -> "AllStopper":
        return AllStopper(self, other)


class ProgressThresholdStopper(TrialStopper):
    """Stop once ``patience`` consecutive trials fail to make progress.

    The scheduler-level twin of the trainer's patience rule: track the
    best score seen so far; every told trial whose score does not beat
    it by *more than* ``min_delta`` burns one unit of patience, any
    sufficient improvement refills it.  Failed trials burn patience too
    — a search stuck producing failures is not progressing.
    """

    name = "progress"

    def __init__(self, patience: int = 8, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if min_delta < 0:
            raise ValueError("min_delta must be >= 0")
        self.patience = int(patience)
        self.min_delta = float(min_delta)
        self.best_score: Optional[float] = None
        self.stale = 0

    def update(self, trial: Trial, result: TrialResult) -> Optional[str]:
        score = None if result.failed else float(result.score)
        if score is not None and (self.best_score is None
                                  or score - self.best_score
                                  > self.min_delta):
            self.best_score = score
            self.stale = 0
            return None
        if score is not None and (self.best_score is None
                                  or score > self.best_score):
            self.best_score = score  # improved, but below min_delta
        self.stale += 1
        if self.stale >= self.patience:
            return (f"no improvement >= {self.min_delta} over the last "
                    f"{self.stale} trials (best {self.best_score})")
        return None

    def params(self) -> Dict[str, Any]:
        return {"patience": self.patience, "min_delta": self.min_delta}


class TargetScoreStopper(TrialStopper):
    """Stop as soon as any completed trial reaches ``target`` score."""

    name = "target_score"

    def __init__(self, target: float) -> None:
        self.target = float(target)

    def update(self, trial: Trial, result: TrialResult) -> Optional[str]:
        if not result.failed and float(result.score) >= self.target:
            return (f"trial {trial.trial_id} reached score "
                    f"{float(result.score):.4f} >= target {self.target}")
        return None

    def params(self) -> Dict[str, Any]:
        return {"target": self.target}


class MaxTrialsStopper(TrialStopper):
    """Stop after ``limit`` told trials (completed, failed or replayed)."""

    name = "max_trials"

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self.limit = int(limit)
        self.seen = 0

    def update(self, trial: Trial, result: TrialResult) -> Optional[str]:
        self.seen += 1
        if self.seen >= self.limit:
            return f"trial limit {self.limit} reached"
        return None

    def params(self) -> Dict[str, Any]:
        return {"limit": self.limit}


class _CompositeStopper(TrialStopper):
    """Shared plumbing for ``|`` / ``&`` compositions (flattens nesting)."""

    def __init__(self, *stoppers: TrialStopper) -> None:
        flat: List[TrialStopper] = []
        for stopper in stoppers:
            if isinstance(stopper, type(self)):
                flat.extend(stopper.stoppers)
            else:
                flat.append(stopper)
        if len(flat) < 2:
            raise ValueError("composite stoppers need >= 2 members")
        self.stoppers = flat

    def params(self) -> Dict[str, Any]:
        return {"members": [s.fingerprint() for s in self.stoppers]}


class AnyStopper(_CompositeStopper):
    """Fires when *any* member fires this update (``a | b``)."""

    name = "any"

    def update(self, trial: Trial, result: TrialResult) -> Optional[str]:
        # every member sees every result, even after one has fired
        reasons = [s.update(trial, result) for s in self.stoppers]
        fired = [r for r in reasons if r is not None]
        return fired[0] if fired else None


class AllStopper(_CompositeStopper):
    """Fires once *every* member has fired at some point (``a & b``)."""

    name = "all"

    def __init__(self, *stoppers: TrialStopper) -> None:
        super().__init__(*stoppers)
        self._fired: List[Optional[str]] = [None] * len(self.stoppers)

    def update(self, trial: Trial, result: TrialResult) -> Optional[str]:
        for index, stopper in enumerate(self.stoppers):
            reason = stopper.update(trial, result)
            if reason is not None and self._fired[index] is None:
                self._fired[index] = reason
        if all(reason is not None for reason in self._fired):
            return "; ".join(r for r in self._fired if r)
        return None


__all__ = [
    "TrialStopper",
    "ProgressThresholdStopper",
    "TargetScoreStopper",
    "MaxTrialsStopper",
    "AnyStopper",
    "AllStopper",
]
