"""Trial and TrialResult — the currency of the autotune subsystem.

A :class:`Trial` is one *proposed* evaluation: an op-vector over the
tuning slots (or ``None`` for "run the one-shot bi-level search"), an
epoch budget, and a pre-derived seed.  A :class:`TrialResult` is one
*completed* evaluation.  Both round-trip losslessly through plain
JSON-able dicts — that is what the journal persists line by line and
what worker processes ship back over the multiprocessing pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class Trial:
    """One architecture evaluation a strategy wants executed.

    ``ops`` assigns a completion-op index to each tuning *slot* (the
    deterministic V⁻ clusters of :func:`repro.autotune.slot_labels`);
    the worker expands it to per-node choices.  ``ops=None`` marks a
    one-shot trial: run the DARTS-style bi-level search itself, with
    optional ``params["overrides"]`` applied to the search config.
    """

    trial_id: int
    budget: Optional[int]            #: retrain epoch cap (None → config's)
    seed: int                        #: pre-derived; seeds the whole trial
    ops: Optional[List[int]] = None  #: op index per slot; None → one-shot
    rung: int = 0                    #: ASHA rung index (0 elsewhere)
    parent_id: Optional[int] = None  #: promotion/mutation lineage
    params: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> Dict[str, Any]:
        """What must match on journal replay for a resume to be valid."""
        return {"trial_id": self.trial_id, "budget": self.budget,
                "seed": self.seed, "ops": self.ops, "rung": self.rung,
                "params": self.params}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trial_id": int(self.trial_id),
            "budget": None if self.budget is None else int(self.budget),
            "seed": int(self.seed),
            "ops": None if self.ops is None else [int(o) for o in self.ops],
            "rung": int(self.rung),
            "parent_id": (None if self.parent_id is None
                          else int(self.parent_id)),
            "params": self.params,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Trial":
        return cls(
            trial_id=int(payload["trial_id"]),
            budget=(None if payload.get("budget") is None
                    else int(payload["budget"])),
            seed=int(payload["seed"]),
            ops=(None if payload.get("ops") is None
                 else [int(o) for o in payload["ops"]]),
            rung=int(payload.get("rung", 0)),
            parent_id=(None if payload.get("parent_id") is None
                       else int(payload["parent_id"])),
            params=dict(payload.get("params") or {}),
        )


@dataclass
class TrialResult:
    """One finished (or failed) trial, ready for tell/journal/leaderboard.

    ``score`` is the *selection* metric (validation macro-F1); test
    metrics ride along for reporting only.  Failed trials carry
    ``score=None`` plus the error text — they are journaled (so resume
    skips them too) but never enter the leaderboard or a population.
    """

    trial_id: int
    score: Optional[float]           #: val macro-F1; None → failed
    macro_f1: float = 0.0
    micro_f1: float = 0.0
    budget_used: int = 0             #: epochs actually consumed
    seconds: float = 0.0
    seed: int = 0
    rung: int = 0
    ops: Optional[List[int]] = None
    assignment: Optional[List[int]] = None  #: per-node, one-shot trials only
    op_distribution: Dict[str, float] = field(default_factory=dict)
    status: str = "completed"        #: "completed" | "failed"
    error: Optional[str] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.status != "completed" or self.score is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trial_id": int(self.trial_id),
            "score": None if self.score is None else float(self.score),
            "macro_f1": float(self.macro_f1),
            "micro_f1": float(self.micro_f1),
            "budget_used": int(self.budget_used),
            "seconds": float(self.seconds),
            "seed": int(self.seed),
            "rung": int(self.rung),
            "ops": None if self.ops is None else [int(o) for o in self.ops],
            "assignment": (None if self.assignment is None
                           else [int(a) for a in self.assignment]),
            "op_distribution": {k: float(v)
                                for k, v in self.op_distribution.items()},
            "status": str(self.status),
            "error": self.error,
            "extra": {k: float(v) for k, v in self.extra.items()},
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TrialResult":
        return cls(
            trial_id=int(payload["trial_id"]),
            score=(None if payload.get("score") is None
                   else float(payload["score"])),
            macro_f1=float(payload.get("macro_f1", 0.0)),
            micro_f1=float(payload.get("micro_f1", 0.0)),
            budget_used=int(payload.get("budget_used", 0)),
            seconds=float(payload.get("seconds", 0.0)),
            seed=int(payload.get("seed", 0)),
            rung=int(payload.get("rung", 0)),
            ops=(None if payload.get("ops") is None
                 else [int(o) for o in payload["ops"]]),
            assignment=(None if payload.get("assignment") is None
                        else [int(a) for a in payload["assignment"]]),
            op_distribution=dict(payload.get("op_distribution") or {}),
            status=str(payload.get("status", "completed")),
            error=payload.get("error"),
            extra=dict(payload.get("extra") or {}),
        )


def leaderboard_key(result: TrialResult):
    """Sort key: best score first, trial id breaking exact ties.

    The deterministic tie-break is what lets two schedulers with the same
    seed — and a killed-then-resumed scheduler — report *identical*
    leaderboards rather than merely equally-scored ones.
    """
    score = -float("inf") if result.score is None else result.score
    return (-score, result.trial_id)


__all__ = ["Trial", "TrialResult", "leaderboard_key"]
