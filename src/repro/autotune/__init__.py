"""``repro.autotune`` — trial-based architecture search on a scheduler.

AutoAC's paper fixes one search algorithm (the one-shot differentiable
bi-level relaxation); this subsystem treats "find a good completion
architecture" as a population of **trials** run by pluggable
**strategies** — random search, regularized evolution, successive
halving (ASHA), grid sweeps, and the one-shot searcher itself — executed
by a parallel, journal-checkpointed, exactly-resumable
:class:`TrialScheduler` whose winner exports straight to a servable
:class:`~repro.serving.ModelBundle`.

Quickstart::

    from repro.autotune import (DatasetRef, TuneTask, TrialScheduler,
                                build_strategy)

    task = TuneTask(DatasetRef("imdb", "tiny"), model_name="simple_hgn",
                    num_slots=8, max_budget=40)
    strategy = build_strategy("asha", num_slots=task.num_slots,
                              num_ops=task.num_ops,
                              max_budget=task.max_budget, seed=0,
                              num_trials=8)
    report = TrialScheduler(task, strategy, workers=4,
                            journal="tune.jsonl").run()
    print(report.best.score, report.leaderboard(3))

See ``docs/TUNING.md`` for the strategy API, budget/rung semantics,
resume guarantees and parallelism caveats.
"""

from .export import best_assignment, export_best
from .journal import (
    JOURNAL_FORMAT_VERSION,
    JournalContents,
    TrialJournal,
    validate_fingerprint,
)
from .scheduler import TrialScheduler, TuneReport, TuneStats
from .stoppers import (
    AllStopper,
    AnyStopper,
    MaxTrialsStopper,
    ProgressThresholdStopper,
    TargetScoreStopper,
    TrialStopper,
)
from .strategies import (
    STRATEGY_REGISTRY,
    GridSearch,
    OneShotDARTS,
    RandomSearch,
    RegularizedEvolution,
    Strategy,
    SuccessiveHalving,
    available_strategies,
    build_strategy,
    register_strategy,
)
from .task import DatasetRef, TuneTask, slot_labels
from .trial import Trial, TrialResult, leaderboard_key
from .worker import execute_trial

__all__ = [
    "Trial",
    "TrialResult",
    "leaderboard_key",
    "DatasetRef",
    "TuneTask",
    "slot_labels",
    "Strategy",
    "RandomSearch",
    "RegularizedEvolution",
    "SuccessiveHalving",
    "OneShotDARTS",
    "GridSearch",
    "STRATEGY_REGISTRY",
    "register_strategy",
    "available_strategies",
    "build_strategy",
    "TrialScheduler",
    "TuneReport",
    "TuneStats",
    "TrialJournal",
    "JournalContents",
    "JOURNAL_FORMAT_VERSION",
    "validate_fingerprint",
    "TrialStopper",
    "ProgressThresholdStopper",
    "TargetScoreStopper",
    "MaxTrialsStopper",
    "AnyStopper",
    "AllStopper",
    "execute_trial",
    "best_assignment",
    "export_best",
]
