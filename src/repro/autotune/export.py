"""Leaderboard winner → servable :class:`~repro.serving.ModelBundle`.

The tuning loop scores candidates on validation macro-F1; exporting
re-trains the winner at full budget **with the trial's own seed** and
freezes the result into the same versioned bundle `repro export` writes —
so a tuned architecture flows straight into the serving engine.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core import evaluate_architecture
from ..datasets import HeteroDataset
from ..serving import DatasetSpec, ModelBundle, build_bundle
from .scheduler import TuneReport
from .task import slot_labels
from .trial import TrialResult


def best_assignment(report: TuneReport,
                    dataset: HeteroDataset,
                    result: Optional[TrialResult] = None) -> np.ndarray:
    """Per-V⁻-node op assignment of a leaderboard entry (default: winner)."""
    result = result if result is not None else report.best
    if result.ops is not None:
        labels = slot_labels(dataset, report.task.num_slots)
        return np.asarray(result.ops, dtype=np.int64)[labels]
    if result.assignment is not None:
        return np.asarray(result.assignment, dtype=np.int64)
    raise ValueError(f"trial {result.trial_id} recorded neither a slot "
                     f"op-vector nor a per-node assignment")


def export_best(report: TuneReport, path=None,
                dataset: Optional[HeteroDataset] = None,
                budget: Optional[int] = None) -> ModelBundle:
    """Retrain the leaderboard winner at full budget and bundle it.

    ``dataset`` may be passed to skip regeneration (required later for
    ``ModelBundle.instantiate`` when the task used an inline generator
    spec, since such specs are not in the dataset registry).  ``budget``
    defaults to the task's ``max_budget``.  When ``path`` is given the
    bundle is saved there too.
    """
    task = report.task
    best = report.best
    dataset = dataset if dataset is not None else task.dataset.build()
    assignment = best_assignment(report, dataset, best)

    # one-shot (darts/grid) trials were scored under the search config's
    # dimensions/kwargs/retrain settings (see TuneTask); the export must
    # rebuild the same shape of model the leaderboard actually ranked
    hidden_dim, out_dim = task.hidden_dim, task.out_dim
    model_kwargs = dict(task.model_kwargs)
    train_config = (task.search_config.retrain
                    if task.search_config is not None else None)
    if best.ops is None and task.search_config is not None:
        hidden_dim = task.search_config.hidden_dim
        out_dim = task.search_config.out_dim
        model_kwargs = dict(task.search_config.model_kwargs)

    evaluation = evaluate_architecture(
        dataset, assignment, task.model_name,
        budget=budget if budget is not None else task.max_budget,
        hidden_dim=hidden_dim, out_dim=out_dim,
        space=task.space(), seed=best.seed, keep_artifacts=True,
        train_config=train_config, **model_kwargs)

    ref = task.dataset
    spec = DatasetSpec(name=ref.name, scale=ref.scale, seed=ref.seed)
    meta = {"tuned_by": report.strategy_fingerprint.get("strategy"),
            "trial_id": best.trial_id,
            "trial_score": best.score,
            "trial_budget_used": best.budget_used,
            "export_epochs_run": evaluation.epochs_run}
    if ref.spec is not None:
        # inline generator spec: the bundle's dataset can't be rebuilt
        # from the registry — record the spec so consumers can
        meta["generator_spec"] = ref.fingerprint()["spec"]
    bundle = build_bundle(
        dataset, spec, task.model_name,
        evaluation.artifacts.model, evaluation.artifacts.features,
        hidden_dim=hidden_dim, out_dim=out_dim,
        model_kwargs=model_kwargs,
        metrics={"macro_f1": evaluation.macro_f1,
                 "micro_f1": evaluation.micro_f1,
                 "val_macro_f1": evaluation.val_macro_f1},
        meta=meta)
    if path is not None:
        bundle.save(path)
    return bundle


__all__ = ["best_assignment", "export_best"]
