"""JSON-lines trial journal — the scheduler's crash-safe checkpoint.

Line 1 is a header fingerprinting the whole run (task + strategy + seed +
format version); every following line is one completed trial with its
result.  Lines are flushed and fsync'd as they are written, so a
scheduler killed at any instant leaves a valid prefix: at worst the last
line is truncated, and :meth:`TrialJournal.read` drops it.  On
``resume=True`` the scheduler replays the journal — completed trials are
*told* straight back to the strategy without re-executing, which restarts
the search exactly where it left off.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: bump when the journal line layout changes incompatibly
JOURNAL_FORMAT_VERSION = 1


class TrialJournal:
    """Append-only JSONL writer/reader for one tuning run."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def open(self, fingerprint: Dict[str, Any], append: bool = False) -> None:
        """Start (or continue) the journal file.

        ``append=False`` truncates and writes a fresh header;
        ``append=True`` (the resume path) keeps existing lines and writes
        nothing — the header is already on disk and validated.  A kill
        mid-write leaves a torn final line with no newline; appending
        straight after it would corrupt the *next* record too, so the
        tear is sealed with a newline first (the torn fragment then reads
        as one ignorable line).
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        seal_torn_tail = False
        if append and self.path.exists():
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    seal_torn_tail = handle.read(1) != b"\n"
        mode = "a" if append else "w"
        self._handle = open(self.path, mode, encoding="utf-8")
        if seal_torn_tail:
            self._handle.write("\n")
            self._handle.flush()
        if not append:
            self._write_line({"kind": "header",
                              "format_version": JOURNAL_FORMAT_VERSION,
                              "fingerprint": fingerprint})

    def append_trial(self, trial_dict: Dict[str, Any],
                     result_dict: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError("journal is not open")
        self._write_line({"kind": "trial", "trial": trial_dict,
                          "result": result_dict})

    def _write_line(self, payload: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @classmethod
    def read(cls, path) -> Tuple[Optional[Dict[str, Any]],
                                 List[Dict[str, Any]]]:
        """Parse ``(header, trial_entries)``; tolerates a torn last line.

        A missing file reads as ``(None, [])``.  Any unparsable or
        non-trial line *after* the header is ignored (a kill mid-write
        tears at most the final line), but a malformed header raises —
        resuming from a journal whose identity can't be checked would
        silently mix runs.
        """
        path = Path(path)
        if not path.exists():
            return None, []
        header: Optional[Dict[str, Any]] = None
        entries: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    if index == 0:
                        raise ValueError(
                            f"{path} is not a trial journal "
                            f"(unparsable header line)")
                    continue  # torn tail line from a kill mid-write
                if index == 0:
                    if payload.get("kind") != "header":
                        raise ValueError(
                            f"{path} is not a trial journal "
                            f"(first line kind={payload.get('kind')!r})")
                    version = payload.get("format_version")
                    if version != JOURNAL_FORMAT_VERSION:
                        raise ValueError(
                            f"{path} has journal format {version!r}; "
                            f"this build reads {JOURNAL_FORMAT_VERSION}")
                    header = payload
                elif payload.get("kind") == "trial":
                    entries.append(payload)
        return header, entries


def validate_fingerprint(header: Dict[str, Any],
                         fingerprint: Dict[str, Any], path) -> None:
    """Refuse to resume a journal written by a different run setup."""
    recorded = header.get("fingerprint")
    if recorded != fingerprint:
        raise ValueError(
            f"cannot resume from {path}: the journal was written by a "
            f"different run (task/strategy/seed fingerprint mismatch).\n"
            f"  journal:  {json.dumps(recorded, sort_keys=True)[:400]}\n"
            f"  current:  {json.dumps(fingerprint, sort_keys=True)[:400]}")


__all__ = ["JOURNAL_FORMAT_VERSION", "TrialJournal", "validate_fingerprint"]
