"""JSON-lines trial journal — the scheduler's crash-safe checkpoint.

Line 1 is a header fingerprinting the whole run (task + strategy + seed +
format version); every following line is one record:

* ``kind="trial"``    — a completed trial with its result (the only
  record resume replays; everything else is derived observability data);
* ``kind="timeline"`` — the trial's per-epoch metric curves and events
  (:class:`repro.runs.MetricTimeline`), written right after its trial
  line;
* ``kind="footer"``   — run accounting appended when the scheduler
  closes: executed/replayed/failed counts, worker deaths, and the
  stopper verdict that ended the run (if any).  A resumed run appends a
  fresh footer; readers keep the last one.

Lines are flushed and fsync'd as they are written, so a scheduler killed
at any instant leaves a valid prefix: at worst the last line is
truncated, and the readers drop it.  On ``resume=True`` the scheduler
replays the journal — completed trials are *told* straight back to the
strategy without re-executing, which restarts the search exactly where
it left off.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..io import JsonlAppender

#: bump when the journal line layout changes incompatibly
JOURNAL_FORMAT_VERSION = 1


@dataclass
class JournalContents:
    """Everything a journal holds, parsed — the run registry's raw feed.

    ``timelines`` is keyed by trial id; ``footer`` is the *last* footer
    record (a resumed run appends one per session).  Journals written
    before timelines/footers existed parse with those fields empty.
    """

    header: Optional[Dict[str, Any]] = None
    trials: List[Dict[str, Any]] = field(default_factory=list)
    timelines: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    footer: Optional[Dict[str, Any]] = None


class TrialJournal:
    """Append-only JSONL writer/reader for one tuning run."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._appender: Optional[JsonlAppender] = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def open(self, fingerprint: Dict[str, Any], append: bool = False) -> None:
        """Start (or continue) the journal file.

        ``append=False`` truncates and writes a fresh header;
        ``append=True`` (the resume path) keeps existing lines and writes
        nothing — the header is already on disk and validated.  The
        shared :class:`repro.io.JsonlAppender` seals a torn final line
        (kill mid-write) before appending, so the fragment reads as one
        ignorable line instead of corrupting the next record.
        """
        self._appender = JsonlAppender(self.path, append=append)
        if not append:
            self._write_line({"kind": "header",
                              "format_version": JOURNAL_FORMAT_VERSION,
                              "fingerprint": fingerprint})

    def append_trial(self, trial_dict: Dict[str, Any],
                     result_dict: Dict[str, Any]) -> None:
        self._write_line({"kind": "trial", "trial": trial_dict,
                          "result": result_dict})

    def append_timeline(self, timeline_dict: Dict[str, Any]) -> None:
        """Journal one trial's metric timeline (curves + events).

        Derived data: resume never replays timelines, so a torn or
        missing timeline line costs one trial's curves, never the run.
        """
        self._write_line({"kind": "timeline", "timeline": timeline_dict})

    def append_footer(self, footer_dict: Dict[str, Any]) -> None:
        """Journal the run accounting (stats, worker deaths, stop verdict)."""
        self._write_line({"kind": "footer", "footer": footer_dict})

    def _write_line(self, payload: Dict[str, Any]) -> None:
        if self._appender is None:
            raise ValueError("journal is not open")
        self._appender.write(payload)

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @classmethod
    def read(cls, path) -> Tuple[Optional[Dict[str, Any]],
                                 List[Dict[str, Any]]]:
        """Parse ``(header, trial_entries)``; tolerates a torn last line.

        A missing file reads as ``(None, [])``.  Any unparsable or
        non-trial line *after* the header is ignored (a kill mid-write
        tears at most the final line), but a malformed header raises —
        resuming from a journal whose identity can't be checked would
        silently mix runs.
        """
        contents = cls.read_all(path)
        return contents.header, contents.trials

    @classmethod
    def read_all(cls, path) -> JournalContents:
        """Parse every record kind; tolerates a torn last line.

        The observability entry point: returns trials *plus* per-trial
        timelines and the final footer.  The same tolerance rules as
        :meth:`read` apply — unknown/torn lines after the header are
        skipped, a malformed header raises.
        """
        path = Path(path)
        contents = JournalContents()
        if not path.exists():
            return contents
        with open(path, "r", encoding="utf-8") as handle:
            for index, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    if index == 0:
                        raise ValueError(
                            f"{path} is not a trial journal "
                            f"(unparsable header line)")
                    continue  # torn tail line from a kill mid-write
                kind = payload.get("kind")
                if index == 0:
                    if kind != "header":
                        raise ValueError(
                            f"{path} is not a trial journal "
                            f"(first line kind={kind!r})")
                    version = payload.get("format_version")
                    if version != JOURNAL_FORMAT_VERSION:
                        raise ValueError(
                            f"{path} has journal format {version!r}; "
                            f"this build reads {JOURNAL_FORMAT_VERSION}")
                    contents.header = payload
                elif kind == "trial":
                    contents.trials.append(payload)
                elif kind == "timeline":
                    timeline = payload.get("timeline") or {}
                    if "trial_id" in timeline:
                        contents.timelines[int(timeline["trial_id"])] = \
                            timeline
                elif kind == "footer":
                    contents.footer = payload.get("footer") or {}
        return contents


def validate_fingerprint(header: Dict[str, Any],
                         fingerprint: Dict[str, Any], path) -> None:
    """Refuse to resume a journal written by a different run setup."""
    recorded = header.get("fingerprint")
    if recorded != fingerprint:
        raise ValueError(
            f"cannot resume from {path}: the journal was written by a "
            f"different run (task/strategy/seed fingerprint mismatch).\n"
            f"  journal:  {json.dumps(recorded, sort_keys=True)[:400]}\n"
            f"  current:  {json.dumps(fingerprint, sort_keys=True)[:400]}")


__all__ = ["JOURNAL_FORMAT_VERSION", "JournalContents", "TrialJournal",
           "validate_fingerprint"]
