"""HGNN-AC (Jin et al., WWW'21) — the attention-based completion baseline.

Pipeline (matching the published system):

1. **Pre-learning** — topological embeddings for every node via
   metapath2vec (the stage whose cost dominates Table IV).
2. **Attention completion** — every V⁻ node aggregates the raw attributes
   of its *1-hop attributed* neighbors, weighted by attention computed
   from the topological embeddings; nodes without attributed neighbors
   fall back to a learnable embedding.
3. The completed attributes feed the downstream GNN and the attention is
   trained jointly with it (coarse-grained: one shared mechanism for all
   nodes — the contrast AutoAC draws in §I).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from ..completion.mixture import FeatureBuilder
from ..datasets import HeteroDataset
from ..tensor import (
    Linear,
    Parameter,
    Tensor,
    gather_rows,
    init,
    leaky_relu,
    scatter_add,
    segment_softmax,
)
from .metapath2vec import Metapath2VecConfig, train_metapath2vec


def _attributed_neighbor_edges(dataset: HeteroDataset):
    """Edges (v ∈ V⁻, u ∈ V⁺) over the symmetric adjacency."""
    adj = dataset.graph.adjacency(symmetric=True).tocoo()
    attributed = np.zeros(dataset.graph.num_nodes, dtype=bool)
    attributed[dataset.attributed_global_ids] = True
    missing = np.zeros_like(attributed)
    missing[dataset.missing_global_ids] = True
    keep = missing[adj.row] & attributed[adj.col]
    return adj.row[keep], adj.col[keep]


class HGNNACFeatures(FeatureBuilder):
    """Feature builder implementing HGNN-AC's attention completion."""

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 topo_embeddings: np.ndarray, attn_dim: int = 16,
                 negative_slope: float = 0.2) -> None:
        super().__init__(dataset, hidden_dim)
        if topo_embeddings.shape[0] != dataset.graph.num_nodes:
            raise ValueError("topological embeddings must cover every node")
        self.topo = topo_embeddings
        dst, src = _attributed_neighbor_edges(dataset)  # dst ∈ V⁻ receives
        self.edge_dst, self.edge_src = dst, src

        # map global V⁻ ids to row positions in the completion output
        self.missing_ids = dataset.missing_global_ids
        position = np.full(dataset.graph.num_nodes, -1, dtype=np.int64)
        position[self.missing_ids] = np.arange(self.missing_ids.shape[0])
        self.edge_dst_pos = position[dst]

        raw = dataset.feature_matrix_zero_filled()
        self._raw_src = raw[src]  # constant raw attributes of V⁺ endpoints
        self.attn_proj = Parameter(
            init.xavier_uniform((topo_embeddings.shape[1], attn_dim)),
            name="attn_proj")
        self.negative_slope = negative_slope
        self.raw_proj = Linear(raw.shape[1], hidden_dim)
        # fallback for V⁻ nodes with no attributed neighbor
        has_neighbor = np.zeros(self.missing_ids.shape[0], dtype=bool)
        has_neighbor[self.edge_dst_pos] = True
        self._no_neighbor = ~has_neighbor
        self.fallback = Parameter(
            init.normal((self.missing_ids.shape[0], hidden_dim), std=0.1),
            name="fallback")

    def completed(self) -> Optional[Tensor]:
        if not self.missing_ids.size:
            return None
        num_missing = self.missing_ids.shape[0]
        topo_dst = Tensor(self.topo[self.edge_dst]) @ self.attn_proj
        topo_src = Tensor(self.topo[self.edge_src]) @ self.attn_proj
        logits = leaky_relu((topo_dst * topo_src).sum(axis=-1),
                            self.negative_slope)
        alpha = segment_softmax(logits, self.edge_dst_pos, num_missing)
        weighted = Tensor(self._raw_src) * alpha.reshape(-1, 1)
        completed_raw = scatter_add(weighted, self.edge_dst_pos, num_missing)
        completed = self.raw_proj(completed_raw)
        mask = Tensor(self._no_neighbor.astype(np.float64).reshape(-1, 1))
        return completed * (1.0 - mask) + self.fallback * mask


@dataclass
class HGNNACPrelearn:
    embeddings: np.ndarray
    seconds: float


def prelearn_topology(dataset: HeteroDataset,
                      config: Optional[Metapath2VecConfig] = None,
                      seed: int = 0) -> HGNNACPrelearn:
    """Run (and time) the metapath2vec pre-learning stage."""
    start = time.perf_counter()
    embeddings = train_metapath2vec(dataset.graph, dataset.metapaths,
                                    config=config, seed=seed)
    return HGNNACPrelearn(embeddings=embeddings,
                          seconds=time.perf_counter() - start)


__all__ = ["HGNNACFeatures", "HGNNACPrelearn", "prelearn_topology"]
