"""metapath2vec (Dong et al., KDD'17) — the pre-learning stage of HGNN-AC.

Metapath-guided random walks feed a skip-gram model with negative sampling
(SGNS), trained by plain SGD over vectorized pair batches.  This stage is
deliberately *not* optimized away: its cost dominating HGNN-AC's end-to-end
runtime is exactly the efficiency gap the paper's Table IV reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import HeteroGraph, metapath_random_walks


@dataclass
class Metapath2VecConfig:
    embed_dim: int = 32
    walks_per_node: int = 8
    walk_length: int = 20
    window: int = 3
    negatives: int = 4
    epochs: int = 3
    lr: float = 0.025
    batch_size: int = 4096


def _walk_pairs(walks: List[np.ndarray], window: int) -> np.ndarray:
    """All (center, context) pairs within ``window`` of each other."""
    centers, contexts = [], []
    for walk in walks:
        length = walk.shape[0]
        for offset in range(1, window + 1):
            if length <= offset:
                continue
            centers.append(walk[:-offset])
            contexts.append(walk[offset:])
            centers.append(walk[offset:])
            contexts.append(walk[:-offset])
    if not centers:
        return np.empty((2, 0), dtype=np.int64)
    return np.stack([np.concatenate(centers), np.concatenate(contexts)])


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 0.5 * (1.0 + np.tanh(0.5 * x))


def train_metapath2vec(graph: HeteroGraph,
                       metapaths: Sequence[Sequence[str]],
                       config: Optional[Metapath2VecConfig] = None,
                       seed: int = 0) -> np.ndarray:
    """Learn topological embeddings ``(num_nodes, embed_dim)``.

    Walks are generated for every cyclic metapath in ``metapaths``; nodes
    never visited keep their random initialization.
    """
    config = config or Metapath2VecConfig()
    rng = np.random.default_rng(seed)
    walks: List[np.ndarray] = []
    for metapath in metapaths:
        if metapath[0] != metapath[-1]:
            continue
        walks.extend(metapath_random_walks(
            graph, metapath, config.walks_per_node, config.walk_length, rng))
    pairs = _walk_pairs(walks, config.window)

    n = graph.num_nodes
    scale = 1.0 / config.embed_dim
    center_vecs = rng.uniform(-scale, scale, size=(n, config.embed_dim))
    context_vecs = np.zeros((n, config.embed_dim))

    if pairs.shape[1] == 0:
        return center_vecs

    # frequency-skewed negative table (unigram^0.75, word2vec convention)
    counts = np.bincount(pairs[1], minlength=n).astype(np.float64)
    probs = counts ** 0.75
    probs /= probs.sum()

    for _epoch in range(config.epochs):
        order = rng.permutation(pairs.shape[1])
        for begin in range(0, order.size, config.batch_size):
            batch = order[begin:begin + config.batch_size]
            centers = pairs[0, batch]
            contexts = pairs[1, batch]
            u = center_vecs[centers]
            v = context_vecs[contexts]
            # positive update
            score = _sigmoid((u * v).sum(axis=1))
            coef = (1.0 - score)[:, None] * config.lr
            grad_u = coef * v
            grad_v = coef * u
            # negative updates (shared negatives per batch keep it vectorized)
            negatives = rng.choice(n, size=config.negatives, p=probs)
            for neg in negatives:
                v_neg = context_vecs[neg]
                neg_score = _sigmoid(u @ v_neg)
                grad_u -= (neg_score[:, None] * config.lr) * v_neg
                context_vecs[neg] -= config.lr * (neg_score @ u) / max(len(batch), 1)
            np.add.at(center_vecs, centers, grad_u)
            np.add.at(context_vecs, contexts, grad_v)
    return center_vecs


__all__ = ["Metapath2VecConfig", "train_metapath2vec"]
