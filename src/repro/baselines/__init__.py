"""``repro.baselines`` — the completion baselines AutoAC is compared with.

Single-op and random completion live in :mod:`repro.completion.mixture`
(:class:`SingleOpFeatures`, :class:`FixedAssignmentFeatures`); this package
adds HGNN-AC and its metapath2vec pre-learning.
"""

from ..completion import FixedAssignmentFeatures, SingleOpFeatures
from .hgnnac import HGNNACFeatures, HGNNACPrelearn, prelearn_topology
from .metapath2vec import Metapath2VecConfig, train_metapath2vec

__all__ = [
    "HGNNACFeatures",
    "HGNNACPrelearn",
    "prelearn_topology",
    "Metapath2VecConfig",
    "train_metapath2vec",
    "SingleOpFeatures",
    "FixedAssignmentFeatures",
]
