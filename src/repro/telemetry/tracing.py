"""Request tracing: trace ids, spans, and a JSONL event sink.

A :class:`Tracer` stamps a *trace id* on each top-level operation and
threads it through nested work via a ``contextvars`` context variable:
the HTTP handler opens an ``http_request`` span, the engine's batch
processor opens a ``batch`` span underneath it, and each model forward
opens a ``forward`` span underneath that — three records in the sink
sharing one ``trace_id``, parent-linked by ``span_id``.  Because the
context variable is per-thread (``ThreadingHTTPServer`` gives each
request its own thread), concurrent requests never cross-link.

Records are JSON lines in the :class:`EventSink`:

``{"kind": "span", "name", "trace_id", "span_id", "parent_id",
   "start_unix_ms", "duration_ms", "attrs": {...}}``
``{"kind": "event", "name", "trace_id", "unix_ms", ...fields}``

Spans can additionally capture **op-level** data through the existing
:mod:`repro.tensor._profile` choke point (``capture_ops=True``): for
the span's duration a hook aggregates per-op call counts and wall time
into ``attrs["ops"]``, chaining to any previously installed hook so an
active :class:`repro.perf.Profiler` keeps seeing everything.

A tracer without a sink is disabled: ``span()`` yields a shared no-op
span and costs one attribute check plus a generator frame — cheap
enough to leave in every hot path unconditionally.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import threading
import time
import uuid
from typing import Dict, Iterator, Optional, Union

from ..tensor import _profile

__all__ = ["EventSink", "Span", "Tracer", "current_span",
           "current_trace_id", "new_trace_id"]


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


class EventSink:
    """Thread-safe JSONL appender (a path or an open file-like object)."""

    def __init__(self, target: Union[str, "object"]) -> None:
        if hasattr(target, "write"):
            self._handle = target
            self._owns = False
            self.path = getattr(target, "name", None)
        else:
            self._handle = open(target, "a", encoding="utf-8")
            self._owns = True
            self.path = str(target)
        self._lock = threading.Lock()

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._owns:
                self._handle.close()

    def __enter__(self) -> "EventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Span:
    """One timed unit of work inside a trace."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "attrs",
                 "start_unix_ms", "_start")

    def __init__(self, name: str, trace_id: str,
                 parent_id: Optional[str], attrs: Dict) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_trace_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_unix_ms = time.time() * 1e3
        self._start = time.perf_counter()

    def set(self, **attrs) -> None:
        """Attach attributes visible in the emitted record."""
        self.attrs.update(attrs)

    def to_record(self, duration_ms: float) -> Dict:
        return {"kind": "span", "name": self.name,
                "trace_id": self.trace_id, "span_id": self.span_id,
                "parent_id": self.parent_id,
                "start_unix_ms": self.start_unix_ms,
                "duration_ms": duration_ms, "attrs": self.attrs}


class _NullSpan:
    """Shared do-nothing span for disabled tracers."""

    __slots__ = ()
    trace_id = None
    span_id = None
    parent_id = None
    name = None

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()

_CURRENT: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
    "repro_telemetry_span", default=None)


def current_span() -> Optional[Span]:
    return _CURRENT.get()


def current_trace_id() -> Optional[str]:
    span = _CURRENT.get()
    return span.trace_id if span is not None else None


@contextlib.contextmanager
def _capture_ops(span: Span) -> Iterator[None]:
    """Aggregate tensor-op calls into ``span.attrs["ops"]`` while active."""
    totals: Dict[str, list] = {}
    previous = _profile.get_hook()

    def hook(name: str, seconds: float, nbytes: int) -> None:
        entry = totals.get(name)
        if entry is None:
            entry = totals[name] = [0, 0.0]
        entry[0] += 1
        entry[1] += seconds
        if previous is not None:
            previous(name, seconds, nbytes)

    _profile.set_hook(hook)
    try:
        yield
    finally:
        _profile.set_hook(previous)
        if totals:
            span.attrs["ops"] = {
                name: {"calls": calls, "ms": seconds * 1e3}
                for name, (calls, seconds) in sorted(totals.items())}


class Tracer:
    """Emits spans/events to a sink; a ``None`` sink disables tracing."""

    def __init__(self, sink: Optional[EventSink] = None) -> None:
        self.sink = sink

    @property
    def enabled(self) -> bool:
        return self.sink is not None

    @contextlib.contextmanager
    def span(self, name: str, capture_ops: bool = False,
             **attrs) -> Iterator[Union[Span, _NullSpan]]:
        """Open a span; nests under the context's current span (same
        trace id), or starts a fresh trace at the top level."""
        if self.sink is None:
            yield _NULL_SPAN
            return
        parent = _CURRENT.get()
        span = Span(name,
                    trace_id=(parent.trace_id if parent is not None
                              else new_trace_id()),
                    parent_id=(parent.span_id if parent is not None
                               else None),
                    attrs=dict(attrs))
        token = _CURRENT.set(span)
        try:
            if capture_ops:
                with _capture_ops(span):
                    yield span
            else:
                yield span
        except BaseException as error:
            span.attrs.setdefault("error", type(error).__name__)
            raise
        finally:
            _CURRENT.reset(token)
            duration_ms = (time.perf_counter() - span._start) * 1e3
            self.sink.emit(span.to_record(duration_ms))

    def event(self, name: str, **fields) -> None:
        """Emit a point-in-time record, stamped with the current trace id."""
        if self.sink is None:
            return
        record = {"kind": "event", "name": name,
                  "trace_id": current_trace_id(),
                  "unix_ms": time.time() * 1e3}
        record.update(fields)
        self.sink.emit(record)
