"""Thread-safe metric instruments: counters, gauges, histograms.

The registry is the in-process half of the runtime telemetry story
(:mod:`repro.telemetry`): every subsystem — the serving engine, the
HTTP front end, onboarding, both trainers, the trial scheduler, the
op-level profiler — records into instruments instead of ad-hoc
attributes, and anything that wants the numbers (``stats()``,
``/metrics``, the CLI) reads one consistent :meth:`MetricsRegistry.
snapshot`.

Three design decisions carry the multi-process future:

* **Snapshots are plain JSON-able dicts.**  A snapshot crosses process
  boundaries as-is (pipe, mmap, file), so a preforked serving tier can
  ship per-worker snapshots to the parent for aggregation.
* **Histograms are fixed-bucket.**  A histogram is just per-bucket
  counts plus ``sum``/``count``; merging shards is element-wise
  addition (:func:`merge_snapshots`), and the merged histogram is
  *exactly* what a single process observing the union would hold —
  the property ``tests/test_telemetry.py`` pins down.  Quantiles
  (p50/p95/p99) are estimated by linear interpolation inside the
  bucket that holds the target rank.
* **One lock per registry.**  Every mutation and the snapshot take the
  same lock, so counters are exact under thread hammering and a
  snapshot is a consistent cut.  Contention is irrelevant at the
  frequencies involved (instruments are updated per batch/epoch/
  request, not per tensor op).

Instrument acquisition is idempotent: asking for an existing name with
the identical spec returns the existing instrument; a conflicting spec
raises :class:`MetricError`.  That lets every trainer instance say
``registry.counter("train_epochs_total", ...)`` without coordination.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "merge_snapshots",
    "percentile_from_buckets",
]

#: Default buckets for request-scale latencies, in seconds.  The low end
#: reaches 10µs because a warm cache hit is a dictionary lookup.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for long-running work (epochs, trials), in seconds.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0, 1800.0,
)


class MetricError(ValueError):
    """Invalid metric name, label set, or conflicting redefinition."""


def _check_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise MetricError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise MetricError(f"metric name cannot start with a digit: {name!r}")
    return name


def _encode_key(values: Tuple[str, ...]) -> str:
    """Label values → an unambiguous string snapshot key."""
    return json.dumps(list(values))


def _decode_key(key: str) -> Tuple[str, ...]:
    return tuple(json.loads(key))


def percentile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                            q: float) -> float:
    """Estimate the ``q``-quantile (0..1) from fixed-bucket counts.

    ``counts`` has one entry per bound plus a final overflow bucket.
    Linear interpolation inside the winning bucket; the overflow bucket
    cannot be interpolated so it reports the last finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise MetricError(f"quantile must be in [0, 1], got {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    target = q * total
    cumulative = 0
    for index, count in enumerate(counts):
        previous = cumulative
        cumulative += count
        if cumulative >= target and count > 0:
            if index >= len(bounds):          # overflow bucket
                return float(bounds[-1])
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index]
            fraction = (target - previous) / count
            return float(lower + (upper - lower) * min(max(fraction, 0.0),
                                                       1.0))
    return float(bounds[-1])


class _Instrument:
    """Shared bookkeeping: name, declared labels, the registry lock."""

    kind = "instrument"

    def __init__(self, name: str, help: str, labels: Tuple[str, ...],
                 lock: threading.RLock) -> None:
        self.name = _check_name(name)
        self.help = help
        self.label_names = labels
        self._lock = lock
        self._values: Dict[Tuple[str, ...], object] = {}

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"{self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.label_names)

    def spec(self) -> Dict:
        return {"kind": self.kind, "help": self.help,
                "labels": list(self.label_names)}


class Counter(_Instrument):
    """A monotonically increasing float (exposed with ``_total`` names)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return float(sum(self._values.values()))


class Gauge(_Instrument):
    """A value that can go up and down (queue depth, overlay size).

    ``aggregation`` decides how per-process shards merge: ``"sum"``
    (queue depths add), ``"max"`` (watermarks), or ``"last"`` (a merged
    value is meaningless — keep the lexically last shard's).
    """

    kind = "gauge"

    def __init__(self, name, help, labels, lock,
                 aggregation: str = "sum") -> None:
        super().__init__(name, help, labels, lock)
        if aggregation not in ("sum", "max", "last"):
            raise MetricError(f"unknown gauge aggregation {aggregation!r}")
        self.aggregation = aggregation

    def set(self, value: float, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._values.get(key, 0.0))

    def spec(self) -> Dict:
        out = super().spec()
        out["aggregation"] = self.aggregation
        return out


class _HistogramData:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.counts = [0] * num_buckets     # per-bucket, NON-cumulative
        self.sum = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Fixed-bucket histogram with mergeable plain-sum state."""

    kind = "histogram"

    def __init__(self, name, help, labels, lock,
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        super().__init__(name, help, labels, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise MetricError(
                f"histogram {name} buckets must be strictly increasing")
        self.bounds = bounds

    def _data(self, key: Tuple[str, ...]) -> _HistogramData:
        data = self._values.get(key)
        if data is None:
            data = self._values[key] = _HistogramData(len(self.bounds) + 1)
        return data

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def observe(self, value: float, count: int = 1, **labels) -> None:
        """Record ``value``; ``count`` repeats it (one lock acquisition
        for e.g. "these 12 cache hits each cost ~3µs")."""
        if count <= 0:
            return
        value = float(value)
        index = self._bucket_index(value)
        key = self._key(labels)
        with self._lock:
            data = self._data(key)
            data.counts[index] += count
            data.sum += value * count
            data.count += count

    # -- reading -------------------------------------------------------
    def sum_total(self) -> float:
        with self._lock:
            return float(sum(d.sum for d in self._values.values()))

    def count_total(self) -> int:
        with self._lock:
            return int(sum(d.count for d in self._values.values()))

    def child_sum(self, **labels) -> float:
        key = self._key(labels)
        with self._lock:
            data = self._values.get(key)
            return float(data.sum) if data is not None else 0.0

    def child_count(self, **labels) -> int:
        key = self._key(labels)
        with self._lock:
            data = self._values.get(key)
            return int(data.count) if data is not None else 0

    def percentile(self, q: float, **labels) -> float:
        """Quantile of one label combination's observations."""
        key = self._key(labels)
        with self._lock:
            data = self._values.get(key)
            counts = list(data.counts) if data is not None else []
        if not counts:
            return 0.0
        return percentile_from_buckets(self.bounds, counts, q)

    def aggregate_percentile(self, q: float) -> float:
        """Quantile over ALL label combinations pooled together."""
        with self._lock:
            pooled = [0] * (len(self.bounds) + 1)
            for data in self._values.values():
                for index, count in enumerate(data.counts):
                    pooled[index] += count
        return percentile_from_buckets(self.bounds, pooled, q)


class MetricsRegistry:
    """A named set of instruments with consistent snapshots.

    The serving engine owns a private registry (so two engines in one
    process never cross-count); library-wide instruments (trainers, the
    tuner, the profiler) live on the process-global default registry
    (:func:`repro.telemetry.get_registry`).  ``/metrics`` merges both.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: Dict[str, _Instrument] = {}

    # -- acquisition (get-or-create, spec-checked) ---------------------
    def _acquire(self, cls, name: str, help: str,
                 labels: Iterable[str], **extra) -> _Instrument:
        labels = tuple(labels)
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"{name} already registered as {existing.kind}, "
                        f"not {cls.kind}")
                if existing.label_names != labels:
                    raise MetricError(
                        f"{name} already registered with labels "
                        f"{existing.label_names}, not {labels}")
                for attr, value in extra.items():
                    held = getattr(existing, "bounds" if attr == "buckets"
                                   else attr)
                    wanted = (tuple(float(b) for b in value)
                              if attr == "buckets" else value)
                    if held != wanted:
                        raise MetricError(
                            f"{name} already registered with {attr}={held}")
                return existing
            instrument = cls(name, help, labels, self._lock, **extra)
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str, help: str = "",
                labels: Iterable[str] = ()) -> Counter:
        return self._acquire(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Iterable[str] = (),
              aggregation: str = "sum") -> Gauge:
        return self._acquire(Gauge, name, help, labels,
                             aggregation=aggregation)

    def histogram(self, name: str, help: str = "",
                  labels: Iterable[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS
                  ) -> Histogram:
        return self._acquire(Histogram, name, help, labels, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    # -- snapshots -----------------------------------------------------
    def snapshot(self) -> Dict:
        """A consistent, JSON-able cut of every instrument's state."""
        out: Dict[str, Dict] = {}
        with self._lock:
            for name in sorted(self._instruments):
                instrument = self._instruments[name]
                entry = instrument.spec()
                if isinstance(instrument, Histogram):
                    entry["buckets"] = list(instrument.bounds)
                    entry["samples"] = {
                        _encode_key(key): {"counts": list(data.counts),
                                           "sum": data.sum,
                                           "count": data.count}
                        for key, data in instrument._values.items()}
                else:
                    entry["samples"] = {_encode_key(key): value
                                        for key, value in
                                        instrument._values.items()}
                out[name] = entry
        return out

    def render(self) -> str:
        """This registry's state in Prometheus text exposition format."""
        from .exposition import render_prometheus
        return render_prometheus(self.snapshot())


def _merge_entry(merged: Dict, entry: Dict, name: str) -> None:
    for field in ("kind", "labels", "buckets", "aggregation"):
        if merged.get(field) != entry.get(field):
            raise MetricError(
                f"cannot merge {name}: shards disagree on {field} "
                f"({merged.get(field)!r} vs {entry.get(field)!r})")
    samples = merged["samples"]
    for key, value in entry["samples"].items():
        if key not in samples:
            samples[key] = (dict(value, counts=list(value["counts"]))
                            if merged["kind"] == "histogram" else value)
        elif merged["kind"] == "histogram":
            held = samples[key]
            held["counts"] = [a + b for a, b in zip(held["counts"],
                                                    value["counts"])]
            held["sum"] += value["sum"]
            held["count"] += value["count"]
        elif merged["kind"] == "counter":
            samples[key] += value
        else:  # gauge
            aggregation = merged.get("aggregation", "sum")
            if aggregation == "sum":
                samples[key] += value
            elif aggregation == "max":
                samples[key] = max(samples[key], value)
            else:  # "last"
                samples[key] = value


def merge_snapshots(snapshots: Sequence[Dict]) -> Dict:
    """Merge per-shard :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histogram buckets/sums/counts add element-wise; gauges
    follow their declared aggregation.  The merge of N shard snapshots
    equals the snapshot a single process observing everything would
    produce — the substrate the preforked serving tier aggregates with.
    """
    merged: Dict[str, Dict] = {}
    for snapshot in snapshots:
        for name, entry in snapshot.items():
            if name not in merged:
                copied = dict(entry)
                copied["samples"] = {
                    key: (dict(value, counts=list(value["counts"]))
                          if entry["kind"] == "histogram" else value)
                    for key, value in entry["samples"].items()}
                merged[name] = copied
            else:
                _merge_entry(merged[name], entry, name)
    return merged
