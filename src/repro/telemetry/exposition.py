"""Prometheus text exposition (and a small parser for tests/CLI).

:func:`render_prometheus` turns a :meth:`~repro.telemetry.metrics.
MetricsRegistry.snapshot` (or a :func:`~repro.telemetry.metrics.
merge_snapshots` result) into the text format every Prometheus-
compatible scraper understands (version ``0.0.4``):

* counters render as ``name{label="v"} value``;
* gauges the same with ``TYPE gauge``;
* histograms render the standard triple — cumulative ``name_bucket``
  series with ``le`` labels (ending in ``le="+Inf"``), ``name_sum``
  and ``name_count``.

Rendering is deterministic (sorted metric names, sorted label keys)
so scrape artifacts diff cleanly.  :func:`parse_prometheus` inverts
the format well enough to validate scrapes in tests and pretty-print
them in ``repro metrics``; it is not a general-purpose parser.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .metrics import MetricError, _decode_key

__all__ = ["render_prometheus", "parse_prometheus"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _unescape(value: str) -> str:
    out, index = [], 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            out.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_labels(pairs: List[Tuple[str, str]]) -> str:
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def render_prometheus(snapshot: Dict) -> str:
    """Render a metrics snapshot to Prometheus text format."""
    lines: List[str] = []
    for name in sorted(snapshot):
        entry = snapshot[name]
        kind = entry["kind"]
        label_names = list(entry.get("labels", ()))
        if entry.get("help"):
            lines.append(f"# HELP {name} {_escape(entry['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for key in sorted(entry["samples"]):
            values = _decode_key(key)
            pairs = list(zip(label_names, values))
            if kind == "histogram":
                data = entry["samples"][key]
                cumulative = 0
                for bound, count in zip(entry["buckets"], data["counts"]):
                    cumulative += count
                    bucket_pairs = pairs + [("le", _format_value(bound))]
                    lines.append(f"{name}_bucket"
                                 f"{_format_labels(bucket_pairs)} "
                                 f"{cumulative}")
                cumulative += data["counts"][len(entry["buckets"])]
                lines.append(f"{name}_bucket"
                             f"{_format_labels(pairs + [('le', '+Inf')])} "
                             f"{cumulative}")
                lines.append(f"{name}_sum{_format_labels(pairs)} "
                             f"{_format_value(data['sum'])}")
                lines.append(f"{name}_count{_format_labels(pairs)} "
                             f"{data['count']}")
            else:
                lines.append(f"{name}{_format_labels(pairs)} "
                             f"{_format_value(entry['samples'][key])}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_labels(body: str) -> Tuple[Tuple[str, str], ...]:
    pairs: List[Tuple[str, str]] = []
    index = 0
    while index < len(body):
        equals = body.index("=", index)
        label = body[index:equals].strip().lstrip(",").strip()
        if body[equals + 1] != '"':
            raise MetricError(f"unquoted label value in {body!r}")
        cursor = equals + 2
        raw = []
        while cursor < len(body):
            char = body[cursor]
            if char == "\\":
                raw.append(body[cursor:cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        else:
            raise MetricError(f"unterminated label value in {body!r}")
        pairs.append((label, _unescape("".join(raw))))
        index = cursor + 1
    return tuple(pairs)


def parse_prometheus(text: str) -> Dict:
    """Parse exposition text → ``{"meta": .., "samples": ..}``.

    ``meta`` maps metric name → ``{"type", "help"}``; ``samples`` maps
    ``(series_name, sorted_label_pairs)`` → float value.  Raises
    :class:`MetricError` on any line that is not a valid comment or
    sample — the tests use this as a format validity check.
    """
    meta: Dict[str, Dict[str, str]] = {}
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                name = parts[2]
                field = parts[1].lower()
                meta.setdefault(name, {})[field] = (
                    parts[3] if len(parts) > 3 else "")
            continue
        if "{" in line:
            try:
                name = line[:line.index("{")]
                closing = line.rindex("}")
                labels = _parse_labels(line[line.index("{") + 1:closing])
                rest = line[closing + 1:].strip()
            except ValueError as error:
                if isinstance(error, MetricError):
                    raise
                raise MetricError(
                    f"malformed sample line: {line!r}") from error
            if not rest:
                raise MetricError(f"malformed sample line: {line!r}")
        else:
            pieces = line.split()
            if len(pieces) < 2:
                raise MetricError(f"malformed sample line: {line!r}")
            name, rest = pieces[0], " ".join(pieces[1:])
            labels = ()
        value_text = rest.split()[0]
        try:
            value = float("inf") if value_text == "+Inf" else float(value_text)
        except ValueError as error:
            raise MetricError(
                f"malformed sample value in {line!r}") from error
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise MetricError(f"malformed metric name in {line!r}")
        samples[(name, tuple(sorted(labels)))] = value
    return {"meta": meta, "samples": samples}
