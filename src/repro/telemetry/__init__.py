"""``repro.telemetry`` — runtime metrics, request tracing, exposition.

The runtime counterpart of :mod:`repro.runs` (which observes *search*):
this package observes the *serving and training stack* at request and
epoch granularity.  Three pieces:

* **Metrics** (:mod:`.metrics`) — a thread-safe registry of counters,
  gauges and fixed-bucket histograms with labels.  Snapshots are plain
  JSON-able dicts and merge across shards by bucket-wise addition
  (:func:`merge_snapshots`), which is what lets a future preforked
  serving tier aggregate per-worker state for free.
* **Tracing** (:mod:`.tracing`) — lightweight spans with trace-id
  propagation (HTTP handler → engine batch → model forward, with
  optional per-op capture via :mod:`repro.tensor._profile`) and a
  JSONL :class:`EventSink` shared with structured access logging.
* **Exposition** (:mod:`.exposition`) — Prometheus text format
  rendering (the ``/metrics`` endpoint of
  :class:`repro.serving.ServingServer`) plus a parser used by tests
  and the ``repro metrics`` CLI.

Library-wide instruments (trainers, the trial scheduler, the profiler)
live on a process-global default registry reachable via
:func:`get_registry`; the serving engine keeps a private registry per
instance so co-resident engines never cross-count, and ``/metrics``
serves the merge of both.  See docs/OBSERVABILITY.md ("Runtime
telemetry") for the naming scheme and the trace JSONL schema.
"""

from __future__ import annotations

from typing import Optional

from .exposition import CONTENT_TYPE, parse_prometheus, render_prometheus
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    merge_snapshots,
    percentile_from_buckets,
)
from .tracing import (
    EventSink,
    Span,
    Tracer,
    current_span,
    current_trace_id,
    new_trace_id,
)

_default_registry = MetricsRegistry()
_default_tracer = Tracer(None)


def get_registry() -> MetricsRegistry:
    """The process-global default registry (trainers, tuner, profiler)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the global registry (tests); returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous


def get_tracer() -> Tracer:
    """The process-global tracer (disabled until one is configured)."""
    return _default_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Swap the global tracer (``None`` → disabled); returns the old one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer if tracer is not None else Tracer(None)
    return previous


__all__ = [
    "CONTENT_TYPE",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "Counter",
    "EventSink",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_span",
    "current_trace_id",
    "get_registry",
    "get_tracer",
    "merge_snapshots",
    "new_trace_id",
    "parse_prometheus",
    "percentile_from_buckets",
    "render_prometheus",
    "set_registry",
    "set_tracer",
]
