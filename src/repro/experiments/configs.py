"""Per-scale experiment presets.

Every experiment driver accepts ``scale`` (dataset size preset) and derives
its epoch budgets from :func:`preset`.  ``tiny`` keeps the full benchmark
suite runnable in minutes on CPU while preserving every comparison's shape;
``small`` is the recommended setting for a faithful overnight run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..core import AutoACConfig
from ..training import LinkPredConfig, TrainConfig


@dataclass(frozen=True)
class ExperimentPreset:
    scale: str
    train: TrainConfig
    link: LinkPredConfig
    search_epochs: int
    search_patience: int
    repeats: int
    hidden_dim: int = 64


_PRESETS = {
    "tiny": ExperimentPreset(
        scale="tiny",
        train=TrainConfig(epochs=70, patience=18),
        link=LinkPredConfig(epochs=50, patience=12),
        search_epochs=50,
        search_patience=15,
        repeats=1,
    ),
    "small": ExperimentPreset(
        scale="small",
        train=TrainConfig(epochs=150, patience=30),
        link=LinkPredConfig(epochs=120, patience=20),
        search_epochs=80,
        search_patience=20,
        repeats=3,
    ),
    "medium": ExperimentPreset(
        scale="medium",
        train=TrainConfig(epochs=200, patience=40),
        link=LinkPredConfig(epochs=150, patience=30),
        search_epochs=120,
        search_patience=25,
        repeats=5,
    ),
}


def preset(scale: str | None = None) -> ExperimentPreset:
    """Resolve a preset; ``REPRO_SCALE`` overrides the default (``tiny``)."""
    scale = scale or os.environ.get("REPRO_SCALE", "tiny")
    if scale not in _PRESETS:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(_PRESETS)}")
    return _PRESETS[scale]


#: number of clusters per (model, dataset), following the paper §V-B
PAPER_NUM_CLUSTERS = {
    ("magnn", "dblp"): 4,
    ("magnn", "acm"): 4,
    ("magnn", "imdb"): 16,
    ("simple_hgn", "dblp"): 8,
    ("simple_hgn", "acm"): 12,
    ("simple_hgn", "imdb"): 12,
}

#: loss coefficient lambda per model, following the paper §V-B
PAPER_LAMBDA = {"magnn": 0.5, "simple_hgn": 0.4}


def autoac_config(model_name: str, dataset_name: str,
                  p: ExperimentPreset, **overrides) -> AutoACConfig:
    """AutoAC configuration with the paper's per-combo hyperparameters."""
    params = dict(
        hidden_dim=p.hidden_dim,
        out_dim=p.hidden_dim,
        num_clusters=PAPER_NUM_CLUSTERS.get((model_name, dataset_name), 8),
        lambda_cluster=PAPER_LAMBDA.get(model_name, 0.4),
        search_epochs=p.search_epochs,
        patience=p.search_patience,
        retrain=p.train,
    )
    params.update(overrides)
    return AutoACConfig(**params)


__all__ = ["ExperimentPreset", "preset", "autoac_config",
           "PAPER_NUM_CLUSTERS", "PAPER_LAMBDA"]
