"""``repro.experiments`` — drivers and reporting for every paper table/figure."""

from . import figures, reporting, tables
from .configs import PAPER_LAMBDA, PAPER_NUM_CLUSTERS, autoac_config, preset
from .figures import (
    figure3,
    figure4,
    figure5,
    figure6_7,
    figure8,
    figure9,
    figure10_11,
)
from .tables import (
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table10,
)

__all__ = [
    "preset",
    "autoac_config",
    "PAPER_NUM_CLUSTERS",
    "PAPER_LAMBDA",
    "tables",
    "figures",
    "reporting",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
    "figure3",
    "figure4",
    "figure5",
    "figure6_7",
    "figure8",
    "figure9",
    "figure10_11",
]
