"""Drivers regenerating every table of the paper's evaluation section.

Each ``tableN`` function runs the corresponding experiment and returns a
structured dict; :mod:`repro.experiments.reporting` renders it in the
paper's row/column layout.  All drivers accept ``scale`` (dataset preset),
``datasets``/``models`` restrictions, and a base ``seed``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets import get_dataset
from ..models import AUTOAC_BACKBONES
from ..training import LinkPredictionTask, set_seed
from .configs import preset
from .runner import (
    single_op_features_factory,
    train_autoac_repeated,
    train_baseline_repeated,
    train_hgnnac_repeated,
    train_link_autoac,
    train_link_baseline,
)

NODE_CLF_DATASETS: Tuple[str, ...] = ("dblp", "acm", "imdb")
LINK_PRED_DATASETS: Tuple[str, ...] = ("lastfm", "dblp", "imdb")

#: Table II rows, split as in the paper (meta-path vs non-meta-path models)
TABLE2_METAPATH_MODELS: Tuple[str, ...] = ("han", "gtn", "hetsann", "hgca",
                                           "magnn")
TABLE2_PLAIN_MODELS: Tuple[str, ...] = ("hgt", "hetgnn", "gcn", "gat",
                                        "simple_hgn")
TABLE5_MODELS: Tuple[str, ...] = ("gatne", "hetgnn", "gcn", "gat",
                                  "simple_hgn")
SINGLE_OPS: Tuple[str, ...] = ("gcn", "ppnp", "mean", "one_hot", "random")


def table2(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           models: Optional[Sequence[str]] = None,
           seed: int = 0) -> Dict:
    """Table II: AutoAC vs handcrafted HGNNs on node classification."""
    p = preset(scale)
    model_list = list(models) if models is not None else \
        list(TABLE2_METAPATH_MODELS) + list(TABLE2_PLAIN_MODELS)
    rows: Dict[str, Dict[str, Dict]] = {}
    for name in model_list:
        rows[name] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            rows[name][ds_name] = train_baseline_repeated(
                dataset, name, p, base_seed=seed)
    for backbone in AUTOAC_BACKBONES:
        if models is not None and backbone not in model_list:
            continue
        key = f"{backbone}-autoac"
        rows[key] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            rows[key][ds_name] = train_autoac_repeated(
                dataset, ds_name, backbone, p, base_seed=seed)
    return {"table": "II", "datasets": list(datasets), "rows": rows}


def table3(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
           seed: int = 0) -> Dict:
    """Table III: AutoAC vs HGNN-AC on MAGNN and SimpleHGN."""
    p = preset(scale)
    rows: Dict[str, Dict[str, Dict]] = {}
    for backbone in backbones:
        rows[backbone] = {}
        rows[f"{backbone}-hgnnac"] = {}
        rows[f"{backbone}-autoac"] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            rows[backbone][ds_name] = train_baseline_repeated(
                dataset, backbone, p, base_seed=seed)
            rows[f"{backbone}-hgnnac"][ds_name] = train_hgnnac_repeated(
                dataset, backbone, p, base_seed=seed)
            rows[f"{backbone}-autoac"][ds_name] = train_autoac_repeated(
                dataset, ds_name, backbone, p, base_seed=seed)
    return {"table": "III", "datasets": list(datasets), "rows": rows}


def table4(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
           seed: int = 0) -> Dict:
    """Table IV: end-to-end runtime decomposition and speedup."""
    p = preset(scale)
    rows: Dict[str, Dict[str, Dict]] = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        rows[ds_name] = {}
        for backbone in backbones:
            hgnnac = train_hgnnac_repeated(dataset, backbone, p,
                                           base_seed=seed)
            autoac = train_autoac_repeated(dataset, ds_name, backbone, p,
                                           base_seed=seed)
            speedup = hgnnac["runtime_total"] / max(autoac["runtime_total"],
                                                    1e-9)
            rows[ds_name][backbone] = {
                "hgnnac_prelearn": hgnnac["prelearn_seconds"],
                "hgnnac_train": hgnnac["train_seconds"],
                "hgnnac_total": hgnnac["runtime_total"],
                "autoac_search": autoac["search_seconds"],
                "autoac_retrain": autoac["retrain_seconds"],
                "autoac_total": autoac["runtime_total"],
                "speedup": speedup,
            }
    return {"table": "IV", "datasets": list(datasets), "rows": rows}


def table5(scale: Optional[str] = None,
           datasets: Sequence[str] = LINK_PRED_DATASETS,
           models: Sequence[str] = TABLE5_MODELS,
           mask_rate: float = 0.10,
           seed: int = 0) -> Dict:
    """Table V: link prediction (ROC-AUC, MRR) with 10% masked edges."""
    p = preset(scale)
    rows: Dict[str, Dict[str, Dict]] = {}
    tasks = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        tasks[ds_name] = LinkPredictionTask(dataset, mask_rate=mask_rate,
                                            seed=seed)
    for name in models:
        rows[name] = {}
        for ds_name in datasets:
            rows[name][ds_name] = train_link_baseline(tasks[ds_name], name, p,
                                                      seed=seed)
    rows["simple_hgn-autoac"] = {}
    for ds_name in datasets:
        rows["simple_hgn-autoac"][ds_name] = train_link_autoac(
            tasks[ds_name], ds_name, "simple_hgn", p, seed=seed)
    return {"table": "V", "datasets": list(datasets), "rows": rows,
            "mask_rate": mask_rate}


def _completion_ablation(backbone: str, scale: Optional[str],
                         datasets: Sequence[str], seed: int) -> Dict:
    p = preset(scale)
    rows: Dict[str, Dict[str, Dict]] = {"baseline": {}}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        rows["baseline"][ds_name] = train_baseline_repeated(
            dataset, backbone, p, base_seed=seed)
    for op_name in SINGLE_OPS:
        key = f"{op_name}_ac"
        rows[key] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            factory = single_op_features_factory(dataset, p.hidden_dim,
                                                 op_name)
            rows[key][ds_name] = train_baseline_repeated(
                dataset, backbone, p, base_seed=seed,
                features_factory=factory)
    rows["autoac"] = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        rows["autoac"][ds_name] = train_autoac_repeated(
            dataset, ds_name, backbone, p, base_seed=seed)
    return rows


def table6(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           seed: int = 0) -> Dict:
    """Table VI: single-operation completion ablation on SimpleHGN."""
    rows = _completion_ablation("simple_hgn", scale, datasets, seed)
    return {"table": "VI", "datasets": list(datasets), "rows": rows,
            "backbone": "simple_hgn"}


def table7(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           seed: int = 0) -> Dict:
    """Table VII: single-operation completion ablation on MAGNN."""
    rows = _completion_ablation("magnn", scale, datasets, seed)
    return {"table": "VII", "datasets": list(datasets), "rows": rows,
            "backbone": "magnn"}


def table8(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
           seed: int = 0) -> Dict:
    """Table VIII: discrete constraints vs DARTS-style mixture search."""
    p = preset(scale)
    rows: Dict[str, Dict[str, Dict]] = {}
    for backbone in backbones:
        rows[f"{backbone}-autoac"] = {}
        rows[f"{backbone}-w/o-discrete"] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            with_dc = train_autoac_repeated(dataset, ds_name, backbone, p,
                                            base_seed=seed)
            without_dc = train_autoac_repeated(
                dataset, ds_name, backbone, p, base_seed=seed,
                discrete=False, unrolled=True)
            rows[f"{backbone}-autoac"][ds_name] = {
                "macro_f1": with_dc["macro_f1"],
                "macro_f1_std": with_dc["macro_f1_std"],
                "micro_f1": with_dc["micro_f1"],
                "micro_f1_std": with_dc["micro_f1_std"],
                "search_seconds": with_dc["search_seconds"],
            }
            rows[f"{backbone}-w/o-discrete"][ds_name] = {
                "macro_f1": without_dc["macro_f1"],
                "macro_f1_std": without_dc["macro_f1_std"],
                "micro_f1": without_dc["micro_f1"],
                "micro_f1_std": without_dc["micro_f1_std"],
                "search_seconds": without_dc["search_seconds"],
            }
    return {"table": "VIII", "datasets": list(datasets), "rows": rows}


#: Table IX ladders — which node types REMAIN missing at each step
MISSING_RATE_LADDERS: Dict[str, List[List[str]]] = {
    "dblp": [[], ["author"], ["term", "venue"], ["author", "term", "venue"]],
    "acm": [[], ["subject", "term"], ["author", "subject"],
            ["author", "subject", "term"]],
    "imdb": [[], ["keyword"], ["actor", "keyword"],
             ["director", "actor", "keyword"]],
}


def table9(scale: Optional[str] = None,
           datasets: Sequence[str] = NODE_CLF_DATASETS,
           backbone: str = "simple_hgn",
           seed: int = 0) -> Dict:
    """Table IX: varying attribute missing rates (SimpleHGN-AutoAC)."""
    p = preset(scale)
    rows: Dict[str, List[Dict]] = {}
    for ds_name in datasets:
        base = get_dataset(ds_name, scale=p.scale, seed=seed)
        ladder_rows: List[Dict] = []
        for remaining_missing in MISSING_RATE_LADDERS[ds_name]:
            handcraft = [t for t in base.missing_types
                         if t not in remaining_missing]
            dataset = base.with_handcrafted_onehot(handcraft) if handcraft \
                else base
            rate = dataset.attribute_missing_rate
            if remaining_missing:
                metrics = train_autoac_repeated(dataset, ds_name, backbone, p,
                                                base_seed=seed)
            else:
                metrics = train_baseline_repeated(dataset, backbone, p,
                                                  base_seed=seed)
            ladder_rows.append({
                "missing_rate": rate,
                "missing_types": list(remaining_missing),
                "macro_f1": metrics["macro_f1"],
                "macro_f1_std": metrics["macro_f1_std"],
                "micro_f1": metrics["micro_f1"],
                "micro_f1_std": metrics["micro_f1_std"],
            })
        rows[ds_name] = ladder_rows
    return {"table": "IX", "datasets": list(datasets), "rows": rows}


def table10(scale: Optional[str] = None,
            datasets: Sequence[str] = ("dblp", "imdb"),
            mask_rates: Sequence[float] = (0.05, 0.10, 0.20, 0.30),
            backbone: str = "simple_hgn",
            seed: int = 0) -> Dict:
    """Table X: varying masked edge rates in link prediction."""
    p = preset(scale)
    rows: Dict[str, List[Dict]] = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        ladder: List[Dict] = []
        for rate in mask_rates:
            task = LinkPredictionTask(dataset, mask_rate=rate, seed=seed)
            baseline = train_link_baseline(task, backbone, p, seed=seed)
            autoac = train_link_autoac(task, ds_name, backbone, p, seed=seed)
            ladder.append({
                "mask_rate": rate,
                "baseline_roc_auc": baseline["roc_auc"],
                "baseline_mrr": baseline["mrr"],
                "autoac_roc_auc": autoac["roc_auc"],
                "autoac_mrr": autoac["mrr"],
            })
        rows[ds_name] = ladder
    return {"table": "X", "datasets": list(datasets), "rows": rows}


__all__ = [
    "NODE_CLF_DATASETS",
    "LINK_PRED_DATASETS",
    "TABLE2_METAPATH_MODELS",
    "TABLE2_PLAIN_MODELS",
    "TABLE5_MODELS",
    "SINGLE_OPS",
    "MISSING_RATE_LADDERS",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "table9",
    "table10",
]
