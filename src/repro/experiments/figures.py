"""Drivers regenerating every figure of the paper's evaluation section.

Figures are returned as structured series (no plotting dependency is
available offline); :mod:`repro.experiments.reporting` renders ASCII charts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets import get_dataset
from ..models import AUTOAC_BACKBONES
from .configs import preset
from .runner import train_autoac, tune_sweep

CLUSTER_METHODS = ("none", "em", "em_warmup", "modularity")


def figure3(scale: Optional[str] = None,
            datasets: Sequence[str] = ("dblp", "acm", "imdb"),
            backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
            seed: int = 0) -> Dict:
    """Figure 3: clustering-method comparison (w/o cluster, EM, EM+warmup,
    the modularity-based AutoAC)."""
    p = preset(scale)
    series: Dict[str, Dict[str, Dict[str, float]]] = {}
    for backbone in backbones:
        series[backbone] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            per_method = {}
            for method in CLUSTER_METHODS:
                metrics = train_autoac(dataset, ds_name, backbone, p,
                                       seed=seed, cluster_method=method)
                per_method[method] = metrics["macro_f1"]
            series[backbone][ds_name] = per_method
    return {"figure": "3", "series": series}


def figure4(scale: Optional[str] = None,
            datasets: Sequence[str] = ("dblp", "acm", "imdb"),
            backbone: str = "simple_hgn",
            seed: int = 0) -> Dict:
    """Figure 4: convergence of the clustering loss L_GmoC."""
    p = preset(scale)
    traces: Dict[str, List[float]] = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        metrics = train_autoac(dataset, ds_name, backbone, p, seed=seed)
        traces[ds_name] = list(metrics["history"]["lgmoc"])
    return {"figure": "4", "traces": traces}


def figure5(scale: Optional[str] = None,
            datasets: Sequence[str] = ("dblp", "acm", "imdb"),
            backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
            seed: int = 0) -> Dict:
    """Figure 5: distribution of searched completion operations."""
    p = preset(scale)
    distributions: Dict[str, Dict[str, Dict[str, float]]] = {}
    for backbone in backbones:
        distributions[backbone] = {}
        for ds_name in datasets:
            dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
            metrics = train_autoac(dataset, ds_name, backbone, p, seed=seed)
            distributions[backbone][ds_name] = metrics["op_distribution"]
    return {"figure": "5", "distributions": distributions}


def figure6_7(scale: Optional[str] = None,
              datasets: Sequence[str] = ("acm", "imdb"),
              backbone: str = "simple_hgn",
              seed: int = 0) -> Dict:
    """Figures 6/7: per-node-type distribution of searched operations."""
    p = preset(scale)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for ds_name in datasets:
        dataset = get_dataset(ds_name, scale=p.scale, seed=seed)
        metrics = train_autoac(dataset, ds_name, backbone, p, seed=seed)
        assignment = metrics["assignment"]
        op_names = ["mean", "gcn", "ppnp", "one_hot"]
        missing_ids = dataset.missing_global_ids
        type_index = dataset.graph.node_type_index[missing_ids]
        per_type: Dict[str, Dict[str, float]] = {}
        for type_id, type_name in enumerate(dataset.graph.node_types):
            mask = type_index == type_id
            total = int(mask.sum())
            if total == 0:
                continue
            per_type[type_name] = {
                op: float(np.sum(assignment[mask] == op_idx)) / total
                for op_idx, op in enumerate(op_names)
            }
        out[ds_name] = per_type
    return {"figure": "6/7", "per_type": out}


def figure8(scale: Optional[str] = None,
            datasets: Sequence[str] = ("dblp", "acm", "imdb"),
            backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
            m_values: Sequence[int] = (2, 4, 8, 12, 16),
            seed: int = 0, workers: int = 0) -> Dict:
    """Figure 8: sensitivity to the number of clusters M.

    The sweep runs as a ``grid`` strategy on the autotune trial
    scheduler (``workers`` trials in parallel); grid trials reuse the
    base seed, so values match the historical sequential loop exactly.
    """
    p = preset(scale)
    series: Dict[str, Dict[str, Dict[int, float]]] = {}
    for backbone in backbones:
        series[backbone] = {}
        for ds_name in datasets:
            rows = tune_sweep(ds_name, backbone, p,
                              [{"num_clusters": m} for m in m_values],
                              seed=seed, workers=workers)
            series[backbone][ds_name] = {
                m: row["macro_f1"] for m, row in zip(m_values, rows)}
    return {"figure": "8", "series": series, "m_values": list(m_values)}


def figure9(scale: Optional[str] = None,
            datasets: Sequence[str] = ("dblp", "acm", "imdb"),
            backbones: Sequence[str] = tuple(AUTOAC_BACKBONES),
            lambda_values: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5),
            seed: int = 0, workers: int = 0) -> Dict:
    """Figure 9: sensitivity to the clustering-loss coefficient lambda.

    Scheduler-backed sweep; see :func:`figure8`.
    """
    p = preset(scale)
    series: Dict[str, Dict[str, Dict[float, float]]] = {}
    for backbone in backbones:
        series[backbone] = {}
        for ds_name in datasets:
            rows = tune_sweep(ds_name, backbone, p,
                              [{"lambda_cluster": lam}
                               for lam in lambda_values],
                              seed=seed, workers=workers)
            series[backbone][ds_name] = {
                lam: row["macro_f1"]
                for lam, row in zip(lambda_values, rows)}
    return {"figure": "9", "series": series,
            "lambda_values": list(lambda_values)}


def figure10_11(scale: Optional[str] = None,
                datasets: Sequence[str] = ("dblp", "acm", "imdb"),
                backbone: str = "simple_hgn",
                lr_values: Sequence[float] = (3e-3, 4e-3, 5e-3, 6e-3, 7e-3),
                wd_values: Sequence[float] = (5e-6, 1e-5, 2e-5, 3e-5, 4e-3),
                seed: int = 0, workers: int = 0) -> Dict:
    """Figures 10/11: sensitivity to alpha's learning rate and weight decay.

    Scheduler-backed sweep; see :func:`figure8`.
    """
    p = preset(scale)
    lr_series: Dict[str, Dict[float, float]] = {}
    wd_series: Dict[str, Dict[float, float]] = {}
    for ds_name in datasets:
        overrides = ([{"alpha_lr": lr} for lr in lr_values]
                     + [{"alpha_weight_decay": wd} for wd in wd_values])
        rows = tune_sweep(ds_name, backbone, p, overrides,
                          seed=seed, workers=workers)
        lr_series[ds_name] = {
            lr: row["macro_f1"]
            for lr, row in zip(lr_values, rows[:len(lr_values)])}
        wd_series[ds_name] = {
            wd: row["macro_f1"]
            for wd, row in zip(wd_values, rows[len(lr_values):])}
    return {"figure": "10/11", "lr_series": lr_series, "wd_series": wd_series,
            "lr_values": list(lr_values), "wd_values": list(wd_values)}


__all__ = [
    "CLUSTER_METHODS",
    "figure3",
    "figure4",
    "figure5",
    "figure6_7",
    "figure8",
    "figure9",
    "figure10_11",
]
