"""Render experiment results in the paper's table/figure layouts.

Everything prints as aligned plain text (the offline environment has no
plotting stack); figures become ASCII bar/line sketches faithful enough to
eyeball the paper's shapes.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

import numpy as np


def _fmt(value: float, std: float | None = None, scale: float = 100.0) -> str:
    if std is not None:
        return f"{value * scale:6.2f}±{std * scale:4.2f}"
    return f"{value * scale:6.2f}"


def _fmt_seconds(value: float) -> str:
    return f"{value:8.2f}s"


def render_node_clf_table(result: Dict) -> str:
    """Tables II / III / VI / VII: model × dataset macro/micro-F1 grid."""
    datasets = result["datasets"]
    lines = [f"=== Table {result['table']} ==="]
    header = f"{'model':24s}" + "".join(
        f"{d + ' macro':>16s}{d + ' micro':>16s}{'time':>10s}"
        for d in datasets)
    lines.append(header)
    for model, per_ds in result["rows"].items():
        cells = []
        for ds_name in datasets:
            row = per_ds[ds_name]
            cells.append(f"{_fmt(row['macro_f1'], row.get('macro_f1_std')):>16s}")
            cells.append(f"{_fmt(row['micro_f1'], row.get('micro_f1_std')):>16s}")
            cells.append(f"{row.get('runtime_total', float('nan')):9.1f}s")
        lines.append(f"{model:24s}" + "".join(cells))
    return "\n".join(lines)


def render_table4(result: Dict) -> str:
    lines = ["=== Table IV (runtime decomposition, seconds) ==="]
    lines.append(f"{'dataset':8s}{'model':22s}{'pre-learn':>10s}{'search':>10s}"
                 f"{'train/retrain':>14s}{'total':>10s}{'speedup':>9s}")
    for ds_name, per_model in result["rows"].items():
        for backbone, row in per_model.items():
            lines.append(
                f"{ds_name:8s}{backbone + '-hgnnac':22s}"
                f"{row['hgnnac_prelearn']:10.2f}{'/':>10s}"
                f"{row['hgnnac_train']:14.2f}{row['hgnnac_total']:10.2f}"
                f"{row['speedup']:8.1f}x")
            lines.append(
                f"{ds_name:8s}{backbone + '-autoac':22s}"
                f"{'/':>10s}{row['autoac_search']:10.2f}"
                f"{row['autoac_retrain']:14.2f}{row['autoac_total']:10.2f}"
                f"{'':>9s}")
    return "\n".join(lines)


def render_table5(result: Dict) -> str:
    datasets = result["datasets"]
    lines = [f"=== Table V (link prediction, {result['mask_rate']:.0%} masked) ==="]
    header = f"{'model':22s}" + "".join(
        f"{d + ' AUC':>12s}{d + ' MRR':>12s}" for d in datasets)
    lines.append(header)
    for model, per_ds in result["rows"].items():
        cells = []
        for ds_name in datasets:
            row = per_ds[ds_name]
            cells.append(f"{row['roc_auc'] * 100:11.2f} ")
            cells.append(f"{row['mrr'] * 100:11.2f} ")
        lines.append(f"{model:22s}" + "".join(cells))
    return "\n".join(lines)


def render_table8(result: Dict) -> str:
    datasets = result["datasets"]
    lines = ["=== Table VIII (discrete constraints ablation) ==="]
    header = f"{'model':26s}" + "".join(
        f"{d + ' macro':>14s}{d + ' srch(s)':>12s}" for d in datasets)
    lines.append(header)
    for model, per_ds in result["rows"].items():
        cells = []
        for ds_name in datasets:
            row = per_ds[ds_name]
            cells.append(f"{_fmt(row['macro_f1'], row.get('macro_f1_std')):>14s}")
            cells.append(f"{row['search_seconds']:11.2f} ")
        lines.append(f"{model:26s}" + "".join(cells))
    return "\n".join(lines)


def render_table9(result: Dict) -> str:
    lines = ["=== Table IX (attribute missing rates) ==="]
    lines.append(f"{'dataset':8s}{'missing rate':>13s}  "
                 f"{'missing types':32s}{'macro':>14s}{'micro':>14s}")
    for ds_name, ladder in result["rows"].items():
        for row in ladder:
            types = ",".join(row["missing_types"]) or "/"
            lines.append(
                f"{ds_name:8s}{row['missing_rate']:12.0%}  {types:32s}"
                f"{_fmt(row['macro_f1'], row.get('macro_f1_std')):>14s}"
                f"{_fmt(row['micro_f1'], row.get('micro_f1_std')):>14s}")
    return "\n".join(lines)


def render_table10(result: Dict) -> str:
    lines = ["=== Table X (masked edge rates) ==="]
    lines.append(f"{'dataset':8s}{'masked':>8s}{'base AUC':>10s}{'base MRR':>10s}"
                 f"{'AutoAC AUC':>12s}{'AutoAC MRR':>12s}")
    for ds_name, ladder in result["rows"].items():
        for row in ladder:
            lines.append(
                f"{ds_name:8s}{row['mask_rate']:8.0%}"
                f"{row['baseline_roc_auc'] * 100:10.2f}"
                f"{row['baseline_mrr'] * 100:10.2f}"
                f"{row['autoac_roc_auc'] * 100:12.2f}"
                f"{row['autoac_mrr'] * 100:12.2f}")
    return "\n".join(lines)


def render_bar_chart(values: Dict[str, float], width: int = 40,
                     scale: float = 100.0) -> List[str]:
    lines = []
    top = max(values.values()) if values else 1.0
    for key, value in values.items():
        bar = "#" * int(round(width * value / max(top, 1e-9)))
        lines.append(f"  {str(key):>14s} |{bar:<{width}s}| {value * scale:6.2f}")
    return lines


def render_figure3(result: Dict) -> str:
    lines = ["=== Figure 3 (clustering methods, macro-F1) ==="]
    for backbone, per_ds in result["series"].items():
        for ds_name, per_method in per_ds.items():
            lines.append(f"[{backbone} / {ds_name}]")
            lines.extend(render_bar_chart(per_method))
    return "\n".join(lines)


def render_figure4(result: Dict, width: int = 60) -> str:
    lines = ["=== Figure 4 (L_GmoC convergence) ==="]
    for ds_name, trace in result["traces"].items():
        if not trace:
            continue
        arr = np.asarray(trace)
        lo, hi = float(arr.min()), float(arr.max())
        span = max(hi - lo, 1e-9)
        sparkline = "".join(
            " .:-=+*#%@"[min(int((v - lo) / span * 9), 9)] for v in arr[:width])
        lines.append(f"  {ds_name:8s} start={arr[0]:7.4f} end={arr[-1]:7.4f}  "
                     f"[{sparkline}]")
    return "\n".join(lines)


def render_figure5(result: Dict) -> str:
    lines = ["=== Figure 5 (searched op distribution) ==="]
    for backbone, per_ds in result["distributions"].items():
        for ds_name, dist in per_ds.items():
            lines.append(f"[{backbone} / {ds_name}]")
            lines.extend(render_bar_chart(dist, scale=100.0))
    return "\n".join(lines)


def render_figure6_7(result: Dict) -> str:
    lines = ["=== Figures 6/7 (per-node-type op distribution) ==="]
    for ds_name, per_type in result["per_type"].items():
        for type_name, dist in per_type.items():
            lines.append(f"[{ds_name} / {type_name}]")
            lines.extend(render_bar_chart(dist, scale=100.0))
    return "\n".join(lines)


def render_sweep(result: Dict, series_key: str, x_label: str) -> str:
    lines = [f"=== Figure {result['figure']} ({x_label} sweep, macro-F1) ==="]
    for backbone, per_ds in result[series_key].items():
        for ds_name, sweep in per_ds.items():
            pts = "  ".join(f"{x}:{y * 100:5.2f}" for x, y in sweep.items())
            lines.append(f"  {backbone:12s} {ds_name:6s}  {pts}")
    return "\n".join(lines)


def render_figure10_11(result: Dict) -> str:
    lines = ["=== Figures 10/11 (alpha lr / weight-decay sweeps, macro-F1) ==="]
    for ds_name, sweep in result["lr_series"].items():
        pts = "  ".join(f"{x:.0e}:{y * 100:5.2f}" for x, y in sweep.items())
        lines.append(f"  lr  {ds_name:6s}  {pts}")
    for ds_name, sweep in result["wd_series"].items():
        pts = "  ".join(f"{x:.0e}:{y * 100:5.2f}" for x, y in sweep.items())
        lines.append(f"  wd  {ds_name:6s}  {pts}")
    return "\n".join(lines)


def render_runs_index(rows: Sequence[Dict]) -> str:
    """The ``repro runs list`` table: one line per registered run.

    ``rows`` are :meth:`repro.runs.RunRecord.summary` dicts.
    """
    if not rows:
        return "no runs registered"
    lines = [f"{'name':<32s} {'strategy':>10s} {'trials':>6s} "
             f"{'failed':>6s} {'deaths':>6s} {'best':>8s} {'stopped':<s}"]
    for row in rows:
        best = ("       —" if row["best_score"] is None
                else f"{row['best_score']:8.4f}")
        lines.append(f"{row['name']:<32s} {row['strategy']:>10s} "
                     f"{row['trials']:>6d} {row['failed']:>6d} "
                     f"{row['worker_deaths']:>6d} {best} "
                     f"{row['stopped'] or '—'}")
    return "\n".join(lines)


def render_run_diff(diff) -> str:
    """The ``repro runs compare`` report (a :class:`repro.runs.RunDiff`)."""
    lines = [f"=== {diff.a.name} vs {diff.b.name} ==="]
    if diff.same_setup:
        lines.append("configs: identical setups")
    else:
        lines.append("configs:")
        for row in diff.config:
            lines.append(f"  {row['path']:<32s} {row['a']!r:>16s} -> "
                         f"{row['b']!r}")
    best_a, best_b = diff.a.best, diff.b.best
    for label, best in ((diff.a.name, best_a), (diff.b.name, best_b)):
        if best is None:
            lines.append(f"best [{label}]: no completed trials")
        else:
            lines.append(f"best [{label}]: trial {best.trial_id} "
                         f"score {float(best.score):.4f}")
    if diff.best_delta is not None:
        lines.append(f"best delta (b - a): {diff.best_delta:+.4f}")
    if diff.shared_trials:
        lines.append(f"shared trials ({len(diff.shared_trials)}):")
        lines.append(f"  {'trial':>5s} {'a':>8s} {'b':>8s} {'delta':>8s}")
        for row in diff.shared_trials:
            lines.append(f"  {row['trial_id']:>5d} {row['a']:>8.4f} "
                         f"{row['b']:>8.4f} {row['delta']:>+8.4f}")
    return "\n".join(lines)


def to_json(result: Dict) -> str:
    """JSON dump with numpy arrays/scalars converted."""
    def convert(obj):
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        if isinstance(obj, (np.floating, np.integer)):
            return obj.item()
        raise TypeError(f"not serializable: {type(obj)}")

    return json.dumps(result, default=convert, indent=2)


__all__ = [
    "render_node_clf_table",
    "render_table4",
    "render_table5",
    "render_table8",
    "render_table9",
    "render_table10",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "render_figure6_7",
    "render_sweep",
    "render_figure10_11",
    "render_bar_chart",
    "render_runs_index",
    "render_run_diff",
    "to_json",
]
