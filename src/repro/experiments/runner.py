"""Shared execution helpers for the table/figure drivers."""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..baselines import HGNNACFeatures, Metapath2VecConfig, prelearn_topology
from ..completion import (
    FeatureBuilder,
    FixedAssignmentFeatures,
    HandcraftedFeatures,
    SingleOpFeatures,
)
from ..core import AutoACConfig, run_autoac, run_autoac_link_prediction
from ..datasets import HeteroDataset, get_dataset
from ..models import build_model
from ..training import (
    LinkPredConfig,
    LinkPredictionTask,
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    TrainConfig,
    set_seed,
)
from .configs import ExperimentPreset, autoac_config, preset


def mean_std(values: List[float]) -> Dict[str, float]:
    arr = np.asarray(values, dtype=np.float64)
    return {"mean": float(arr.mean()), "std": float(arr.std())}


def train_baseline(dataset: HeteroDataset, model_name: str,
                   p: ExperimentPreset, seed: int = 0,
                   features_factory: Optional[Callable[[], FeatureBuilder]] = None,
                   **model_kwargs) -> Dict[str, float]:
    """One handcrafted-completion training run; returns metric row."""
    set_seed(seed)
    features = (features_factory() if features_factory
                else HandcraftedFeatures(dataset, p.hidden_dim))
    model = build_model(model_name, dataset, hidden_dim=p.hidden_dim,
                        out_dim=p.hidden_dim, **model_kwargs)
    result = NodeClassificationTrainer(model, features, dataset, p.train).train()
    return {
        "macro_f1": result.macro_f1,
        "micro_f1": result.micro_f1,
        "runtime_total": result.train_seconds,
        "runtime_per_epoch": result.train_seconds / max(result.epochs_run, 1),
    }


def train_baseline_repeated(dataset: HeteroDataset, model_name: str,
                            p: ExperimentPreset, base_seed: int = 0,
                            features_factory=None,
                            **model_kwargs) -> Dict[str, float]:
    runs = [train_baseline(dataset, model_name, p, seed=base_seed + i,
                           features_factory=features_factory, **model_kwargs)
            for i in range(p.repeats)]
    macro = mean_std([r["macro_f1"] for r in runs])
    micro = mean_std([r["micro_f1"] for r in runs])
    return {
        "macro_f1": macro["mean"], "macro_f1_std": macro["std"],
        "micro_f1": micro["mean"], "micro_f1_std": micro["std"],
        "runtime_total": float(np.mean([r["runtime_total"] for r in runs])),
        "runtime_per_epoch": float(np.mean([r["runtime_per_epoch"]
                                            for r in runs])),
    }


def train_autoac(dataset: HeteroDataset, dataset_name: str, model_name: str,
                 p: ExperimentPreset, seed: int = 0,
                 **config_overrides) -> Dict[str, float]:
    """One AutoAC search+retrain run; returns metric row with timing split."""
    set_seed(seed)
    config = autoac_config(model_name, dataset_name, p, **config_overrides)
    result = run_autoac(dataset, model_name, config, seed=seed)
    return {
        "macro_f1": result.final.macro_f1,
        "micro_f1": result.final.micro_f1,
        "search_seconds": result.search.search_seconds,
        "retrain_seconds": result.final.train_seconds,
        "runtime_total": result.total_seconds,
        "runtime_per_epoch": result.final.train_seconds
        / max(result.final.epochs_run, 1),
        "op_distribution": result.search.op_distribution(),
        "assignment": result.search.assignment,
        "history": result.search.history,
        "cluster_labels": result.search.cluster_labels,
    }


def train_autoac_repeated(dataset: HeteroDataset, dataset_name: str,
                          model_name: str, p: ExperimentPreset,
                          base_seed: int = 0,
                          **config_overrides) -> Dict[str, float]:
    runs = [train_autoac(dataset, dataset_name, model_name, p,
                         seed=base_seed + i, **config_overrides)
            for i in range(p.repeats)]
    macro = mean_std([r["macro_f1"] for r in runs])
    micro = mean_std([r["micro_f1"] for r in runs])
    return {
        "macro_f1": macro["mean"], "macro_f1_std": macro["std"],
        "micro_f1": micro["mean"], "micro_f1_std": micro["std"],
        "search_seconds": float(np.mean([r["search_seconds"] for r in runs])),
        "retrain_seconds": float(np.mean([r["retrain_seconds"] for r in runs])),
        "runtime_total": float(np.mean([r["runtime_total"] for r in runs])),
        "runtime_per_epoch": float(np.mean([r["runtime_per_epoch"]
                                            for r in runs])),
        "op_distribution": runs[0]["op_distribution"],
        "assignment": runs[0]["assignment"],
        "history": runs[0]["history"],
        "cluster_labels": runs[0]["cluster_labels"],
    }


def tune_sweep(dataset_name: str, model_name: str, p: ExperimentPreset,
               overrides_list: List[Dict], seed: int = 0, workers: int = 0,
               journal: Optional[str] = None,
               **base_overrides) -> List[Dict[str, float]]:
    """Run one full AutoAC search+retrain per override set, on the scheduler.

    The paper's sensitivity sweeps (Figs. 8–11) as a ``grid`` strategy
    over :class:`~repro.autotune.TrialScheduler`: each grid point applies
    its overrides to the paper-preset search config and runs the
    one-shot search end to end.  Grid trials reuse the *base* seed, so a
    row is bit-identical to the sequential
    ``train_autoac(..., **overrides)`` call it replaces — but rows can
    now run on parallel workers and be checkpoint-resumed like any other
    tuning run.  Rows come back in ``overrides_list`` order.
    """
    from ..autotune import DatasetRef, GridSearch, TrialScheduler, TuneTask

    config = autoac_config(model_name, dataset_name, p, **base_overrides)
    task = TuneTask(
        dataset=DatasetRef(dataset_name, scale=p.scale, seed=seed),
        model_name=model_name,
        hidden_dim=config.hidden_dim,
        out_dim=config.out_dim,
        num_slots=config.num_clusters,
        max_budget=p.train.epochs,
        search_config=config,
    )
    strategy = GridSearch(num_slots=task.num_slots, num_ops=task.num_ops,
                          max_budget=task.max_budget, seed=seed,
                          values=overrides_list)
    report = TrialScheduler(task, strategy, workers=workers,
                            journal=journal, resume=journal is not None).run()
    by_id = {result.trial_id: result for result in report.results}
    rows: List[Dict[str, float]] = []
    for index in range(len(overrides_list)):
        result = by_id[index]
        if result.failed:
            raise RuntimeError(
                f"sweep point {overrides_list[index]} failed: {result.error}")
        rows.append({
            "macro_f1": result.macro_f1,
            "micro_f1": result.micro_f1,
            "val_macro_f1": result.score,
            "search_seconds": result.extra.get("search_seconds", 0.0),
            "runtime_total": result.seconds,
            "op_distribution": result.op_distribution,
        })
    return rows


def train_hgnnac(dataset: HeteroDataset, model_name: str,
                 p: ExperimentPreset, seed: int = 0) -> Dict[str, float]:
    """HGNN-AC pipeline: metapath2vec pre-learning, then joint training."""
    set_seed(seed)
    # pre-learning uses metapath2vec's published budget shape (tens of walks
    # per node, length ~100); this is the stage that dominates HGNN-AC's
    # end-to-end cost in the paper's Table IV, so it is not scaled away
    m2v = Metapath2VecConfig(embed_dim=32,
                             walks_per_node=20 if p.scale == "tiny" else 40,
                             walk_length=50 if p.scale == "tiny" else 80,
                             epochs=3)
    pre = prelearn_topology(dataset, m2v, seed=seed)
    features = HGNNACFeatures(dataset, p.hidden_dim, pre.embeddings)
    model = build_model(model_name, dataset, hidden_dim=p.hidden_dim,
                        out_dim=p.hidden_dim)
    result = NodeClassificationTrainer(model, features, dataset, p.train).train()
    return {
        "macro_f1": result.macro_f1,
        "micro_f1": result.micro_f1,
        "prelearn_seconds": pre.seconds,
        "train_seconds": result.train_seconds,
        "runtime_total": pre.seconds + result.train_seconds,
    }


def train_hgnnac_repeated(dataset: HeteroDataset, model_name: str,
                          p: ExperimentPreset,
                          base_seed: int = 0) -> Dict[str, float]:
    runs = [train_hgnnac(dataset, model_name, p, seed=base_seed + i)
            for i in range(p.repeats)]
    macro = mean_std([r["macro_f1"] for r in runs])
    micro = mean_std([r["micro_f1"] for r in runs])
    return {
        "macro_f1": macro["mean"], "macro_f1_std": macro["std"],
        "micro_f1": micro["mean"], "micro_f1_std": micro["std"],
        "prelearn_seconds": float(np.mean([r["prelearn_seconds"]
                                           for r in runs])),
        "train_seconds": float(np.mean([r["train_seconds"] for r in runs])),
        "runtime_total": float(np.mean([r["runtime_total"] for r in runs])),
    }


def train_link_baseline(task: LinkPredictionTask, model_name: str,
                        p: ExperimentPreset, seed: int = 0) -> Dict[str, float]:
    set_seed(seed)
    dataset = task.train_graph_dataset
    features = HandcraftedFeatures(dataset, p.hidden_dim)
    model = build_model(model_name, dataset, hidden_dim=p.hidden_dim,
                        out_dim=p.hidden_dim)
    result = LinkPredictionTrainer(model, features, task, p.link).train()
    return {
        "roc_auc": result.roc_auc,
        "mrr": result.mrr,
        "runtime_total": result.train_seconds,
        "runtime_per_epoch": result.train_seconds / max(result.epochs_run, 1),
    }


def train_link_autoac(task: LinkPredictionTask, dataset_name: str,
                      model_name: str, p: ExperimentPreset,
                      seed: int = 0) -> Dict[str, float]:
    set_seed(seed)
    config = autoac_config(model_name, dataset_name, p)
    result = run_autoac_link_prediction(task, model_name, config,
                                        retrain_config=p.link, seed=seed)
    return {
        "roc_auc": result.final.roc_auc,
        "mrr": result.final.mrr,
        "search_seconds": result.search.search_seconds,
        "runtime_total": result.total_seconds,
        "runtime_per_epoch": result.final.train_seconds
        / max(result.final.epochs_run, 1),
    }


def single_op_features_factory(dataset: HeteroDataset, hidden_dim: int,
                               op_name: str):
    if op_name == "random":
        rng = np.random.default_rng(0)
        return lambda: FixedAssignmentFeatures.random(dataset, hidden_dim, rng)
    return lambda: SingleOpFeatures(dataset, hidden_dim, op_name)


__all__ = [
    "mean_std",
    "train_baseline",
    "train_baseline_repeated",
    "train_autoac",
    "train_autoac_repeated",
    "tune_sweep",
    "train_hgnnac",
    "train_hgnnac_repeated",
    "train_link_baseline",
    "train_link_autoac",
    "single_op_features_factory",
]
