"""First-order optimizers (SGD with momentum, Adam, AdamW).

The AutoAC paper optimizes both the GNN weights ``w`` and the completion
parameters ``alpha`` with Adam (different learning rates / weight decays),
so Adam is the workhorse here.  ``weight_decay`` in :class:`Adam` follows
the classic L2 formulation (decay added to the gradient) to match the
paper's PyTorch configuration; :class:`AdamW` offers decoupled decay.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from .tensor import Tensor


class Optimizer:
    """Base class storing parameters and providing ``zero_grad``."""

    def __init__(self, params: Iterable[Tensor], lr: float) -> None:
        self.params: List[Tensor] = [p for p in params]
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        """Reset the gradient of every managed parameter to ``None``."""
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update from the accumulated gradients (in place)."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and L2 decay."""

    def __init__(self, params: Iterable[Tensor], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba) with classic L2 ``weight_decay`` on the gradient."""

    def __init__(self, params: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        # one persistent scratch per parameter (for the denominator); the
        # numerator is a single short-lived temporary, so step() trades
        # the naive formula's ~5 temporaries for 1 without doubling the
        # optimizer's resident state.  Float-op order matches the naive
        # formula exactly (bit-for-bit identical updates).
        self._scratch = [np.empty_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1 ** self._t
        bias2 = 1.0 - self.beta2 ** self._t
        for param, m, v, sv in zip(self.params, self._m, self._v,
                                   self._scratch):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            # update = lr * (m / bias1) / (sqrt(v / bias2) + eps)
            np.divide(v, bias2, out=sv)
            np.sqrt(sv, out=sv)
            sv += self.eps
            update = m / bias1
            update *= self.lr
            update /= sv
            param.data -= update


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def step(self) -> None:
        if self.weight_decay:
            for param in self.params:
                if param.grad is not None:
                    param.data -= self.lr * self.weight_decay * param.data
        decay, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = decay


def clip_grad_norm(params: Iterable[Tensor], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``."""
    params = [p for p in params if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad ** 2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad *= scale
    return total


__all__ = ["Optimizer", "SGD", "Adam", "AdamW", "clip_grad_norm"]
