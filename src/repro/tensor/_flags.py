"""Engine-wide feature flags shared across the tensor modules.

Lives in its own leaf module because both :mod:`.tensor` (primitives) and
:mod:`.functional` (composites) consult the fused-kernels switch, and
:mod:`.functional` imports :mod:`.tensor`.  State is held in a mutable
holder so every importer observes updates.
"""

from __future__ import annotations

_FUSED = [False]


def fused_enabled() -> bool:
    return _FUSED[0]


def set_fused(enabled: bool) -> bool:
    previous = _FUSED[0]
    _FUSED[0] = bool(enabled)
    return previous


__all__ = ["fused_enabled", "set_fused"]
