"""Neural-network functional operations built on the autograd primitives.

Everything here composes the primitives in :mod:`repro.tensor.tensor` (so
gradients come for free) or defines a fused primitive with an explicit
backward where stability or speed demands it (softmax, losses, dropout,
segment softmax).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .random import get_rng
from .tensor import (
    Tensor,
    ensure_tensor,
    gather_rows,
    is_grad_enabled,
    scatter_add,
)


def _needs_grad(*tensors: Tensor) -> bool:
    return is_grad_enabled() and any(t.requires_grad for t in tensors)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax with a fused backward."""
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor(out_data, requires_grad=_needs_grad(x))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x.accumulate_grad(out_data * (grad - dot))
        out._rig((x,), backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable ``log(softmax(x))`` with a fused backward."""
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    out = Tensor(out_data, requires_grad=_needs_grad(x))
    if out.requires_grad:
        soft = np.exp(out_data)
        def backward(grad: np.ndarray) -> None:
            x.accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))
        out._rig((x,), backward)
    return out


def cross_entropy(logits: Tensor, targets: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Multi-class cross entropy on integer targets ``(N,)``."""
    logits = ensure_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = gather_rows(log_probs.reshape(-1),
                         targets + np.arange(n) * logits.shape[-1])
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     reduction: str = "mean") -> Tensor:
    """Stable BCE: ``max(x,0) - x*z + log1p(exp(-|x|))`` with fused backward."""
    logits = ensure_tensor(logits)
    z = np.asarray(targets, dtype=np.float64)
    x = logits.data
    loss_data = np.maximum(x, 0.0) - x * z + np.log1p(np.exp(-np.abs(x)))
    if reduction == "mean":
        out_data = loss_data.mean()
    elif reduction == "sum":
        out_data = loss_data.sum()
    else:
        out_data = loss_data
    out = Tensor(out_data, requires_grad=_needs_grad(logits))
    if out.requires_grad:
        sig = 0.5 * (1.0 + np.tanh(0.5 * x))
        def backward(grad: np.ndarray) -> None:
            local = sig - z
            if reduction == "mean":
                logits.accumulate_grad(grad * local / x.size)
            elif reduction == "sum":
                logits.accumulate_grad(grad * local)
            else:
                logits.accumulate_grad(grad * local)
        out._rig((logits,), backward)
    return out


def nll_loss(log_probs: Tensor, targets: np.ndarray,
             reduction: str = "mean") -> Tensor:
    """Negative log likelihood on precomputed log-probabilities."""
    log_probs = ensure_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = gather_rows(log_probs.reshape(-1),
                         targets + np.arange(n) * log_probs.shape[-1])
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


# ----------------------------------------------------------------------
# Regularisation
# ----------------------------------------------------------------------
def dropout(x: Tensor, p: float, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return ensure_tensor(x)
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    x = ensure_tensor(x)
    mask = (get_rng().random(x.shape) >= p) / (1.0 - p)
    out = Tensor(x.data * mask, requires_grad=_needs_grad(x))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            x.accumulate_grad(grad * mask)
        out._rig((x,), backward)
    return out


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit L2 norm (composite, differentiable)."""
    x = ensure_tensor(x)
    squared = (x * x).sum(axis=axis, keepdims=True)
    norm = (squared + eps) ** 0.5
    return x / norm


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis (composite)."""
    x = ensure_tensor(x)
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = (var + eps) ** -0.5
    return centered * inv_std * weight + bias


# ----------------------------------------------------------------------
# Segment operations (per-destination-node softmax etc.)
# ----------------------------------------------------------------------
def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Alias of :func:`scatter_add` under its conventional name."""
    return scatter_add(x, segment_ids, num_segments)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zeros."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    totals = scatter_add(x, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (totals.ndim - 1))
    return totals * (1.0 / counts)


def segment_max_data(x: np.ndarray, segment_ids: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Per-segment maximum of raw data (no gradient; used as a stability shift)."""
    out = np.full((num_segments,) + x.shape[1:], -np.inf, dtype=x.dtype)
    np.maximum.at(out, segment_ids, x)
    return out


def segment_softmax(scores: Tensor, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax of ``scores`` within segments (e.g. edges grouped by dst node).

    Implemented as a composite of autograd primitives; the per-segment max
    shift is detached, which leaves gradients unchanged because softmax is
    shift invariant within each segment.
    """
    scores = ensure_tensor(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    shift = segment_max_data(scores.data, segment_ids, num_segments)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    from .tensor import exp as t_exp  # local import avoids a cycle at module load

    shifted = scores - Tensor(shift[segment_ids])
    exp_scores = t_exp(shifted)
    denom = scatter_add(exp_scores, segment_ids, num_segments)
    denom_per_edge = gather_rows(denom, segment_ids)
    return exp_scores / (denom_per_edge + 1e-16)


def segment_weighted_mean(values: Tensor, weights: Tensor,
                          segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """``sum_i w_i v_i / sum_i w_i`` per segment (both differentiable)."""
    weighted = values * weights
    num = scatter_add(weighted, segment_ids, num_segments)
    den = scatter_add(weights, segment_ids, num_segments)
    return num / (den + 1e-16)


# ----------------------------------------------------------------------
# Embeddings
# ----------------------------------------------------------------------
def embedding(table: Tensor, index: np.ndarray) -> Tensor:
    """Look up rows of an embedding ``table`` (gradient scatters back)."""
    return gather_rows(table, index)


def one_hot(index: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding as a plain array (constant, no gradient)."""
    index = np.asarray(index, dtype=np.int64)
    out = np.zeros((index.shape[0], num_classes), dtype=np.float64)
    out[np.arange(index.shape[0]), index] = 1.0
    return out


__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "nll_loss",
    "dropout",
    "l2_normalize",
    "layer_norm",
    "segment_sum",
    "segment_mean",
    "segment_max_data",
    "segment_softmax",
    "segment_weighted_mean",
    "embedding",
    "one_hot",
]
