"""Neural-network functional operations built on the autograd primitives.

Everything here composes the primitives in :mod:`repro.tensor.tensor` (so
gradients come for free) or defines a fused primitive with an explicit
backward where stability or speed demands it (softmax, losses, dropout,
segment softmax).

Fused kernels
-------------
A second, faster implementation exists for the hottest composites:
``addmm`` (matmul + bias in one node), ``cross_entropy`` (log-softmax +
NLL in one node), ``segment_softmax`` (one node instead of five) and
``attention_aggregate`` (gather × weights × scatter in one node).  Each
avoids materializing intermediate tensors and graph nodes.  They are
gated behind :func:`set_fused_kernels` — default **off** — because their
backward passes associate float operations differently from the
composites: results are equal to numerical precision but not bit-for-bit,
and the float64 reference profile guarantees bit-identical paper figures.
The fast runtime profile (:mod:`repro.perf.profiles`) switches them on.
"""

from __future__ import annotations

import contextlib
from typing import Optional

import numpy as np

from . import _flags
from ._profile import profiled
from .random import get_rng, random_values
from .tensor import (
    Tensor,
    ensure_tensor,
    gather_rows,
    is_grad_enabled,
    scatter_accumulate,
    scatter_add,
)


def _needs_grad(*tensors: Tensor) -> bool:
    return is_grad_enabled() and any(t.requires_grad for t in tensors)


# ----------------------------------------------------------------------
# Fused-kernel gate (state lives in ._flags, shared with .tensor)
# ----------------------------------------------------------------------
def fused_kernels_enabled() -> bool:
    """Whether the fused fast-path kernels are active."""
    return _flags.fused_enabled()


def set_fused_kernels(enabled: bool) -> bool:
    """Toggle the fused kernels; returns the previous setting."""
    return _flags.set_fused(enabled)


@contextlib.contextmanager
def fused_kernels(enabled: bool = True):
    """Scoped :func:`set_fused_kernels` (restores the previous setting)."""
    previous = set_fused_kernels(enabled)
    try:
        yield
    finally:
        set_fused_kernels(previous)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
@profiled
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax with a fused backward."""
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor(out_data, requires_grad=_needs_grad(x))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            x.accumulate_grad(out_data * (grad - dot))
        out._rig((x,), backward)
    return out


@profiled
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable ``log(softmax(x))`` with a fused backward."""
    x = ensure_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_norm
    out = Tensor(out_data, requires_grad=_needs_grad(x))
    if out.requires_grad:
        soft = np.exp(out_data)
        def backward(grad: np.ndarray) -> None:
            x.accumulate_grad(grad - soft * grad.sum(axis=axis, keepdims=True))
        out._rig((x,), backward)
    return out


def _cross_entropy_composite(logits: Tensor, targets: np.ndarray,
                             reduction: str) -> Tensor:
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=-1)
    picked = gather_rows(log_probs.reshape(-1),
                         targets + np.arange(n) * logits.shape[-1])
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def _cross_entropy_fused(logits: Tensor, targets: np.ndarray,
                         reduction: str) -> Tensor:
    """Single-node log-softmax + NLL: no (N, C) log-prob tensor survives.

    Forward reproduces the composite bit-for-bit; the backward is the
    closed form ``(softmax - onehot) · upstream`` computed in one shot.
    """
    x = logits.data
    n = x.shape[0]
    rows = np.arange(n)
    shifted = x - x.max(axis=-1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    picked = shifted[rows, targets] - log_norm[:, 0]
    loss_data = -picked
    if reduction == "mean":
        out_data = loss_data.mean()
    elif reduction == "sum":
        out_data = loss_data.sum()
    else:
        out_data = loss_data
    out = Tensor(out_data, requires_grad=_needs_grad(logits))
    if out.requires_grad:
        soft = np.exp(shifted - log_norm)
        def backward(grad: np.ndarray) -> None:
            local = soft.copy()
            local[rows, targets] -= 1.0
            if reduction == "mean":
                logits.accumulate_grad(local * (grad / n))
            elif reduction == "sum":
                logits.accumulate_grad(local * grad)
            else:
                logits.accumulate_grad(local * grad.reshape(-1, 1))
        out._rig((logits,), backward)
    return out


@profiled
def cross_entropy(logits: Tensor, targets: np.ndarray,
                  reduction: str = "mean") -> Tensor:
    """Multi-class cross entropy on integer targets ``(N,)``.

    Dispatches to a single fused autograd node when
    :func:`fused_kernels_enabled` (same values, one node, no ``(N, C)``
    intermediate); otherwise composes ``log_softmax`` + gather.
    """
    logits = ensure_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if _flags.fused_enabled() and logits.ndim == 2:
        return _cross_entropy_fused(logits, targets, reduction)
    return _cross_entropy_composite(logits, targets, reduction)


@profiled
def binary_cross_entropy_with_logits(logits: Tensor, targets: np.ndarray,
                                     reduction: str = "mean") -> Tensor:
    """Stable BCE: ``max(x,0) - x*z + log1p(exp(-|x|))`` with fused backward."""
    logits = ensure_tensor(logits)
    x = logits.data
    z = np.asarray(targets, dtype=x.dtype)
    loss_data = np.maximum(x, 0.0) - x * z + np.log1p(np.exp(-np.abs(x)))
    if reduction == "mean":
        out_data = loss_data.mean()
    elif reduction == "sum":
        out_data = loss_data.sum()
    else:
        out_data = loss_data
    out = Tensor(out_data, requires_grad=_needs_grad(logits))
    if out.requires_grad:
        sig = 0.5 * (1.0 + np.tanh(0.5 * x))
        def backward(grad: np.ndarray) -> None:
            local = sig - z
            if reduction == "mean":
                logits.accumulate_grad(grad * local / x.size)
            elif reduction == "sum":
                logits.accumulate_grad(grad * local)
            else:
                logits.accumulate_grad(grad * local)
        out._rig((logits,), backward)
    return out


@profiled
def nll_loss(log_probs: Tensor, targets: np.ndarray,
             reduction: str = "mean") -> Tensor:
    """Negative log likelihood on precomputed log-probabilities."""
    log_probs = ensure_tensor(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = gather_rows(log_probs.reshape(-1),
                         targets + np.arange(n) * log_probs.shape[-1])
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


# ----------------------------------------------------------------------
# Linear algebra fusions
# ----------------------------------------------------------------------
@profiled
def addmm(x: Tensor, weight: Tensor, bias: Tensor) -> Tensor:
    """Fused affine map ``x @ weight + bias`` as one autograd node.

    The composite builds two nodes and materializes the pre-bias matmul
    result; the fused path writes the bias into the matmul output in
    place.  Falls back to the composite when the fused kernels are off or
    ``x`` is not 2-D (values match either way).
    """
    x, weight, bias = ensure_tensor(x), ensure_tensor(weight), ensure_tensor(bias)
    if not _flags.fused_enabled() or x.ndim != 2:
        return x @ weight + bias
    out_data = np.matmul(x.data, weight.data)
    out_data += bias.data
    out = Tensor(out_data, requires_grad=_needs_grad(x, weight, bias))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x.accumulate_grad(np.matmul(grad, weight.data.T))
            if weight.requires_grad:
                weight.accumulate_grad(np.matmul(x.data.T, grad))
            if bias.requires_grad:
                bias.accumulate_grad(grad.sum(axis=0))
        out._rig((x, weight, bias), backward)
    return out


# ----------------------------------------------------------------------
# Regularisation
# ----------------------------------------------------------------------
@profiled
def dropout(x: Tensor, p: float, training: bool = True) -> Tensor:
    """Inverted dropout; identity when ``training`` is False or ``p == 0``."""
    if not training or p <= 0.0:
        return ensure_tensor(x)
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    x = ensure_tensor(x)
    mask = (random_values(x.shape, dtype=x.data.dtype) >= p).astype(
        x.data.dtype) / (1.0 - p)
    out = Tensor(x.data * mask, requires_grad=_needs_grad(x))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            x.accumulate_grad(grad * mask)
        out._rig((x,), backward)
    return out


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalize rows to unit L2 norm (composite, differentiable)."""
    x = ensure_tensor(x)
    squared = (x * x).sum(axis=axis, keepdims=True)
    norm = (squared + eps) ** 0.5
    return x / norm


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor,
               eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last axis (composite)."""
    x = ensure_tensor(x)
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    inv_std = (var + eps) ** -0.5
    return centered * inv_std * weight + bias


# ----------------------------------------------------------------------
# Segment operations (per-destination-node softmax etc.)
# ----------------------------------------------------------------------
def segment_sum(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Alias of :func:`scatter_add` under its conventional name."""
    return scatter_add(x, segment_ids, num_segments)


def segment_mean(x: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments yield zeros."""
    x = ensure_tensor(x)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    totals = scatter_add(x, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(x.data.dtype)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (totals.ndim - 1))
    return totals * (1.0 / counts)


def segment_max_data(x: np.ndarray, segment_ids: np.ndarray,
                     num_segments: int) -> np.ndarray:
    """Per-segment maximum of raw data (no gradient; used as a stability shift)."""
    out = np.full((num_segments,) + x.shape[1:], -np.inf, dtype=x.dtype)
    np.maximum.at(out, segment_ids, x)
    return out


def _segment_softmax_composite(scores: Tensor, segment_ids: np.ndarray,
                               num_segments: int) -> Tensor:
    shift = segment_max_data(scores.data, segment_ids, num_segments)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    from .tensor import exp as t_exp  # local import avoids a cycle at module load

    shifted = scores - Tensor(shift[segment_ids])
    exp_scores = t_exp(shifted)
    denom = scatter_add(exp_scores, segment_ids, num_segments)
    denom_per_edge = gather_rows(denom, segment_ids)
    return exp_scores / (denom_per_edge + 1e-16)


def _segment_softmax_fused(scores: Tensor, segment_ids: np.ndarray,
                           num_segments: int) -> Tensor:
    """One autograd node for the whole per-segment softmax.

    The composite records five nodes (sub, exp, scatter, gather, div) and
    keeps every intermediate alive until backward.  The fused backward is
    the closed form ``dL/ds_e = α_e (g_e − Σ_{e'∈seg(e)} α_{e'} g_{e'})``,
    one scatter + one gather.
    """
    shift = segment_max_data(scores.data, segment_ids, num_segments)
    shift = np.where(np.isfinite(shift), shift, 0.0)
    exp_scores = np.exp(scores.data - shift[segment_ids])
    denom = np.zeros((num_segments,) + exp_scores.shape[1:],
                     dtype=exp_scores.dtype)
    scatter_accumulate(denom, segment_ids, exp_scores)
    out_data = exp_scores / (denom[segment_ids] + 1e-16)
    out = Tensor(out_data, requires_grad=_needs_grad(scores))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            weighted = out_data * grad
            seg_dot = np.zeros((num_segments,) + weighted.shape[1:],
                               dtype=weighted.dtype)
            scatter_accumulate(seg_dot, segment_ids, weighted)
            scores.accumulate_grad(weighted - out_data * seg_dot[segment_ids])
        out._rig((scores,), backward)
    return out


@profiled
def segment_softmax(scores: Tensor, segment_ids: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax of ``scores`` within segments (e.g. edges grouped by dst node).

    The per-segment max shift is detached, which leaves gradients
    unchanged because softmax is shift invariant within each segment.
    With the fused kernels enabled this is a single autograd node;
    otherwise a composite of five primitives (identical values).
    """
    scores = ensure_tensor(scores)
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if _flags.fused_enabled():
        return _segment_softmax_fused(scores, segment_ids, num_segments)
    return _segment_softmax_composite(scores, segment_ids, num_segments)


@profiled
def head_dot(x: Tensor, vec: Tensor) -> Tensor:
    """Fused per-head dot product ``(x * vec).sum(axis=-1)``.

    ``x`` is ``(N, H, d)``, ``vec`` ``(H, d)`` → ``(N, H)`` — the
    attention-score pattern of GAT/SimpleHGN.  The composite materializes
    the ``(N, H, d)`` product twice (forward and the sum's broadcast
    backward); the fused node contracts directly via einsum and its
    backward allocates only the two true gradients.  Falls back to the
    composite when the fused kernels are off (identical values).
    """
    x, vec = ensure_tensor(x), ensure_tensor(vec)
    if not _flags.fused_enabled() or x.ndim != 3 or vec.ndim != 2:
        return (x * vec).sum(axis=-1)
    out = Tensor(np.einsum("nhd,hd->nh", x.data, vec.data),
                 requires_grad=_needs_grad(x, vec))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if x.requires_grad:
                x.accumulate_grad(grad[:, :, None] * vec.data)
            if vec.requires_grad:
                vec.accumulate_grad(np.einsum("nhd,nh->hd", x.data, grad))
        out._rig((x, vec), backward)
    return out


@profiled
def attention_aggregate(alpha: Tensor, x: Tensor, src: np.ndarray,
                        dst: np.ndarray, num_nodes: int) -> Tensor:
    """Fused attention-weighted aggregation (one node):

    ``out[v, h] = Σ_{e: dst_e = v} alpha[e, h] · x[src_e, h]``

    with ``alpha`` of shape ``(E, H)`` and ``x`` of shape ``(N, H, d)``.
    Replaces the gather → broadcast-multiply → scatter composite used by
    GAT-style layers, which materializes an ``(E, H, d)`` message tensor
    twice (forward and backward).  The ``(E, H, d)`` product is still
    formed once here, but no graph nodes or duplicate buffers survive it.
    """
    alpha, x = ensure_tensor(alpha), ensure_tensor(x)
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if alpha.ndim != 2 or x.ndim != 3 or alpha.shape[1] != x.shape[1]:
        raise ValueError(
            f"attention_aggregate needs alpha (E, H) and x (N, H, d); got "
            f"{alpha.shape} and {x.shape}")
    messages = x.data[src] * alpha.data[:, :, None]
    out_data = np.zeros((num_nodes,) + x.data.shape[1:], dtype=x.data.dtype)
    scatter_accumulate(out_data, dst, messages)
    out = Tensor(out_data, requires_grad=_needs_grad(alpha, x))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            grad_per_edge = grad[dst]                       # (E, H, d)
            if alpha.requires_grad:
                alpha.accumulate_grad(
                    np.einsum("ehd,ehd->eh", grad_per_edge, x.data[src]))
            if x.requires_grad:
                gx = np.zeros_like(x.data)
                scatter_accumulate(gx, src, grad_per_edge * alpha.data[:, :, None])
                x.accumulate_grad(gx)
        out._rig((alpha, x), backward)
    return out


def segment_weighted_mean(values: Tensor, weights: Tensor,
                          segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """``sum_i w_i v_i / sum_i w_i`` per segment (both differentiable)."""
    weighted = values * weights
    num = scatter_add(weighted, segment_ids, num_segments)
    den = scatter_add(weights, segment_ids, num_segments)
    return num / (den + 1e-16)


# ----------------------------------------------------------------------
# Embeddings
# ----------------------------------------------------------------------
def embedding(table: Tensor, index: np.ndarray) -> Tensor:
    """Look up rows of an embedding ``table`` (gradient scatters back)."""
    return gather_rows(table, index)


def one_hot(index: np.ndarray, num_classes: int) -> np.ndarray:
    """Dense one-hot encoding as a plain array (constant, no gradient)."""
    from .dtype import get_default_dtype

    index = np.asarray(index, dtype=np.int64)
    out = np.zeros((index.shape[0], num_classes), dtype=get_default_dtype())
    out[np.arange(index.shape[0]), index] = 1.0
    return out


__all__ = [
    "softmax",
    "log_softmax",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "nll_loss",
    "addmm",
    "dropout",
    "l2_normalize",
    "layer_norm",
    "segment_sum",
    "segment_mean",
    "segment_max_data",
    "segment_softmax",
    "segment_weighted_mean",
    "attention_aggregate",
    "head_dot",
    "embedding",
    "one_hot",
    "fused_kernels",
    "fused_kernels_enabled",
    "set_fused_kernels",
]
