"""Central random-number generator for the tensor package.

A single, reseedable ``numpy.random.Generator`` backs stochastic layers
(dropout, negative sampling, random walks) so experiments are reproducible
through :func:`repro.training.seed.set_seed`.
"""

from __future__ import annotations

import numpy as np

_RNG = np.random.default_rng(0)


def get_rng() -> np.random.Generator:
    """Return the process-wide generator used by stochastic tensor ops."""
    return _RNG


def manual_seed(seed: int) -> None:
    """Reseed the process-wide generator."""
    global _RNG
    _RNG = np.random.default_rng(seed)


__all__ = ["get_rng", "manual_seed"]
