"""Central random-number generator for the tensor package.

A single, reseedable ``numpy.random.Generator`` backs stochastic layers
(dropout, negative sampling, random walks) so experiments are reproducible
through :func:`repro.training.seed.set_seed`.
"""

from __future__ import annotations

import numpy as np

_RNG = np.random.default_rng(0)


def get_rng() -> np.random.Generator:
    """Return the process-wide generator used by stochastic tensor ops."""
    return _RNG


def manual_seed(seed: int) -> None:
    """Reseed the process-wide generator."""
    global _RNG
    _RNG = np.random.default_rng(seed)


def random_values(shape, dtype=None) -> np.ndarray:
    """Uniform ``[0, 1)`` samples in the requested (or engine default) dtype.

    ``numpy.random.Generator`` draws float32 natively — half the bits and
    half the memory traffic of a float64 draw — so hot stochastic ops
    (dropout masks) should come through here rather than ``get_rng()``
    directly.  float64 draws are bit-identical to ``get_rng().random``.
    """
    if dtype is None:
        from .dtype import get_default_dtype
        dtype = get_default_dtype()
    dtype = np.dtype(dtype)
    if dtype == np.dtype(np.float32):
        return _RNG.random(shape, dtype=np.float32)
    return _RNG.random(shape)


__all__ = ["get_rng", "manual_seed", "random_values"]
