"""Weight initialization schemes (Glorot/Xavier, Kaiming/He, basics)."""

from __future__ import annotations

import math

import numpy as np

from .dtype import get_default_dtype
from .random import get_rng


def _fan_in_out(shape) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initializer needs at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[0] * receptive
    fan_out = shape[1] * receptive
    return fan_in, fan_out


def _cast(values: np.ndarray) -> np.ndarray:
    """Cast RNG draws (always float64) to the engine default dtype."""
    return values.astype(get_default_dtype(), copy=False)


def zeros(shape) -> np.ndarray:
    """All-zeros array of ``shape`` in the engine default dtype."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape) -> np.ndarray:
    """All-ones array of ``shape``."""
    return np.ones(shape, dtype=get_default_dtype())


def constant(shape, value: float) -> np.ndarray:
    """Array of ``shape`` filled with ``value``."""
    return np.full(shape, value, dtype=get_default_dtype())


def uniform(shape, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Uniform samples in ``[low, high)`` from the engine RNG."""
    return _cast(get_rng().uniform(low, high, size=shape))


def normal(shape, mean: float = 0.0, std: float = 0.01) -> np.ndarray:
    """Gaussian samples ``N(mean, std²)`` from the engine RNG."""
    return _cast(get_rng().normal(mean, std, size=shape))


def xavier_uniform(shape, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: ``U(±gain·sqrt(6/(fan_in+fan_out)))``."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return _cast(get_rng().uniform(-bound, bound, size=shape))


def xavier_normal(shape, gain: float = 1.0) -> np.ndarray:
    """Glorot normal: ``N(0, gain²·2/(fan_in+fan_out))``."""
    fan_in, fan_out = _fan_in_out(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return _cast(get_rng().normal(0.0, std, size=shape))


def kaiming_uniform(shape, negative_slope: float = 0.0) -> np.ndarray:
    """He uniform for (leaky-)ReLU fan-in scaling."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope ** 2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return _cast(get_rng().uniform(-bound, bound, size=shape))


def kaiming_normal(shape, negative_slope: float = 0.0) -> np.ndarray:
    """He normal for (leaky-)ReLU fan-in scaling."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope ** 2))
    std = gain / math.sqrt(fan_in)
    return _cast(get_rng().normal(0.0, std, size=shape))


__all__ = [
    "zeros",
    "ones",
    "constant",
    "uniform",
    "normal",
    "xavier_uniform",
    "xavier_normal",
    "kaiming_uniform",
    "kaiming_normal",
]
