"""Reverse-mode automatic differentiation over numpy arrays.

This module is the substrate that replaces PyTorch's autograd in the AutoAC
reproduction.  A :class:`Tensor` wraps a ``numpy.ndarray`` and records, for
every differentiable operation, the parent tensors and a backward closure
that distributes the incoming gradient.  Calling :meth:`Tensor.backward` on a
scalar output walks the recorded graph in reverse topological order and
accumulates gradients into every tensor that requires them.

The engine supports broadcasting (gradients are reduced back to the original
shapes), fancy integer indexing (used heavily by the message-passing GNNs),
and higher-rank ``matmul``.  Arithmetic runs in the engine default dtype
(:mod:`.dtype`): float64 by default so finite-difference gradient checks
are tight, float32 under the fast runtime profile.

After :meth:`Tensor.backward` the recorded graph is *freed* by default
(PyTorch semantics): non-leaf nodes drop their gradients, parents and
backward closures so epoch-sized graphs become collectible immediately.
Pass ``retain_graph=True`` to keep the graph for a second backward.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as _sp

from . import _flags
from ._profile import profiled
from .dtype import get_default_dtype

Arrayable = Union["Tensor", np.ndarray, float, int, list, tuple]

_GRAD_ENABLED = True

#: sentinel installed in place of a backward closure once a graph has been
#: freed, so a second backward raises instead of silently dropping grads
_FREED = object()


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd graph."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextlib.contextmanager
def enable_grad():
    """Context manager that re-enables graph recording inside ``no_grad``."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(data: Arrayable, dtype=None) -> np.ndarray:
    if dtype is None:
        dtype = get_default_dtype()
    if isinstance(data, np.ndarray):
        if data.dtype != dtype:
            return data.astype(dtype)
        return data
    return np.asarray(data, dtype=dtype)


def scatter_accumulate(out: np.ndarray, index, grad: np.ndarray) -> None:
    """``out[index] += grad`` accumulating duplicates, in place.

    The reference implementation is ``np.add.at`` — correct for every
    index type but unbuffered and therefore slow.  Under the fused
    kernels (:mod:`._flags`), 1-D non-negative integer-array indices take
    a 5–6× faster route: per-column ``np.bincount`` for narrow
    gradients, a CSR-transpose matmul for wide ones.  The fast paths
    accumulate in a different float order, so they stay gated — the
    float64 reference profile keeps ``np.add.at`` bit-for-bit.
    """
    if (_flags.fused_enabled() and isinstance(index, np.ndarray)
            and index.ndim == 1 and np.issubdtype(index.dtype, np.integer)
            and grad.shape == (index.shape[0],) + out.shape[1:]
            and (index.size == 0 or index.min() >= 0)):
        n = out.shape[0]
        if grad.ndim == 1:
            out += np.bincount(index, weights=grad,
                               minlength=n).astype(out.dtype, copy=False)
            return
        flat = grad.reshape(grad.shape[0], -1)
        cols = flat.shape[1]
        if cols <= 8:
            acc = np.empty((n, cols), dtype=np.float64)
            for c in range(cols):
                acc[:, c] = np.bincount(index, weights=flat[:, c],
                                        minlength=n)
            out += acc.reshape(out.shape).astype(out.dtype, copy=False)
        else:
            pattern = _sp.csr_matrix(
                (np.ones(index.shape[0], dtype=flat.dtype), index,
                 np.arange(index.shape[0] + 1)),
                shape=(index.shape[0], n))
            out += (pattern.T @ flat).reshape(out.shape)
        return
    np.add.at(out, index, grad)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting may have (a) prepended dimensions and (b) stretched
    singleton dimensions; both are undone by summation.
    """
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    stretched = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn",
                 "name", "__weakref__")

    def __init__(
        self,
        data: Arrayable,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents: Tuple["Tensor", ...] = ()
        self._backward_fn: Optional[Callable[[np.ndarray], None]] = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_tag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a view of the data severed from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Autograd plumbing
    # ------------------------------------------------------------------
    def _rig(
        self,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Attach parents/backward to ``self`` (the freshly produced output)."""
        self._parents = parents
        self._backward_fn = backward_fn
        return self

    def accumulate_grad(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: Optional[np.ndarray] = None,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (the tensor must be scalar in that case,
        mirroring PyTorch's behaviour).  Unless ``retain_graph`` is True
        the recorded graph is freed afterwards: non-leaf nodes release
        their ``.grad``, parents and backward closures, so intermediates
        of epoch-sized graphs are garbage-collectible immediately.  A
        second backward through a freed graph raises ``RuntimeError``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, dtype=self.data.dtype)

        order = self._topological_order()
        self.accumulate_grad(grad)
        for node in reversed(order):
            backward_fn = node._backward_fn
            if backward_fn is _FREED:
                raise RuntimeError(
                    "backward through a graph that was already freed; pass "
                    "retain_graph=True to the first backward (or recompute "
                    "the forward) to backpropagate twice")
            if backward_fn is not None and node.grad is not None:
                backward_fn(node.grad)
        # Non-leaf gradients are working buffers of this pass: always
        # release them (leaves keep theirs), so a second backward with
        # retain_graph accumulates correctly into the leaves alone.
        for node in order:
            if node._backward_fn is not None:
                node.grad = None
                if not retain_graph:  # free the graph itself too
                    node._parents = ()
                    node._backward_fn = _FREED

    def _topological_order(self) -> list:
        order: list = []
        visited: set = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))
        return order

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Arrayable) -> "Tensor":
        return add(self, other)

    def __radd__(self, other: Arrayable) -> "Tensor":
        return add(other, self)

    def __sub__(self, other: Arrayable) -> "Tensor":
        return sub(self, other)

    def __rsub__(self, other: Arrayable) -> "Tensor":
        return sub(other, self)

    def __mul__(self, other: Arrayable) -> "Tensor":
        return mul(self, other)

    def __rmul__(self, other: Arrayable) -> "Tensor":
        return mul(other, self)

    def __truediv__(self, other: Arrayable) -> "Tensor":
        return div(self, other)

    def __rtruediv__(self, other: Arrayable) -> "Tensor":
        return div(other, self)

    def __neg__(self) -> "Tensor":
        return neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return power(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        return getitem(self, index)

    # Reductions / shaping (thin wrappers; implementations below)
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return tensor_max(self, axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return neg(tensor_max(neg(self), axis=axis, keepdims=keepdims))

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return reshape(self, shape)

    def transpose(self, axes: Optional[Sequence[int]] = None) -> "Tensor":
        return transpose(self, axes)

    def flatten(self) -> "Tensor":
        return reshape(self, (-1,))

    def squeeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        if shape[axis] != 1:
            raise ValueError(f"cannot squeeze axis {axis} of shape {self.shape}")
        del shape[axis]
        return reshape(self, tuple(shape))

    def unsqueeze(self, axis: int) -> "Tensor":
        shape = list(self.shape)
        axis = axis if axis >= 0 else axis + len(shape) + 1
        shape.insert(axis, 1)
        return reshape(self, tuple(shape))


def ensure_tensor(value: Arrayable) -> Tensor:
    """Coerce ``value`` into a :class:`Tensor` (no-op when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def _needs_grad(*tensors: Tensor) -> bool:
    return _GRAD_ENABLED and any(t.requires_grad for t in tensors)


# ----------------------------------------------------------------------
# Elementwise binary operations
# ----------------------------------------------------------------------
@profiled
def add(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = Tensor(a.data + b.data, requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a.accumulate_grad(unbroadcast(grad, a.shape))
            if b.requires_grad:
                b.accumulate_grad(unbroadcast(grad, b.shape))
        out._rig((a, b), backward)
    return out


@profiled
def sub(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = Tensor(a.data - b.data, requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a.accumulate_grad(unbroadcast(grad, a.shape))
            if b.requires_grad:
                b.accumulate_grad(unbroadcast(-grad, b.shape))
        out._rig((a, b), backward)
    return out


@profiled
def mul(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = Tensor(a.data * b.data, requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a.accumulate_grad(unbroadcast(grad * b.data, a.shape))
            if b.requires_grad:
                b.accumulate_grad(unbroadcast(grad * a.data, b.shape))
        out._rig((a, b), backward)
    return out


@profiled
def div(a: Arrayable, b: Arrayable) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = Tensor(a.data / b.data, requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a.accumulate_grad(unbroadcast(grad / b.data, a.shape))
            if b.requires_grad:
                b.accumulate_grad(unbroadcast(-grad * a.data / (b.data ** 2), b.shape))
        out._rig((a, b), backward)
    return out


@profiled
def neg(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(-a.data, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(-grad)
        out._rig((a,), backward)
    return out


@profiled
def power(a: Arrayable, exponent: float) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(a.data ** exponent, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * exponent * (a.data ** (exponent - 1)))
        out._rig((a,), backward)
    return out


@profiled
def maximum(a: Arrayable, b: Arrayable) -> Tensor:
    """Elementwise maximum; on ties the gradient flows to the first operand."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = Tensor(np.maximum(a.data, b.data), requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        take_a = a.data >= b.data
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a.accumulate_grad(unbroadcast(grad * take_a, a.shape))
            if b.requires_grad:
                b.accumulate_grad(unbroadcast(grad * ~take_a, b.shape))
        out._rig((a, b), backward)
    return out


# ----------------------------------------------------------------------
# Elementwise unary operations
# ----------------------------------------------------------------------
@profiled
def exp(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.exp(a.data)
    out = Tensor(out_data, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * out_data)
        out._rig((a,), backward)
    return out


@profiled
def log(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(np.log(a.data), requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad / a.data)
        out._rig((a,), backward)
    return out


@profiled
def sqrt(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.sqrt(a.data)
    out = Tensor(out_data, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * 0.5 / out_data)
        out._rig((a,), backward)
    return out


@profiled
def cos(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(np.cos(a.data), requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(-grad * np.sin(a.data))
        out._rig((a,), backward)
    return out


@profiled
def sin(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(np.sin(a.data), requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * np.cos(a.data))
        out._rig((a,), backward)
    return out


@profiled
def tanh(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out_data = np.tanh(a.data)
    out = Tensor(out_data, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * (1.0 - out_data ** 2))
        out._rig((a,), backward)
    return out


@profiled
def sigmoid(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out_data = 0.5 * (1.0 + np.tanh(0.5 * a.data))  # numerically stable
    out = Tensor(out_data, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * out_data * (1.0 - out_data))
        out._rig((a,), backward)
    return out


@profiled
def relu(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(np.maximum(a.data, 0.0), requires_grad=_needs_grad(a))
    if out.requires_grad:
        mask = a.data > 0
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * mask)
        out._rig((a,), backward)
    return out


@profiled
def leaky_relu(a: Arrayable, negative_slope: float = 0.01) -> Tensor:
    a = ensure_tensor(a)
    positive = a.data > 0
    out = Tensor(np.where(positive, a.data, negative_slope * a.data),
                 requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * np.where(positive, 1.0, negative_slope))
        out._rig((a,), backward)
    return out


@profiled
def elu(a: Arrayable, alpha: float = 1.0) -> Tensor:
    a = ensure_tensor(a)
    positive = a.data > 0
    exp_part = alpha * (np.exp(np.minimum(a.data, 0.0)) - 1.0)
    out = Tensor(np.where(positive, a.data, exp_part), requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * np.where(positive, 1.0, exp_part + alpha))
        out._rig((a,), backward)
    return out


@profiled
def absolute(a: Arrayable) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(np.abs(a.data), requires_grad=_needs_grad(a))
    if out.requires_grad:
        sign = np.sign(a.data)
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * sign)
        out._rig((a,), backward)
    return out


@profiled
def clip(a: Arrayable, low: float, high: float) -> Tensor:
    """Clamp values; gradient is passed through only inside ``[low, high]``."""
    a = ensure_tensor(a)
    out = Tensor(np.clip(a.data, low, high), requires_grad=_needs_grad(a))
    if out.requires_grad:
        inside = (a.data >= low) & (a.data <= high)
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad * inside)
        out._rig((a,), backward)
    return out


# ----------------------------------------------------------------------
# Matrix multiplication
# ----------------------------------------------------------------------
@profiled
def matmul(a: Tensor, b: Tensor) -> Tensor:
    a, b = ensure_tensor(a), ensure_tensor(b)
    out = Tensor(np.matmul(a.data, b.data), requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                if b.data.ndim == 1:
                    grad_a = np.multiply.outer(grad, b.data) if a.data.ndim > 1 else grad * b.data
                    if a.data.ndim == 1:
                        grad_a = grad * b.data
                else:
                    grad_b_t = np.swapaxes(b.data, -1, -2)
                    if a.data.ndim == 1:
                        grad_a = np.matmul(np.expand_dims(grad, -2), grad_b_t).squeeze(-2)
                    else:
                        grad_a = np.matmul(grad, grad_b_t)
                a.accumulate_grad(unbroadcast(grad_a, a.shape))
            if b.requires_grad:
                if a.data.ndim == 1:
                    grad_b = np.multiply.outer(a.data, grad) if b.data.ndim > 1 else grad * a.data
                    if b.data.ndim == 1:
                        grad_b = grad * a.data
                else:
                    grad_a_t = np.swapaxes(a.data, -1, -2)
                    if b.data.ndim == 1:
                        grad_b = np.matmul(grad_a_t, np.expand_dims(grad, -1)).squeeze(-1)
                    else:
                        grad_b = np.matmul(grad_a_t, grad)
                b.accumulate_grad(unbroadcast(grad_b, b.shape))
        out._rig((a, b), backward)
    return out


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------
@profiled
def tensor_sum(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(a.data.sum(axis=axis, keepdims=keepdims), requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(axes):
                    g = np.expand_dims(g, ax)
            a.accumulate_grad(np.broadcast_to(g, a.shape).copy())
        out._rig((a,), backward)
    return out


@profiled
def tensor_mean(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(a.data.mean(axis=axis, keepdims=keepdims), requires_grad=_needs_grad(a))
    if out.requires_grad:
        if axis is None:
            count = a.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([a.shape[ax] for ax in axes]))
        def backward(grad: np.ndarray) -> None:
            g = grad / count
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(axes):
                    g = np.expand_dims(g, ax)
            a.accumulate_grad(np.broadcast_to(g, a.shape).copy())
        out._rig((a,), backward)
    return out


@profiled
def tensor_max(a: Tensor, axis=None, keepdims: bool = False) -> Tensor:
    a = ensure_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    out = Tensor(out_data, requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            g = grad
            o = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(axes):
                    g = np.expand_dims(g, ax)
                    o = np.expand_dims(o, ax)
            mask = a.data == o
            # split gradient equally across ties so the check is deterministic
            counts = mask.sum(axis=axis if axis is not None else None, keepdims=True)
            a.accumulate_grad(np.broadcast_to(g, a.shape) * mask / counts)
        out._rig((a,), backward)
    return out


# ----------------------------------------------------------------------
# Shaping
# ----------------------------------------------------------------------
@profiled
def reshape(a: Tensor, shape: Tuple[int, ...]) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(a.data.reshape(shape), requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(grad.reshape(a.shape))
        out._rig((a,), backward)
    return out


@profiled
def transpose(a: Tensor, axes: Optional[Sequence[int]] = None) -> Tensor:
    a = ensure_tensor(a)
    out = Tensor(np.transpose(a.data, axes), requires_grad=_needs_grad(a))
    if out.requires_grad:
        if axes is None:
            inverse = None
        else:
            inverse = np.argsort(axes)
        def backward(grad: np.ndarray) -> None:
            a.accumulate_grad(np.transpose(grad, inverse))
        out._rig((a,), backward)
    return out


@profiled
def getitem(a: Tensor, index) -> Tensor:
    """Differentiable indexing supporting slices and integer arrays."""
    a = ensure_tensor(a)
    out = Tensor(a.data[index], requires_grad=_needs_grad(a))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(a.data)
            scatter_accumulate(full, index, grad)
            a.accumulate_grad(full)
        out._rig((a,), backward)
    return out


@profiled
def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out = Tensor(np.concatenate([t.data for t in tensors], axis=axis),
                 requires_grad=_needs_grad(*tensors))
    if out.requires_grad:
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)
        def backward(grad: np.ndarray) -> None:
            for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if tensor.requires_grad:
                    slicer = [slice(None)] * grad.ndim
                    slicer[axis] = slice(start, stop)
                    tensor.accumulate_grad(grad[tuple(slicer)])
        out._rig(tuple(tensors), backward)
    return out


@profiled
def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    tensors = [ensure_tensor(t) for t in tensors]
    out = Tensor(np.stack([t.data for t in tensors], axis=axis),
                 requires_grad=_needs_grad(*tensors))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            pieces = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, pieces):
                if tensor.requires_grad:
                    tensor.accumulate_grad(np.squeeze(piece, axis=axis))
        out._rig(tuple(tensors), backward)
    return out


@profiled
def where(condition: np.ndarray, a: Arrayable, b: Arrayable) -> Tensor:
    """``np.where`` with gradients to both branches (condition is data)."""
    a, b = ensure_tensor(a), ensure_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out = Tensor(np.where(cond, a.data, b.data), requires_grad=_needs_grad(a, b))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a.accumulate_grad(unbroadcast(grad * cond, a.shape))
            if b.requires_grad:
                b.accumulate_grad(unbroadcast(grad * ~cond, b.shape))
        out._rig((a, b), backward)
    return out


# ----------------------------------------------------------------------
# Scatter / gather primitives (message passing workhorses)
# ----------------------------------------------------------------------
@profiled
def scatter_add(source: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``source`` into ``num_segments`` bins given by ``index``.

    ``source`` has shape ``(E, ...)``; the output has shape
    ``(num_segments, ...)``.  This is the adjoint of row gathering and the
    core aggregation primitive of every message-passing layer here.
    """
    source = ensure_tensor(source)
    index = np.asarray(index, dtype=np.int64)
    out_data = np.zeros((num_segments,) + source.shape[1:], dtype=source.data.dtype)
    scatter_accumulate(out_data, index, source.data)
    out = Tensor(out_data, requires_grad=_needs_grad(source))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            source.accumulate_grad(grad[index])
        out._rig((source,), backward)
    return out


def gather_rows(a: Tensor, index: np.ndarray) -> Tensor:
    """Row gather ``a[index]`` (alias of integer-array ``__getitem__``)."""
    return getitem(a, np.asarray(index, dtype=np.int64))


def repeat_rows(a: Tensor, repeats: int) -> Tensor:
    """Tile a ``(1, ...)`` tensor to ``(repeats, ...)`` differentiably."""
    index = np.zeros(repeats, dtype=np.int64)
    return gather_rows(a, index)


__all__ = [
    "Tensor",
    "ensure_tensor",
    "no_grad",
    "enable_grad",
    "is_grad_enabled",
    "unbroadcast",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "power",
    "maximum",
    "exp",
    "log",
    "sqrt",
    "cos",
    "sin",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "elu",
    "absolute",
    "clip",
    "matmul",
    "tensor_sum",
    "tensor_mean",
    "tensor_max",
    "reshape",
    "transpose",
    "getitem",
    "concat",
    "stack",
    "where",
    "scatter_add",
    "gather_rows",
    "repeat_rows",
]
