"""Floating-point dtype policy for the tensor engine.

The engine historically hard-coded ``np.float64`` everywhere so the
finite-difference gradient checks could be tight.  That remains the
default (the *reference* profile — existing results are bit-for-bit
unchanged), but every allocation now goes through this module so the
whole stack can be switched to ``float32`` (the *fast* profile): half the
memory traffic through BLAS and the CSR kernels, which is where most of
the search wall-time goes.

``set_default_dtype`` works both as a plain call and as a context
manager::

    set_default_dtype("float32")            # switch until further notice
    with set_default_dtype("float32"):      # scoped switch
        ...                                 # restores the previous dtype

Only ``float32`` and ``float64`` are supported: integer index arrays are
unaffected by the policy, and half precision is useless without hardware
support in numpy.
"""

from __future__ import annotations

from typing import Union

import numpy as np

DTypeLike = Union[str, type, np.dtype]

_SUPPORTED = (np.dtype(np.float32), np.dtype(np.float64))

# single-element list so the context manager can restore by reference
_DEFAULT = [np.dtype(np.float64)]


def resolve_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalize a dtype-like value to ``np.dtype``; reject non-floats."""
    resolved = np.dtype(dtype)
    if resolved not in _SUPPORTED:
        raise ValueError(
            f"unsupported default dtype {resolved}; expected one of "
            f"{[str(d) for d in _SUPPORTED]}")
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype every new floating-point tensor/array is created with."""
    return _DEFAULT[0]


class set_default_dtype:
    """Set the engine-wide default float dtype (callable or ``with`` block).

    The dtype switches immediately on construction; using the instance as
    a context manager restores the previous dtype on exit.
    """

    def __init__(self, dtype: DTypeLike) -> None:
        self.previous = _DEFAULT[0]
        _DEFAULT[0] = resolve_dtype(dtype)

    def __enter__(self) -> "set_default_dtype":
        return self

    def __exit__(self, *exc) -> None:
        _DEFAULT[0] = self.previous


def is_fast_dtype() -> bool:
    """True when the current default dtype is single precision."""
    return _DEFAULT[0] == np.dtype(np.float32)


__all__ = ["get_default_dtype", "set_default_dtype", "resolve_dtype",
           "is_fast_dtype"]
