"""Minimal ``nn.Module``-style containers for the autograd engine."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from . import init
from .functional import addmm as addmm_fn
from .functional import dropout as dropout_fn
from .functional import layer_norm as layer_norm_fn
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as a trainable model weight."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class providing parameter registration and train/eval modes."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        """Compute the module output; subclasses must override."""
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Every trainable :class:`Parameter` of this module tree."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth first."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant, depth first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        """Clear the gradients of every parameter in the tree."""
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set ``training`` on the whole tree (affects dropout et al.)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Switch the whole tree to inference mode."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of trainable scalars."""
        return sum(param.size for param in self.parameters())

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.data.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{param.data.shape} vs {state[name].shape}")
            param.data = state[name].copy()


class ModuleList(Module):
    """An indexable list of submodules."""

    def __init__(self, modules: Optional[Iterable[Module]] = None) -> None:
        super().__init__()
        self._items: List[Module] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)


class ModuleDict(Module):
    """A string-keyed mapping of submodules."""

    def __init__(self, modules: Optional[Dict[str, Module]] = None) -> None:
        super().__init__()
        for key, module in (modules or {}).items():
            self[key] = module

    def __setitem__(self, key: str, module: Module) -> None:
        self._modules[key] = module

    def __getitem__(self, key: str) -> Module:
        return self._modules[key]

    def __contains__(self, key: str) -> bool:
        return key in self._modules

    def keys(self):
        return self._modules.keys()

    def values(self):
        return self._modules.values()

    def items(self):
        return self._modules.items()


class Linear(Module):
    """Affine map ``y = x W + b`` with Xavier-uniform initialization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features)),
                                name="weight")
        self.bias = Parameter(init.zeros((out_features,)), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if self.bias is not None:
            # single fused node when the fused kernels are enabled;
            # addmm falls back to matmul + add otherwise
            return addmm_fn(x, self.weight, self.bias)
        return x @ self.weight

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Dropout(Module):
    """Inverted dropout; active only while ``self.training`` is True."""

    def __init__(self, p: float = 0.5) -> None:
        super().__init__()
        self.p = p

    def forward(self, x: Tensor) -> Tensor:
        return dropout_fn(x, self.p, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class LayerNorm(Module):
    """Layer normalization over the last axis with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((normalized_shape,)), name="weight")
        self.bias = Parameter(init.zeros((normalized_shape,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm_fn(x, self.weight, self.bias, eps=self.eps)


class Sequential(Module):
    """Chain of modules applied left to right."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._items: List[Module] = []
        for index, module in enumerate(modules):
            self._items.append(module)
            self._modules[str(index)] = module

    def forward(self, x: Tensor) -> Tensor:
        for module in self._items:
            x = module(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)


class Embedding(Module):
    """A learnable lookup table of shape ``(num_embeddings, dim)``."""

    def __init__(self, num_embeddings: int, dim: int) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(init.normal((num_embeddings, dim), std=0.1),
                                name="weight")

    def forward(self, index: np.ndarray) -> Tensor:
        from .functional import embedding
        return embedding(self.weight, index)


__all__ = [
    "Parameter",
    "Module",
    "ModuleList",
    "ModuleDict",
    "Linear",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Embedding",
]
