"""Finite-difference gradient checking for the autograd engine.

Used by the property-based test-suite to validate every primitive against
central differences.  Default tolerances are picked per dtype: float64
inputs get tight bounds; float32 inputs (the fast runtime profile) get
the classic relaxed PyTorch-style bounds, since both the analytic and the
numeric side lose ~half the mantissa.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .tensor import Tensor

#: per-dtype defaults for (eps, atol, rtol)
_TOLERANCES = {
    np.dtype(np.float64): (1e-6, 1e-5, 1e-4),
    np.dtype(np.float32): (1e-3, 1e-2, 1e-2),
}


def _default_tolerances(inputs: Sequence[Tensor]):
    """Pick (eps, atol, rtol) from the widest-spread input dtype.

    Any float32 input degrades the whole check to float32 tolerances.
    """
    dtypes = {tensor.data.dtype for tensor in inputs}
    if np.dtype(np.float32) in dtypes:
        return _TOLERANCES[np.dtype(np.float32)]
    return _TOLERANCES[np.dtype(np.float64)]


def numerical_gradient(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
                       index: int, eps: Optional[float] = None) -> np.ndarray:
    """Central-difference gradient of ``fn(*inputs).sum()`` w.r.t. one input.

    ``eps`` defaults per the *perturbed* input's dtype (float64: 1e-6,
    float32: 1e-3) — a 1e-6 step is below float32 spacing for values
    ≳ 1, where the perturbation would round away entirely.  Differences
    are accumulated in float64 regardless of the input dtype so the
    comparison error is dominated by the forward pass, not by the
    subtraction.
    """
    target = inputs[index]
    if eps is None:
        eps = _TOLERANCES.get(target.data.dtype,
                              _TOLERANCES[np.dtype(np.float64)])[0]
    grad = np.zeros(target.data.shape, dtype=np.float64)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def gradcheck(fn: Callable[..., Tensor], inputs: Sequence[Tensor],
              eps: Optional[float] = None, atol: Optional[float] = None,
              rtol: Optional[float] = None) -> bool:
    """Compare analytic and numeric gradients for every grad-requiring input.

    ``eps``/``atol``/``rtol`` default per input dtype (see module doc).
    Raises ``AssertionError`` with a diagnostic message on mismatch so
    failures in the test-suite are actionable.
    """
    default_eps, default_atol, default_rtol = _default_tolerances(inputs)
    eps = default_eps if eps is None else eps
    atol = default_atol if atol is None else atol
    rtol = default_rtol if rtol is None else rtol
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.sum().backward()
    for index, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        analytic = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        numeric = numerical_gradient(fn, inputs, index, eps=eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.max(np.abs(analytic - numeric))
            raise AssertionError(
                f"gradcheck failed for input {index}: max abs diff {worst:.3e}\n"
                f"analytic={analytic}\nnumeric={numeric}"
            )
    return True


__all__ = ["gradcheck", "numerical_gradient"]
