"""Sparse-matrix support for the autograd engine.

Heterogeneous GNNs multiply large, fixed adjacency matrices with dense
feature tensors.  The adjacency is data (never optimized), so we only need
the gradient with respect to the dense operand:

    ``y = A @ x``  →  ``dL/dx = A.T @ dL/dy``.

For attention models the per-edge coefficients *are* learned; those paths
use the edge-list primitives in :mod:`repro.tensor.functional` instead.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from .tensor import Tensor, ensure_tensor, is_grad_enabled


def spmm(matrix: sp.spmatrix, x: Tensor) -> Tensor:
    """Sparse ``matrix`` (constant) times dense ``x`` (differentiable)."""
    x = ensure_tensor(x)
    matrix = matrix.tocsr()
    out = Tensor(matrix @ x.data, requires_grad=is_grad_enabled() and x.requires_grad)
    if out.requires_grad:
        matrix_t = matrix.T.tocsr()
        def backward(grad: np.ndarray) -> None:
            x.accumulate_grad(matrix_t @ grad)
        out._rig((x,), backward)
    return out


def sparse_dense_matmul_data(matrix: sp.spmatrix, x: np.ndarray) -> np.ndarray:
    """Plain (non-differentiable) sparse × dense product."""
    return matrix.tocsr() @ x


__all__ = ["spmm", "sparse_dense_matmul_data"]
