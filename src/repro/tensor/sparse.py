"""Sparse-matrix support for the autograd engine.

Heterogeneous GNNs multiply large, fixed adjacency matrices with dense
feature tensors.  Storing those adjacencies densely is an O(N²) wall in
both memory and compute, so this module provides a first-class CSR type,
:class:`SparseTensor`, plus two autograd-aware products:

* :func:`spmm` — ``y = A @ x`` where ``A`` is *data* (never optimized).
  Only the dense operand is differentiable:
  ``dL/dx = A.T @ dL/dy``.
* :func:`weighted_spmm` — ``y = A(w) @ x`` where the sparsity *pattern* of
  ``A`` is fixed but its per-edge values ``w`` are a learnable
  :class:`~repro.tensor.tensor.Tensor` (attention coefficients).  Both
  operands are differentiable:
  ``dL/dx = A(w).T @ dL/dy`` and ``dL/dw_e = <dL/dy[row_e], x[col_e]>``.

Differentiability contract of :class:`SparseTensor` itself: the structure
(``indptr``/``indices``) and stored values are plain numpy data and never
carry gradients.  Gradients only flow through the dense operands of
:func:`spmm` / :meth:`SparseTensor.spmm` and, for :func:`weighted_spmm`,
through the externally supplied value tensor.  Normalization helpers
(:meth:`SparseTensor.row_normalize`, :meth:`SparseTensor.sym_normalize`)
are data-level transforms that return new constants.

The CSR kernels themselves are delegated to :mod:`scipy.sparse`, whose
compiled matmul is the fastest primitive available in this environment.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ._profile import profiled
from .dtype import get_default_dtype
from .tensor import Tensor, ensure_tensor, is_grad_enabled

SparseLike = Union["SparseTensor", sp.spmatrix]


class SparseTensor:
    """An immutable CSR matrix used as constant graph data.

    Parameters
    ----------
    indptr, indices, values:
        Standard CSR arrays.  ``values`` may contain duplicate
        ``(row, col)`` entries (multigraph edges); products sum them,
        which is exactly the aggregation semantics message passing needs.
    shape:
        ``(rows, cols)``.

    Instances are treated as immutable: every transform
    (:meth:`row_normalize`, :meth:`restrict_columns`, ...) returns a new
    ``SparseTensor``.  The transpose is computed lazily and cached because
    every backward pass of :func:`spmm` needs it.
    """

    __slots__ = ("indptr", "indices", "values", "shape",
                 "_transpose", "_row_of_nnz")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 values: np.ndarray, shape: Tuple[int, int]) -> None:
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values, dtype=get_default_dtype())
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError(
                f"indptr length {self.indptr.shape[0]} does not match "
                f"{self.shape[0]} rows")
        if self.indices.shape[0] != self.values.shape[0]:
            raise ValueError("indices and values must have equal length")
        self._transpose: Optional["SparseTensor"] = None
        self._row_of_nnz: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_scipy(cls, matrix: sp.spmatrix) -> "SparseTensor":
        """Wrap any scipy sparse matrix (converted to CSR)."""
        csr = matrix.tocsr()
        return cls(csr.indptr, csr.indices, csr.data, csr.shape)

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseTensor":
        """Compress a dense matrix, dropping exact zeros."""
        dense = np.asarray(dense, dtype=get_default_dtype())
        if dense.ndim != 2:
            raise ValueError("from_dense expects a 2-D array")
        return cls.from_scipy(sp.csr_matrix(dense))

    @classmethod
    def from_edges(cls, rows: np.ndarray, cols: np.ndarray,
                   shape: Tuple[int, int],
                   values: Optional[np.ndarray] = None) -> "SparseTensor":
        """Build from an edge list; duplicate edges are *kept* (they sum)."""
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if values is None:
            values = np.ones(rows.shape[0], dtype=get_default_dtype())
        order = np.argsort(rows, kind="stable")
        counts = np.bincount(rows, minlength=shape[0])
        indptr = np.zeros(shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, cols[order],
                   np.asarray(values, dtype=get_default_dtype())[order], shape)

    @classmethod
    def eye(cls, n: int) -> "SparseTensor":
        """Sparse identity of size ``n``."""
        return cls.from_scipy(sp.identity(n, format="csr"))

    # ------------------------------------------------------------------
    # Introspection / conversion
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        cells = self.shape[0] * self.shape[1]
        return self.nnz / cells if cells else 0.0

    @property
    def T(self) -> "SparseTensor":
        """Cached transpose (CSC view re-expressed as CSR)."""
        if self._transpose is None:
            transposed = SparseTensor.from_scipy(self.to_scipy().T.tocsr())
            transposed._transpose = self
            self._transpose = transposed
        return self._transpose

    @property
    def row_of_nnz(self) -> np.ndarray:
        """Row index of every stored entry (cached; used by backward passes)."""
        if self._row_of_nnz is None:
            self._row_of_nnz = np.repeat(
                np.arange(self.shape[0], dtype=np.int64),
                np.diff(self.indptr))
        return self._row_of_nnz

    def to_scipy(self) -> sp.csr_matrix:
        """Zero-copy view as a :class:`scipy.sparse.csr_matrix`."""
        return sp.csr_matrix((self.values, self.indices, self.indptr),
                             shape=self.shape)

    def to_dense(self) -> np.ndarray:
        """Materialize the full dense matrix (use only on small graphs)."""
        return self.to_scipy().toarray()

    def with_values(self, values: np.ndarray) -> "SparseTensor":
        """Same sparsity pattern, new entry values (shares index arrays)."""
        out = SparseTensor(self.indptr, self.indices, values, self.shape)
        out._row_of_nnz = self._row_of_nnz
        return out

    def copy(self) -> "SparseTensor":
        return SparseTensor(self.indptr.copy(), self.indices.copy(),
                            self.values.copy(), self.shape)

    def __repr__(self) -> str:
        return (f"SparseTensor(shape={self.shape}, nnz={self.nnz}, "
                f"density={self.density:.2e})")

    # ------------------------------------------------------------------
    # Degree / normalization helpers (data-level, return new constants)
    # ------------------------------------------------------------------
    def row_sums(self) -> np.ndarray:
        """Out-degree vector ``A @ 1`` (duplicates included)."""
        return np.bincount(self.row_of_nnz, weights=self.values,
                           minlength=self.shape[0])

    def col_sums(self) -> np.ndarray:
        """In-degree vector ``1^T A``."""
        return np.bincount(self.indices, weights=self.values,
                           minlength=self.shape[1])

    def scale_rows(self, factors: np.ndarray) -> "SparseTensor":
        """``diag(factors) @ A`` without forming the diagonal matrix."""
        factors = np.asarray(factors, dtype=self.values.dtype)
        return self.with_values(self.values * factors[self.row_of_nnz])

    def scale_cols(self, factors: np.ndarray) -> "SparseTensor":
        """``A @ diag(factors)`` without forming the diagonal matrix."""
        factors = np.asarray(factors, dtype=self.values.dtype)
        return self.with_values(self.values * factors[self.indices])

    def row_normalize(self) -> "SparseTensor":
        """``D^{-1} A`` — the mean-aggregation operator; empty rows stay 0."""
        degree = self.row_sums()
        inv = np.divide(1.0, degree, out=np.zeros_like(degree),
                        where=degree > 0)
        return self.scale_rows(inv)

    def sym_normalize(self) -> "SparseTensor":
        """``D^{-1/2} A D^{-1/2}`` (Kipf & Welling); zero degrees stay 0.

        Row and column degrees are computed independently, so this is also
        correct for rectangular biadjacency blocks.
        """
        row_deg = self.row_sums()
        col_deg = self.col_sums()
        inv_row = np.zeros_like(row_deg)
        nonzero = row_deg > 0
        inv_row[nonzero] = row_deg[nonzero] ** -0.5
        inv_col = np.zeros_like(col_deg)
        nonzero = col_deg > 0
        inv_col[nonzero] = col_deg[nonzero] ** -0.5
        return self.scale_rows(inv_row).scale_cols(inv_col)

    def add_self_loops(self, weight: float = 1.0) -> "SparseTensor":
        """Square matrices only: set the diagonal to ``weight``."""
        if self.shape[0] != self.shape[1]:
            raise ValueError("self loops require a square matrix")
        csr = self.to_scipy().tolil()
        csr.setdiag(weight)
        return SparseTensor.from_scipy(csr.tocsr())

    def restrict_columns(self, keep: np.ndarray) -> "SparseTensor":
        """Zero out (drop) every entry whose column is not in ``keep``.

        ``keep`` is a boolean mask of length ``cols``.  Used to restrict
        aggregation to attributed neighbors during attribute completion.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape[0] != self.shape[1]:
            raise ValueError("mask length must equal the column count")
        entry_mask = keep[self.indices]
        counts = np.bincount(self.row_of_nnz[entry_mask],
                             minlength=self.shape[0])
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return SparseTensor(indptr, self.indices[entry_mask],
                            self.values[entry_mask], self.shape)

    def eliminate_zeros(self) -> "SparseTensor":
        """Drop stored entries whose value is exactly zero."""
        csr = self.to_scipy().copy()
        csr.eliminate_zeros()
        return SparseTensor.from_scipy(csr)

    # ------------------------------------------------------------------
    # Products
    # ------------------------------------------------------------------
    def matmul_data(self, x: np.ndarray) -> np.ndarray:
        """Plain (non-differentiable) CSR × dense product."""
        return self.to_scipy() @ np.asarray(x)

    def spmm(self, x: Union[Tensor, np.ndarray]) -> Tensor:
        """Autograd-aware ``self @ x`` (gradient w.r.t. ``x`` only)."""
        return spmm(self, x)

    def __matmul__(self, x):
        if isinstance(x, Tensor):
            return spmm(self, x)
        if isinstance(x, np.ndarray):
            return self.matmul_data(x)
        return NotImplemented


def as_sparse_tensor(matrix: SparseLike) -> SparseTensor:
    """Coerce a scipy matrix into a :class:`SparseTensor` (no-op if one)."""
    if isinstance(matrix, SparseTensor):
        return matrix
    return SparseTensor.from_scipy(matrix)


@profiled
def spmm(matrix: SparseLike, x: Union[Tensor, np.ndarray]) -> Tensor:
    """Sparse ``matrix`` (constant) times dense ``x`` (differentiable).

    Accepts either a :class:`SparseTensor` or any scipy sparse matrix.
    The backward pass multiplies by the cached transpose:
    ``dL/dx = A.T @ dL/dy``.
    """
    x = ensure_tensor(x)
    matrix = as_sparse_tensor(matrix)
    out = Tensor(matrix.matmul_data(x.data),
                 requires_grad=is_grad_enabled() and x.requires_grad)
    if out.requires_grad:
        matrix_t = matrix.T
        def backward(grad: np.ndarray) -> None:
            x.accumulate_grad(matrix_t.matmul_data(grad))
        out._rig((x,), backward)
    return out


@profiled
def weighted_spmm(pattern: SparseTensor, values: Tensor, x: Tensor) -> Tensor:
    """``A(values) @ x`` with a fixed sparsity pattern and learnable values.

    This is the CSR fast path for attention-style aggregation
    ``out[r] = Σ_e values[e] · x[pattern.indices[e]]`` summed over the
    stored entries ``e`` of row ``r`` (duplicate ``(row, col)`` entries are
    legal and sum, which matches multigraph message passing).

    Shapes
    ------
    * ``values``: ``(nnz,)`` with ``x``: ``(cols, d)`` → ``(rows, d)``; or
    * ``values``: ``(nnz, H)`` with ``x``: ``(cols, H, d)`` → ``(rows, H, d)``
      (one independent product per head ``h``).

    Both ``values`` and ``x`` are differentiable; ``pattern``'s structure
    and stored values are ignored as data (only ``indptr``/``indices``
    matter).
    """
    values = ensure_tensor(values)
    x = ensure_tensor(x)
    if x.data.shape[0] != pattern.shape[1]:
        raise ValueError(
            f"dense operand has {x.data.shape[0]} rows but the pattern has "
            f"{pattern.shape[1]} columns")
    if values.data.shape[0] != pattern.nnz:
        raise ValueError(
            f"got {values.data.shape[0]} values for a pattern with "
            f"{pattern.nnz} stored entries")
    indices, indptr = pattern.indices, pattern.indptr
    rows = pattern.shape[0]
    row_of_nnz = pattern.row_of_nnz

    def forward_data(vals: np.ndarray, dense: np.ndarray) -> np.ndarray:
        mat = sp.csr_matrix((vals, indices, indptr),
                            shape=(rows, dense.shape[0]))
        return mat @ dense

    multi_head = values.data.ndim == 2
    if multi_head:
        if x.data.ndim != 3 or x.data.shape[1] != values.data.shape[1]:
            raise ValueError(
                f"multi-head weighted_spmm needs values (nnz, H) and "
                f"x (cols, H, d); got {values.shape} and {x.shape}")
        heads = values.data.shape[1]
        out_data = np.empty((rows, heads, x.data.shape[2]),
                            dtype=np.result_type(values.data, x.data))
        for h in range(heads):
            out_data[:, h, :] = forward_data(values.data[:, h], x.data[:, h, :])
    else:
        if x.data.ndim != 2:
            raise ValueError("weighted_spmm needs a 2-D dense operand")
        out_data = forward_data(values.data, x.data)

    out = Tensor(out_data, requires_grad=is_grad_enabled()
                 and (values.requires_grad or x.requires_grad))
    if out.requires_grad:
        def backward(grad: np.ndarray) -> None:
            if multi_head:
                if values.requires_grad:
                    # dL/dw[e,h] = <grad[row_e, h], x[col_e, h]>
                    gv = np.einsum("ehd,ehd->eh", grad[row_of_nnz],
                                   x.data[indices])
                    values.accumulate_grad(gv)
                if x.requires_grad:
                    gx = np.empty_like(x.data)
                    for h in range(x.data.shape[1]):
                        mat = sp.csr_matrix(
                            (values.data[:, h], indices, indptr),
                            shape=(rows, x.data.shape[0]))
                        gx[:, h, :] = mat.T @ grad[:, h, :]
                    x.accumulate_grad(gx)
            else:
                if values.requires_grad:
                    gv = np.einsum("ed,ed->e", grad[row_of_nnz],
                                   x.data[indices])
                    values.accumulate_grad(gv)
                if x.requires_grad:
                    mat = sp.csr_matrix((values.data, indices, indptr),
                                        shape=(rows, x.data.shape[0]))
                    x.accumulate_grad(mat.T @ grad)
        out._rig((values, x), backward)
    return out


def sparse_dense_matmul_data(matrix: SparseLike, x: np.ndarray) -> np.ndarray:
    """Plain (non-differentiable) sparse × dense product."""
    return as_sparse_tensor(matrix).matmul_data(x)


__all__ = [
    "SparseTensor",
    "as_sparse_tensor",
    "spmm",
    "weighted_spmm",
    "sparse_dense_matmul_data",
]
