"""Instrumentation choke point for the op-level profiler.

Every public autograd op in :mod:`.tensor`, :mod:`.functional` and
:mod:`.sparse` is wrapped by :func:`profiled` at definition time.  When no
hook is installed the wrapper is a single global load plus a ``None``
check — far below the cost of even the smallest numpy call — so the
engine pays nothing while profiling is off.

The hook protocol is intentionally tiny (``hook(name, seconds, nbytes)``)
so this module has zero dependencies; the user-facing profiler lives in
:mod:`repro.perf.profiler` and installs itself through :func:`set_hook`.
Backward closures are wrapped lazily on the op's output so the backward
pass of each op is reported as ``"<name>.backward"``.
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable, Optional

ProfileHook = Callable[[str, float, int], None]

_HOOK: Optional[ProfileHook] = None


def set_hook(hook: Optional[ProfileHook]) -> Optional[ProfileHook]:
    """Install (or clear, with ``None``) the active hook; returns the old one."""
    global _HOOK
    previous = _HOOK
    _HOOK = hook
    return previous


def get_hook() -> Optional[ProfileHook]:
    """The currently installed hook, or ``None``."""
    return _HOOK


def _output_nbytes(out) -> int:
    nbytes = getattr(out, "nbytes", None)          # ndarray output
    if isinstance(nbytes, int):
        return nbytes
    data = getattr(out, "data", None)              # Tensor output
    nbytes = getattr(data, "nbytes", None)
    return nbytes if isinstance(nbytes, int) else 0


def profiled(fn: Callable) -> Callable:
    """Wrap an op so the active hook sees its calls, wall time and bytes."""
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        hook = _HOOK
        if hook is None:
            return fn(*args, **kwargs)
        start = perf_counter()
        out = fn(*args, **kwargs)
        hook(name, perf_counter() - start, _output_nbytes(out))
        # identity-returning ops (e.g. dropout with p=0) hand back an input
        # tensor whose backward belongs to an upstream op — leave it alone
        if any(out is arg for arg in args):
            return out
        backward_fn = getattr(out, "_backward_fn", None)
        if backward_fn is not None:
            def timed_backward(grad, _inner=backward_fn):
                inner_hook = _HOOK
                if inner_hook is None:
                    return _inner(grad)
                begin = perf_counter()
                result = _inner(grad)
                inner_hook(name + ".backward", perf_counter() - begin, 0)
                return result
            out._backward_fn = timed_backward
        return out

    return wrapper


__all__ = ["profiled", "set_hook", "get_hook"]
