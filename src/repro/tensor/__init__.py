"""``repro.tensor`` — a numpy-backed autograd engine.

This subpackage replaces PyTorch for the AutoAC reproduction: reverse-mode
autodiff (:mod:`.tensor`), NN functional ops (:mod:`.functional`), the CSR
sparse subsystem (:mod:`.sparse` — :class:`SparseTensor` plus the
autograd-aware :func:`spmm`/:func:`weighted_spmm` fast paths), modules
(:mod:`.module`), initializers (:mod:`.init`), optimizers (:mod:`.optim`)
and a finite-difference gradient checker (:mod:`.gradcheck`).

Differentiability note: sparse matrices are always *data* — gradients flow
only through dense operands (and, for :func:`weighted_spmm`, through the
per-edge value tensor); see :mod:`.sparse` for the full contract.
"""

from . import functional, init
from .functional import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    embedding,
    l2_normalize,
    log_softmax,
    nll_loss,
    one_hot,
    segment_mean,
    segment_softmax,
    segment_sum,
    segment_weighted_mean,
    softmax,
)
from .gradcheck import gradcheck, numerical_gradient
from .module import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    Sequential,
)
from .optim import SGD, Adam, AdamW, Optimizer, clip_grad_norm
from .random import get_rng, manual_seed
from .sparse import (
    SparseTensor,
    as_sparse_tensor,
    sparse_dense_matmul_data,
    spmm,
    weighted_spmm,
)
from .tensor import (
    Tensor,
    absolute,
    clip,
    concat,
    cos,
    elu,
    ensure_tensor,
    exp,
    gather_rows,
    is_grad_enabled,
    leaky_relu,
    log,
    matmul,
    maximum,
    no_grad,
    relu,
    scatter_add,
    sigmoid,
    sin,
    sqrt,
    stack,
    tanh,
    where,
)

__all__ = [
    "Tensor",
    "ensure_tensor",
    "no_grad",
    "is_grad_enabled",
    "exp",
    "log",
    "sqrt",
    "cos",
    "sin",
    "tanh",
    "sigmoid",
    "relu",
    "leaky_relu",
    "elu",
    "absolute",
    "clip",
    "maximum",
    "matmul",
    "concat",
    "stack",
    "where",
    "scatter_add",
    "gather_rows",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "l2_normalize",
    "one_hot",
    "embedding",
    "segment_sum",
    "segment_mean",
    "segment_softmax",
    "segment_weighted_mean",
    "spmm",
    "weighted_spmm",
    "SparseTensor",
    "as_sparse_tensor",
    "sparse_dense_matmul_data",
    "Parameter",
    "Module",
    "ModuleList",
    "ModuleDict",
    "Linear",
    "Dropout",
    "LayerNorm",
    "Sequential",
    "Embedding",
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm",
    "gradcheck",
    "numerical_gradient",
    "get_rng",
    "manual_seed",
    "functional",
    "init",
]
