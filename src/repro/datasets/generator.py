"""Label-correlated synthetic heterogeneous graph generator.

The real HGB datasets cannot be downloaded in this offline environment, so
each of them is *simulated* by a generator that preserves the properties
AutoAC's machinery is sensitive to:

* the exact node/edge **schema** (types, relations, which type carries raw
  attributes, which type carries labels);
* a latent **community structure** that drives both the topology and the
  attributes, so that topology-dependent completion can recover the hidden
  attributes of V⁻ nodes;
* **degree heterogeneity** (log-normal node propensities) so some nodes
  have rich 1-hop attributed neighborhoods (mean/GCN completion wins),
  some reach informative nodes only through multiple hops (PPNP wins);
* a fraction of **"guest" nodes** whose edges ignore the community signal
  — for these, topology is noise and one-hot completion wins (the paper's
  Leonie Benesch example).

Every quantity is parameterized by :class:`SchemaSpec`/:class:`RelationSpec`
so the dataset modules stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import HeteroGraph
from .base import HeteroDataset, Split, stratified_split


@dataclass(frozen=True)
class RelationSpec:
    """One directed relation of the schema.

    ``edges_per_src`` is the mean out-degree of source nodes; ``assortative``
    scales how strongly endpoints prefer the same latent community.
    """

    src: str
    name: str
    dst: str
    edges_per_src: float
    assortative: float = 0.85


@dataclass(frozen=True)
class SchemaSpec:
    """Declarative description of a synthetic HGB-style dataset."""

    name: str
    node_counts: Dict[str, int]
    relations: Tuple[RelationSpec, ...]
    target_type: str
    attributed_types: Tuple[str, ...]
    num_classes: int
    attribute_dim: int = 64
    label_noise: float = 0.05
    guest_fraction: float = 0.15
    attribute_noise: float = 0.6
    link_target: Optional[Tuple[str, str, str]] = None
    metapaths: Tuple[Tuple[str, ...], ...] = ()

    def scaled(self, factor: float, minimum: int = 6) -> "SchemaSpec":
        """Return a copy with node counts multiplied by ``factor``."""
        counts = {
            name: max(minimum, int(round(count * factor)))
            for name, count in self.node_counts.items()
        }
        return SchemaSpec(
            name=self.name,
            node_counts=counts,
            relations=self.relations,
            target_type=self.target_type,
            attributed_types=self.attributed_types,
            num_classes=self.num_classes,
            attribute_dim=self.attribute_dim,
            label_noise=self.label_noise,
            guest_fraction=self.guest_fraction,
            attribute_noise=self.attribute_noise,
            link_target=self.link_target,
            metapaths=self.metapaths,
        )


def _sample_edges(
    n_src: int,
    n_dst: int,
    communities_src: np.ndarray,
    communities_dst: np.ndarray,
    guests_src: np.ndarray,
    spec: RelationSpec,
    num_classes: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample a (2, E) local edge list for one relation.

    Every source node receives at least one edge (Poisson-distributed extra
    edges on top, weighted by a log-normal propensity), keeping the graph
    connected enough for message passing.  Non-guest sources pick a same-
    community destination with probability ``assortative``.
    """
    propensity = rng.lognormal(mean=0.0, sigma=0.8, size=n_src)
    extra = rng.poisson(lam=np.maximum(spec.edges_per_src - 1.0, 0.0) *
                        propensity / propensity.mean(), size=n_src)
    degrees = 1 + extra
    src = np.repeat(np.arange(n_src, dtype=np.int64), degrees)
    total = src.shape[0]

    # community-respecting destination pools
    pools = [np.flatnonzero(communities_dst == k) for k in range(num_classes)]
    dst = rng.integers(0, n_dst, size=total, dtype=np.int64)
    same_community = rng.random(total) < spec.assortative
    # guests never get community-aligned edges
    same_community &= ~guests_src[src]
    for k in range(num_classes):
        pool = pools[k]
        if pool.size == 0:
            continue
        mask = same_community & (communities_src[src] == k)
        count = int(mask.sum())
        if count:
            dst[mask] = pool[rng.integers(0, pool.size, size=count)]

    # drop duplicate pairs
    keys = src * np.int64(n_dst) + dst
    _, unique_index = np.unique(keys, return_index=True)
    unique_index = np.sort(unique_index)
    return np.stack([src[unique_index], dst[unique_index]])


def _class_prototypes(num_classes: int, dim: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Sparse non-negative topic vectors, one per latent community."""
    prototypes = np.zeros((num_classes, dim))
    active_per_class = max(4, dim // max(num_classes, 1))
    for k in range(num_classes):
        support = rng.choice(dim, size=active_per_class, replace=False)
        prototypes[k, support] = rng.uniform(0.8, 1.6, size=active_per_class)
    return prototypes


def sparse_benchmark_spec(num_nodes: int = 10_000,
                          avg_degree: float = 8.0,
                          num_classes: int = 8,
                          attribute_dim: int = 64) -> SchemaSpec:
    """Schema for the large sparse-propagation benchmark.

    A citation-style graph ("paper" carries attributes and labels,
    "author" does not) sized so the *global* adjacency has ``num_nodes``
    rows but only ``O(num_nodes · avg_degree)`` edges — the regime where
    the CSR fast path dwarfs dense propagation (density well under 1% for
    ``num_nodes ≥ 10k``).  Used by ``benchmarks/test_sparse_speedup.py``;
    also handy as a stress test for anything that must scale past the
    HGB-sized datasets.
    """
    n_paper = int(round(num_nodes * 0.7))
    n_author = num_nodes - n_paper
    return SchemaSpec(
        name=f"sparse-bench-{num_nodes}",
        node_counts={"paper": n_paper, "author": n_author},
        relations=(
            RelationSpec("paper", "cites", "paper", avg_degree / 2.0),
            RelationSpec("paper", "written_by", "author", avg_degree / 2.0),
        ),
        target_type="paper",
        attributed_types=("paper",),
        num_classes=num_classes,
        attribute_dim=attribute_dim,
    )


def search_benchmark_spec(num_nodes: int = 3000,
                          avg_degree: float = 10.0,
                          num_classes: int = 8,
                          attribute_dim: int = 256) -> SchemaSpec:
    """Schema for the end-to-end search-speedup benchmark.

    Same citation-style shape as :func:`sparse_benchmark_spec` (papers
    attributed, authors missing → a real V⁻ for the completion search)
    but sized so one ``AutoACSearcher`` epoch is dominated by numeric
    work (wide raw attributes, a few thousand nodes) rather than Python
    overhead — the regime where the float32 fused runtime profile shows
    its full margin.  Used by ``benchmarks/test_search_speedup.py``.
    """
    n_paper = int(round(num_nodes * 0.7))
    n_author = num_nodes - n_paper
    return SchemaSpec(
        name=f"search-bench-{num_nodes}",
        node_counts={"paper": n_paper, "author": n_author},
        relations=(
            RelationSpec("paper", "cites", "paper", avg_degree / 2.0),
            RelationSpec("paper", "written_by", "author", avg_degree / 2.0),
        ),
        target_type="paper",
        attributed_types=("paper",),
        num_classes=num_classes,
        attribute_dim=attribute_dim,
    )


def tune_benchmark_spec(num_nodes: int = 900,
                        avg_degree: float = 8.0,
                        num_classes: int = 5,
                        attribute_dim: int = 48) -> SchemaSpec:
    """Schema for the autotune speedup benchmark.

    Citation-style graph (papers attributed + labelled, authors V⁻)
    sized so one *trial* — retraining a backbone under a candidate
    completion assignment — takes a fraction of a second: the speedup
    benchmark runs dozens of trials (sequential random search vs ASHA
    with parallel workers) and must still finish in CI minutes.  The
    guest fraction is kept at the default so the op choice genuinely
    matters (one-hot wins for guests, aggregation for the rest), giving
    the strategies a real signal to search over.  Used by
    ``benchmarks/test_autotune_speedup.py``.
    """
    n_paper = int(round(num_nodes * 0.7))
    n_author = num_nodes - n_paper
    return SchemaSpec(
        name=f"tune-bench-{num_nodes}",
        node_counts={"paper": n_paper, "author": n_author},
        relations=(
            RelationSpec("paper", "cites", "paper", avg_degree / 2.0),
            RelationSpec("paper", "written_by", "author", avg_degree / 2.0),
        ),
        target_type="paper",
        attributed_types=("paper",),
        num_classes=num_classes,
        attribute_dim=attribute_dim,
    )


def scale_spec(num_nodes: int = 50_000,
               avg_degree: float = 6.0,
               num_classes: int = 8,
               attribute_dim: int = 64) -> SchemaSpec:
    """Schema for the mini-batch scale benchmark (~50k nodes by default).

    Citation-style graph (papers attributed + labelled, authors V⁻) sized
    an order of magnitude past the HGB-style specs: large enough that a
    full-graph ``(N, hidden)`` forward is the dominant memory cost, small
    enough to generate in seconds.  ``benchmarks/test_minibatch_scale.py``
    trains it through :class:`~repro.training.MiniBatchTrainer` and
    asserts the peak forward-tensor rows stay bounded by batch fan-out —
    the contract every future sharding/async PR builds on.
    """
    n_paper = int(round(num_nodes * 0.7))
    n_author = num_nodes - n_paper
    return SchemaSpec(
        name=f"scale-{num_nodes}",
        node_counts={"paper": n_paper, "author": n_author},
        relations=(
            RelationSpec("paper", "cites", "paper", avg_degree / 2.0),
            RelationSpec("paper", "written_by", "author", avg_degree / 2.0),
        ),
        target_type="paper",
        attributed_types=("paper",),
        num_classes=num_classes,
        attribute_dim=attribute_dim,
    )


def generate(spec: SchemaSpec, seed: int = 0,
             split_fractions: Tuple[float, float, float] = (0.24, 0.06, 0.70)
             ) -> HeteroDataset:
    """Materialize a :class:`HeteroDataset` from a schema."""
    rng = np.random.default_rng(seed)
    num_classes = spec.num_classes

    # 1. latent communities and guest flags for every node of every type
    communities: Dict[str, np.ndarray] = {}
    guests: Dict[str, np.ndarray] = {}
    for node_type, count in spec.node_counts.items():
        communities[node_type] = rng.integers(0, num_classes, size=count,
                                              dtype=np.int64)
        guests[node_type] = rng.random(count) < spec.guest_fraction

    # 2. edges per relation
    edges: Dict[Tuple[str, str, str], np.ndarray] = {}
    for rel in spec.relations:
        pairs = _sample_edges(
            n_src=spec.node_counts[rel.src],
            n_dst=spec.node_counts[rel.dst],
            communities_src=communities[rel.src],
            communities_dst=communities[rel.dst],
            guests_src=guests[rel.src],
            spec=rel,
            num_classes=num_classes,
            rng=rng,
        )
        edges[(rel.src, rel.name, rel.dst)] = pairs

    graph = HeteroGraph(spec.node_counts, edges)
    graph.add_reverse_relations()

    # 3. attributes: class-conditional sparse bag-of-words-like vectors
    prototypes = _class_prototypes(num_classes, spec.attribute_dim, rng)
    features: Dict[str, Optional[np.ndarray]] = {}
    for node_type in graph.node_types:
        if node_type not in spec.attributed_types:
            features[node_type] = None
            continue
        count = spec.node_counts[node_type]
        base = prototypes[communities[node_type]]
        noise = rng.normal(scale=spec.attribute_noise, size=(count, spec.attribute_dim))
        features[node_type] = np.maximum(base + noise, 0.0)

    # 4. labels on the target type (community plus label noise)
    target_comm = communities[spec.target_type]
    labels = target_comm.copy()
    flip = rng.random(labels.shape[0]) < spec.label_noise
    labels[flip] = rng.integers(0, num_classes, size=int(flip.sum()))

    split = stratified_split(labels, split_fractions, rng)

    latent = np.empty(graph.num_nodes, dtype=np.int64)
    for node_type in graph.node_types:
        info = graph.info(node_type)
        latent[info.offset:info.stop] = communities[node_type]

    link_target = tuple(spec.link_target) if spec.link_target else None
    return HeteroDataset(
        name=spec.name,
        graph=graph,
        target_type=spec.target_type,
        features=features,
        labels=labels,
        num_classes=num_classes,
        split=split,
        link_target=link_target,  # type: ignore[arg-type]
        metapaths=[tuple(mp) for mp in spec.metapaths],
        latent_communities=latent,
    )


__all__ = ["RelationSpec", "SchemaSpec", "generate", "sparse_benchmark_spec",
           "search_benchmark_spec", "tune_benchmark_spec", "scale_spec"]
