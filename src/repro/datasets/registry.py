"""Dataset registry with scale presets and a per-process cache.

``scale`` controls the node-count multiplier against the paper's HGB sizes:
``tiny`` for unit tests (seconds), ``small`` for the benchmark suite
(minutes on CPU), ``paper`` for a full-size run.
"""

from __future__ import annotations

from typing import Dict, Tuple

from .acm import ACM_SPEC
from .base import HeteroDataset
from .dblp import DBLP_SPEC
from .generator import SchemaSpec, generate
from .imdb import IMDB_SPEC
from .lastfm import LASTFM_SPEC

SPECS: Dict[str, SchemaSpec] = {
    "dblp": DBLP_SPEC,
    "acm": ACM_SPEC,
    "imdb": IMDB_SPEC,
    "lastfm": LASTFM_SPEC,
}

SCALES: Dict[str, float] = {
    "tiny": 0.03,
    "small": 0.10,
    "medium": 0.25,
    "paper": 1.0,
}

_CACHE: Dict[Tuple[str, str, int], HeteroDataset] = {}


def dataset_names() -> list:
    return sorted(SPECS)


def get_dataset(name: str, scale: str = "small", seed: int = 0,
                use_cache: bool = True) -> HeteroDataset:
    """Build (or fetch from cache) a synthetic dataset by name.

    Parameters
    ----------
    name:
        One of ``dblp``, ``acm``, ``imdb``, ``lastfm``.
    scale:
        Node-count multiplier preset, see :data:`SCALES`.
    seed:
        Seed for the generator; fixed seeds give identical datasets.
    """
    key = name.lower()
    if key not in SPECS:
        raise KeyError(f"unknown dataset {name!r}; choose from {dataset_names()}")
    if scale not in SCALES:
        raise KeyError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}")
    cache_key = (key, scale, seed)
    if use_cache and cache_key in _CACHE:
        return _CACHE[cache_key]
    spec = SPECS[key].scaled(SCALES[scale])
    dataset = generate(spec, seed=seed)
    if use_cache:
        _CACHE[cache_key] = dataset
    return dataset


def clear_cache() -> None:
    _CACHE.clear()


__all__ = ["get_dataset", "dataset_names", "clear_cache", "SPECS", "SCALES"]
