"""Dataset container shared by every synthetic HGB-style dataset.

Mirrors what the HGB benchmark hands a model: a heterogeneous graph, raw
attributes on a subset of node types, labels on a target type with a fixed
24/6/70 split, and (for link prediction) a target relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph import HeteroGraph, Relation


@dataclass
class Split:
    """Index split over the target type's *local* node ids."""

    train: np.ndarray
    val: np.ndarray
    test: np.ndarray

    def __post_init__(self) -> None:
        sets = [set(self.train.tolist()), set(self.val.tolist()), set(self.test.tolist())]
        if sets[0] & sets[1] or sets[0] & sets[2] or sets[1] & sets[2]:
            raise ValueError("train/val/test splits overlap")

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return len(self.train), len(self.val), len(self.test)


@dataclass
class HeteroDataset:
    """A fully-specified node-classification / link-prediction instance."""

    name: str
    graph: HeteroGraph
    target_type: str
    features: Dict[str, Optional[np.ndarray]]
    labels: np.ndarray
    num_classes: int
    split: Split
    link_target: Optional[Relation] = None
    metapaths: List[Tuple[str, ...]] = field(default_factory=list)
    latent_communities: Optional[np.ndarray] = None  # per-global-node, for analysis

    def __post_init__(self) -> None:
        for node_type in self.graph.node_types:
            if node_type not in self.features:
                raise KeyError(f"features dict missing entry for type {node_type!r}")
        n_target = self.graph.num_nodes_of(self.target_type)
        if self.labels.shape[0] != n_target:
            raise ValueError("labels must cover every target-type node")

    # ------------------------------------------------------------------
    @property
    def attributed_types(self) -> List[str]:
        return [t for t in self.graph.node_types if self.features[t] is not None]

    @property
    def missing_types(self) -> List[str]:
        return [t for t in self.graph.node_types if self.features[t] is None]

    @property
    def missing_global_ids(self) -> np.ndarray:
        """Global ids of every node whose attributes are missing (V⁻)."""
        chunks = [self.graph.global_ids(t) for t in self.missing_types]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    @property
    def attributed_global_ids(self) -> np.ndarray:
        chunks = [self.graph.global_ids(t) for t in self.attributed_types]
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    @property
    def attribute_missing_rate(self) -> float:
        return self.missing_global_ids.shape[0] / self.graph.num_nodes

    def missing_row_of_global(self) -> np.ndarray:
        """Per-global-node row index into ``missing_global_ids`` (-1 for V⁺).

        The inverse of ``missing_global_ids`` — sampled execution needs to
        map the handful of V⁻ nodes a :class:`~repro.graph.GraphView`
        touches to their completion rows without scanning.  Cached against
        the current node count (graph mutations such as ``append_node``
        shift global ids and rebuild it).
        """
        cached = self.__dict__.get("_missing_row_cache")
        if cached is not None and cached[0] == self.graph.num_nodes:
            return cached[1]
        lookup = np.full(self.graph.num_nodes, -1, dtype=np.int64)
        missing = self.missing_global_ids
        lookup[missing] = np.arange(missing.shape[0], dtype=np.int64)
        self.__dict__["_missing_row_cache"] = (self.graph.num_nodes, lookup)
        return lookup

    def feature_matrix_zero_filled(self, dim: Optional[int] = None) -> np.ndarray:
        """Global ``(N, d)`` raw feature matrix with missing rows zeroed.

        All attributed types must share one raw dimension (true for our
        generators); ``dim`` overrides it when there are no attributed types.
        """
        dims = {self.features[t].shape[1] for t in self.attributed_types}
        if len(dims) > 1:
            raise ValueError(f"attributed types disagree on raw dim: {dims}")
        d = dims.pop() if dims else dim
        if d is None:
            raise ValueError("no attributed types and no dim override")
        out = np.zeros((self.graph.num_nodes, d))
        for node_type in self.attributed_types:
            info = self.graph.info(node_type)
            out[info.offset:info.stop] = self.features[node_type]
        return out

    # ------------------------------------------------------------------
    def with_handcrafted_onehot(self, node_types: List[str]) -> "HeteroDataset":
        """Treat ``node_types`` as attributed via handcrafted one-hot features.

        This is the paper's Table IX protocol for lowering the attribute
        missing rate: the named types receive identity features (projected
        to the shared raw dimension by zero-padding / truncation) and are no
        longer part of V⁻.
        """
        dims = {self.features[t].shape[1] for t in self.attributed_types}
        if len(dims) != 1:
            raise ValueError("need exactly one raw dimension to align one-hot features")
        d = dims.pop()
        features = dict(self.features)
        rng = np.random.default_rng(0)
        for node_type in node_types:
            if features.get(node_type) is not None:
                continue
            count = self.graph.num_nodes_of(node_type)
            eye = np.eye(count)
            if count >= d:
                # random projection keeps rows distinguishable at dimension d
                projection = rng.normal(size=(count, d)) / np.sqrt(d)
                features[node_type] = eye @ projection
            else:
                padded = np.zeros((count, d))
                padded[:, :count] = eye
                features[node_type] = padded
        return replace(self, features=features)

    def __repr__(self) -> str:
        return (f"HeteroDataset({self.name!r}, target={self.target_type!r}, "
                f"classes={self.num_classes}, missing_rate="
                f"{self.attribute_missing_rate:.2f}, graph={self.graph!r})")


def stratified_split(labels: np.ndarray, fractions: Tuple[float, float, float],
                     rng: np.random.Generator) -> Split:
    """Per-class proportional split (HGB uses 24/6/70 on labelled nodes)."""
    train_frac, val_frac, _ = fractions
    train_idx, val_idx, test_idx = [], [], []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        members = rng.permutation(members)
        n_train = max(1, int(round(train_frac * members.size)))
        n_val = max(1, int(round(val_frac * members.size)))
        train_idx.append(members[:n_train])
        val_idx.append(members[n_train:n_train + n_val])
        test_idx.append(members[n_train + n_val:])
    return Split(
        train=np.sort(np.concatenate(train_idx)),
        val=np.sort(np.concatenate(val_idx)),
        test=np.sort(np.concatenate(test_idx)),
    )


__all__ = ["HeteroDataset", "Split", "stratified_split"]
