"""Dataset statistics in the layout of the paper's Table I.

The paper's Table I reports, per dataset: node counts per type, edge
count, the target node/edge type, and which types carry raw attributes.
:func:`dataset_statistics` extracts the same facts from a generated
dataset and :func:`render_table1` prints them in the paper's layout, so
the synthetic stand-ins can be eyeballed against the original numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .base import HeteroDataset


@dataclass
class TypeStat:
    name: str
    count: int
    attribute: str  # "Raw" or "Missing"


@dataclass
class DatasetStats:
    name: str
    num_nodes: int
    num_node_types: int
    per_type: List[TypeStat]
    num_edges: int
    target: str
    link_target: Optional[str]
    attribute_missing_rate: float


def dataset_statistics(dataset: HeteroDataset) -> DatasetStats:
    graph = dataset.graph
    per_type = [
        TypeStat(
            name=node_type,
            count=graph.num_nodes_of(node_type),
            attribute="Raw" if dataset.features[node_type] is not None
            else "Missing",
        )
        for node_type in graph.node_types
    ]
    # count each undirected edge once (reverse relations are bookkeeping)
    forward_edges = sum(
        graph.num_edges(rel) for rel in graph.relations
        if not rel[1].endswith("_rev")
    )
    link = "-".join([dataset.link_target[0], dataset.link_target[2]]) \
        if dataset.link_target else None
    return DatasetStats(
        name=dataset.name,
        num_nodes=graph.num_nodes,
        num_node_types=len(graph.node_types),
        per_type=per_type,
        num_edges=forward_edges,
        target=dataset.target_type,
        link_target=link,
        attribute_missing_rate=dataset.attribute_missing_rate,
    )


def render_table1(stats_list: List[DatasetStats]) -> str:
    lines = ["=== Table I (dataset statistics) ==="]
    lines.append(f"{'dataset':9s}{'#nodes':>8s}{'#types':>8s}  "
                 f"{'per-type counts':44s}{'#edges':>8s}  "
                 f"{'target':14s}{'missing':>9s}")
    for stats in stats_list:
        per_type = ", ".join(
            f"{t.name}:{t.count}{'*' if t.attribute == 'Raw' else ''}"
            for t in stats.per_type)
        target = stats.target + (f"/{stats.link_target}"
                                 if stats.link_target else "")
        lines.append(
            f"{stats.name:9s}{stats.num_nodes:8d}{stats.num_node_types:8d}  "
            f"{per_type:44s}{stats.num_edges:8d}  {target:14s}"
            f"{stats.attribute_missing_rate:9.0%}")
    lines.append("(* = type carries raw attributes)")
    return "\n".join(lines)


__all__ = ["TypeStat", "DatasetStats", "dataset_statistics", "render_table1"]
