"""Synthetic LastFM (music listening network, HetRec 2011 / HGB schema).

Paper-scale statistics: user 1892 / artist 17632 / tag 2980; the benchmark
task is **link prediction** on user-artist edges; only artist carries raw
attributes (one-hot in HGB — here class-conditional vectors so that the
attribute-completion machinery still has signal to recover for users/tags).
Users carry synthetic taste communities used only to wire the topology.
"""

from __future__ import annotations

from .generator import RelationSpec, SchemaSpec

LASTFM_SPEC = SchemaSpec(
    name="lastfm",
    node_counts={"user": 1892, "artist": 17632, "tag": 2980},
    relations=(
        RelationSpec("user", "listens-to", "artist", edges_per_src=20.0),
        RelationSpec("user", "friends-with", "user", edges_per_src=1.5),
        RelationSpec("artist", "tagged-as", "tag", edges_per_src=1.3),
    ),
    target_type="user",
    attributed_types=("artist",),
    num_classes=3,
    attribute_dim=64,
    link_target=("user", "listens-to", "artist"),
    metapaths=(
        ("user", "artist", "user"),
        ("artist", "user", "artist"),
        ("artist", "tag", "artist"),
    ),
)

__all__ = ["LASTFM_SPEC"]
