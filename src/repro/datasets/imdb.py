"""Synthetic IMDB (movie network, HGB schema).

Paper-scale statistics: movie 4932 / director 2393 / actor 6124 / keyword
7971; labels on **movie** (5 genres here — the HGB original is multi-label,
we use single-label multi-class and note the substitution in DESIGN.md);
only movie carries raw attributes.  77% of nodes have missing attributes —
the dataset where completing non-target nodes moves the needle most.
"""

from __future__ import annotations

from .generator import RelationSpec, SchemaSpec

IMDB_SPEC = SchemaSpec(
    name="imdb",
    node_counts={"movie": 4932, "director": 2393, "actor": 6124, "keyword": 7971},
    relations=(
        RelationSpec("movie", "directed-by", "director", edges_per_src=1.0),
        RelationSpec("movie", "stars", "actor", edges_per_src=3.0),
        RelationSpec("movie", "tagged", "keyword", edges_per_src=5.0),
    ),
    target_type="movie",
    attributed_types=("movie",),
    num_classes=5,
    attribute_dim=64,
    link_target=("movie", "tagged", "keyword"),
    metapaths=(
        ("movie", "actor", "movie"),
        ("movie", "director", "movie"),
        ("movie", "keyword", "movie"),
    ),
)

__all__ = ["IMDB_SPEC"]
