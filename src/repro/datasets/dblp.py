"""Synthetic DBLP (scholar network, HGB schema).

Paper-scale statistics (HGB Table I): author 4057 / paper 14328 / term 7723 /
venue 20; ~240k edges; labels live on **author** (4 research areas) and only
**paper** nodes carry raw attributes (bag-of-words of keywords) — i.e. the
classification targets themselves have missing attributes, the setting where
the paper reports AutoAC's largest wins.
"""

from __future__ import annotations

from .generator import RelationSpec, SchemaSpec

DBLP_SPEC = SchemaSpec(
    name="dblp",
    node_counts={"author": 4057, "paper": 14328, "term": 7723, "venue": 20},
    relations=(
        RelationSpec("paper", "written-by", "author", edges_per_src=2.8),
        RelationSpec("paper", "mentions", "term", edges_per_src=6.0),
        RelationSpec("paper", "published-at", "venue", edges_per_src=1.0),
    ),
    target_type="author",
    attributed_types=("paper",),
    num_classes=4,
    attribute_dim=64,
    link_target=("paper", "written-by", "author"),
    metapaths=(
        ("author", "paper", "author"),
        ("author", "paper", "term", "paper", "author"),
        ("author", "paper", "venue", "paper", "author"),
    ),
)

__all__ = ["DBLP_SPEC"]
