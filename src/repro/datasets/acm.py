"""Synthetic ACM (citation network, HGB schema).

Paper-scale statistics: paper 3025 / author 5959 / subject 56 / term 1902;
labels on **paper** (3 conferences-derived classes); only paper carries raw
attributes (title bag-of-words).  Papers also cite each other, giving the
target type a same-type relation — the configuration where the paper finds
PPNP-style global completion dominating the searched operations (Fig. 6).
"""

from __future__ import annotations

from .generator import RelationSpec, SchemaSpec

ACM_SPEC = SchemaSpec(
    name="acm",
    node_counts={"paper": 3025, "author": 5959, "subject": 56, "term": 1902},
    relations=(
        RelationSpec("paper", "cites", "paper", edges_per_src=2.0),
        RelationSpec("paper", "written-by", "author", edges_per_src=3.0),
        RelationSpec("paper", "about", "subject", edges_per_src=1.0),
        RelationSpec("paper", "uses-term", "term", edges_per_src=5.0),
    ),
    target_type="paper",
    attributed_types=("paper",),
    num_classes=3,
    attribute_dim=64,
    metapaths=(
        ("paper", "author", "paper"),
        ("paper", "subject", "paper"),
    ),
)

__all__ = ["ACM_SPEC"]
