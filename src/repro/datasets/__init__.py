"""``repro.datasets`` — schema-faithful synthetic HGB-style datasets."""

from .acm import ACM_SPEC
from .base import HeteroDataset, Split, stratified_split
from .dblp import DBLP_SPEC
from .generator import (
    RelationSpec,
    SchemaSpec,
    generate,
    scale_spec,
    search_benchmark_spec,
    sparse_benchmark_spec,
    tune_benchmark_spec,
)
from .imdb import IMDB_SPEC
from .lastfm import LASTFM_SPEC
from .registry import SCALES, SPECS, clear_cache, dataset_names, get_dataset
from .stats import DatasetStats, TypeStat, dataset_statistics, render_table1

__all__ = [
    "HeteroDataset",
    "Split",
    "stratified_split",
    "RelationSpec",
    "SchemaSpec",
    "generate",
    "sparse_benchmark_spec",
    "search_benchmark_spec",
    "tune_benchmark_spec",
    "scale_spec",
    "DBLP_SPEC",
    "ACM_SPEC",
    "IMDB_SPEC",
    "LASTFM_SPEC",
    "get_dataset",
    "dataset_names",
    "clear_cache",
    "SPECS",
    "SCALES",
    "DatasetStats",
    "TypeStat",
    "dataset_statistics",
    "render_table1",
]
