"""Proximal operators for the constrained completion parameters (paper §IV-C).

The feasible set is ``C = C1 ∩ C2`` with

* ``C1 = {a : ||a||_0 = 1}`` — exactly one active operation per row,
* ``C2 = {a : 0 <= a_i <= 1}`` — the box relaxation.

``prox_C1`` keeps each row's largest entry (one-hot), ``prox_C2`` clips to
the box, and Proposition 1 gives ``prox_C = prox_C2 ∘ prox_C1``.
"""

from __future__ import annotations

import numpy as np


def prox_c1(alpha: np.ndarray) -> np.ndarray:
    """Project each row onto the one-active-op set: one-hot at the argmax."""
    alpha = np.asarray(alpha, dtype=np.float64)
    if alpha.ndim != 2:
        raise ValueError(f"alpha must be 2-D (rows, |O|), got shape {alpha.shape}")
    out = np.zeros_like(alpha)
    out[np.arange(alpha.shape[0]), alpha.argmax(axis=1)] = 1.0
    return out


def prox_c2(alpha: np.ndarray) -> np.ndarray:
    """Project onto the ``[0, 1]`` box."""
    return np.clip(np.asarray(alpha, dtype=np.float64), 0.0, 1.0)


def prox_c(alpha: np.ndarray) -> np.ndarray:
    """Proposition 1: ``prox_C = prox_C2 ∘ prox_C1``."""
    return prox_c2(prox_c1(alpha))


def proximal_step(alpha: np.ndarray, grad: np.ndarray, lr: float,
                  weight_decay: float = 0.0) -> np.ndarray:
    """One constrained update: ``prox_C2(alpha - lr * (grad + wd * alpha))``.

    This is line 4 of Algorithm 1 — the gradient was taken at the discrete
    point ``prox_C1(alpha)`` but the descent happens on the continuous
    variables, which stay inside the box.
    """
    if lr <= 0:
        raise ValueError("learning rate must be positive")
    effective = grad + weight_decay * alpha
    return prox_c2(alpha - lr * effective)


__all__ = ["prox_c1", "prox_c2", "prox_c", "proximal_step"]
