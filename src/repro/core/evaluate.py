"""Reusable single-architecture evaluation — the autotune trial body.

``evaluate_architecture`` answers one question: *how good is this
attribute-completion architecture under this budget?*  It is the unit of
work every trial-based search strategy (:mod:`repro.autotune`) executes,
extracted from the search→retrain plumbing in :mod:`repro.core.search`
and :mod:`repro.core.retrain` so schedulers, sweeps and benchmarks all
score candidates through the same code path:

* ``assignment`` given — freeze the per-node completion choices into a
  :class:`~repro.completion.FixedAssignmentFeatures` and train a fresh
  backbone for up to ``budget`` epochs (the random/evolution/ASHA case);
* ``assignment=None`` — run the one-shot bi-level DARTS-style search
  first (the paper's AutoAC), then retrain its discrete winner; the
  one-shot searcher is "just another strategy" through this door.

Selection is on ``val_macro_f1`` (the score early-stopping tracked),
never on test metrics; test macro/micro-F1 are reported for the final
leaderboard only.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..completion import SearchSpace
from ..datasets import HeteroDataset
from ..training import TrainConfig, set_seed
from .adapters import NodeClassificationAdapter
from .config import AutoACConfig
from .retrain import RetrainArtifacts, retrain_assignment_artifacts
from .search import AutoACSearcher, SearchResult


def budget_train_config(budget: Optional[int],
                        base: Optional[TrainConfig] = None) -> TrainConfig:
    """Resolve an epoch budget into a :class:`TrainConfig`.

    ``budget=None`` keeps ``base`` (or the defaults) untouched; an integer
    budget caps the epochs and scales the early-stopping patience with it,
    so low-rung ASHA evaluations stop quickly and full-budget evaluations
    keep the usual patience headroom.
    """
    if budget is None:
        return base if base is not None else TrainConfig()
    base = base if base is not None else TrainConfig()
    return dataclasses.replace(base, epochs=int(budget),
                               patience=max(int(budget) // 4, 5))


@dataclass
class ArchitectureEvaluation:
    """Everything a tuning strategy needs to rank one candidate."""

    assignment: np.ndarray         #: realized per-V⁻-node op choices
    val_macro_f1: float            #: the selection score (higher is better)
    macro_f1: float                #: test macro-F1 (reporting only)
    micro_f1: float                #: test micro-F1 (reporting only)
    epochs_run: int                #: retrain epochs actually consumed
    seconds: float                 #: wall time (search, if any, + retrain)
    op_names: Optional[list] = None
    search: Optional[SearchResult] = None        #: set for one-shot trials
    artifacts: Optional[RetrainArtifacts] = None  #: set with keep_artifacts
    #: per-epoch retrain curves (train_loss, val_macro_f1) — the timeline
    #: layer journals these next to the trial result
    history: Dict[str, List[float]] = field(default_factory=dict)

    def op_distribution(self) -> Dict[str, float]:
        """Fraction of V⁻ nodes assigned to each op (mirrors SearchResult)."""
        names = self.op_names or []
        total = max(len(self.assignment), 1)
        return {
            name: float(np.sum(self.assignment == index)) / total
            for index, name in enumerate(names)
        }


def evaluate_architecture(
    dataset: HeteroDataset,
    assignment: Optional[np.ndarray] = None,
    model_name: str = "simple_hgn",
    budget: Optional[int] = None,
    hidden_dim: int = 64,
    out_dim: int = 64,
    space: Optional[SearchSpace] = None,
    seed: Optional[int] = None,
    search_config: Optional[AutoACConfig] = None,
    train_config: Optional[TrainConfig] = None,
    keep_artifacts: bool = False,
    **model_kwargs,
) -> ArchitectureEvaluation:
    """Score one completion architecture under an epoch budget.

    With ``assignment`` given, the budget bounds the retraining epochs
    (patience scales along, see :func:`budget_train_config`).  With
    ``assignment=None`` the bi-level search runs first under
    ``search_config`` (its ``hidden_dim``/``out_dim``/``model_kwargs``
    then take precedence, exactly like :func:`repro.core.run_autoac`),
    and the budget bounds only the retraining stage.

    ``seed`` (when given) seeds every RNG via
    :func:`repro.training.set_seed` before any work happens and is also
    handed to the searcher, making the evaluation a pure function of
    ``(dataset, architecture, budget, seed)`` — the property the parallel
    trial scheduler's determinism guarantee is built on.
    """
    if seed is not None:
        set_seed(seed)
    start = time.perf_counter()

    search_result: Optional[SearchResult] = None
    if assignment is None:
        config = search_config or AutoACConfig(
            hidden_dim=hidden_dim, out_dim=out_dim,
            model_kwargs=dict(model_kwargs))
        adapter = NodeClassificationAdapter(dataset)
        searcher = AutoACSearcher(adapter, model_name, config, space=space,
                                  seed=seed if seed is not None else 0)
        search_result = searcher.search()
        assignment = search_result.assignment
        hidden_dim, out_dim = config.hidden_dim, config.out_dim
        model_kwargs = dict(config.model_kwargs)
        train_config = budget_train_config(budget, config.retrain)
    else:
        assignment = np.asarray(assignment, dtype=np.int64)
        num_missing = dataset.missing_global_ids.shape[0]
        if assignment.shape != (num_missing,):
            raise ValueError(
                f"assignment must have one op per V⁻ node "
                f"(expected shape ({num_missing},), got {assignment.shape})")
        num_ops = len(space) if space is not None else len(SearchSpace())
        if assignment.size and not (0 <= assignment.min()
                                    and assignment.max() < num_ops):
            raise ValueError(
                f"assignment op indices must lie in [0, {num_ops}); "
                f"got range [{assignment.min()}, {assignment.max()}]")
        train_config = budget_train_config(budget, train_config)

    artifacts = retrain_assignment_artifacts(
        dataset, model_name, assignment, hidden_dim=hidden_dim,
        out_dim=out_dim, config=train_config, space=space, **model_kwargs)
    seconds = time.perf_counter() - start

    result = artifacts.result
    op_names = list(space) if space is not None else list(SearchSpace())
    return ArchitectureEvaluation(
        assignment=np.asarray(assignment, dtype=np.int64),
        val_macro_f1=float(result.val_macro_f1),
        macro_f1=float(result.macro_f1),
        micro_f1=float(result.micro_f1),
        epochs_run=int(result.epochs_run),
        seconds=float(seconds),
        op_names=op_names,
        search=search_result,
        artifacts=artifacts if keep_artifacts else None,
        history={name: [float(v) for v in values]
                 for name, values in result.history.items()},
    )


__all__ = ["ArchitectureEvaluation", "budget_train_config",
           "evaluate_architecture"]
