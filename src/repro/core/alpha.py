"""The completion parameters ``alpha`` (paper §IV-B/C).

``alpha`` is an ``(M, |O|)`` matrix — one row per cluster (or per V⁻ node
when clustering is disabled), one column per candidate completion op.  Two
regimes:

* **discrete** (AutoAC proper): raw numpy values kept inside the ``[0,1]``
  box; the one-hot projection ``prox_C1`` is used in every forward pass and
  gradients are taken at the projected point (NASP-style);
* **mixture** (the "w/o discrete constraints" ablation): a softmax over a
  free tensor parameter, DARTS-style.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, gather_rows, softmax
from .proximal import prox_c1, proximal_step


class CompletionParameters:
    """Box-constrained ``alpha`` with proximal Adam updates (discrete regime).

    The paper optimizes ``alpha`` with Adam (§V-B); the proximal machinery
    wraps it: gradients are taken at the one-hot projection ``prox_C1`` and
    the Adam step is followed by the box projection ``prox_C2``.
    """

    def __init__(self, num_rows: int, num_ops: int,
                 rng: Optional[np.random.Generator] = None,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8) -> None:
        if num_rows < 1 or num_ops < 1:
            raise ValueError("alpha must have at least one row and one op")
        rng = rng or np.random.default_rng(0)
        # small jitter around the box center breaks argmax ties randomly
        self.values = 0.5 + 0.01 * rng.standard_normal((num_rows, num_ops))
        self.values = np.clip(self.values, 0.0, 1.0)
        self.num_rows = num_rows
        self.num_ops = num_ops
        self._beta1, self._beta2 = betas
        self._eps = eps
        self._m = np.zeros_like(self.values)
        self._v = np.zeros_like(self.values)
        self._t = 0

    # ------------------------------------------------------------------
    def discrete(self) -> np.ndarray:
        """One-hot rows at the current argmax (``prox_C1``)."""
        return prox_c1(self.values)

    def discrete_tensor(self, requires_grad: bool = False) -> Tensor:
        """:meth:`discrete` wrapped as a tensor (grad flows to bar-alpha)."""
        return Tensor(self.discrete(), requires_grad=requires_grad)

    def node_weights(self, bar_alpha: Tensor,
                     cluster_labels: np.ndarray) -> Tensor:
        """Per-node op weights: rows of ``bar_alpha`` selected per cluster."""
        return gather_rows(bar_alpha, cluster_labels)

    def update(self, grad: np.ndarray, lr: float,
               weight_decay: float = 0.0) -> None:
        """Algorithm 1 line 4: Adam step at the discrete point, project to box."""
        if grad.shape != self.values.shape:
            raise ValueError(f"grad shape {grad.shape} != alpha shape "
                             f"{self.values.shape}")
        grad = grad + weight_decay * self.values
        self._t += 1
        self._m = self._beta1 * self._m + (1.0 - self._beta1) * grad
        self._v = self._beta2 * self._v + (1.0 - self._beta2) * grad * grad
        m_hat = self._m / (1.0 - self._beta1 ** self._t)
        v_hat = self._v / (1.0 - self._beta2 ** self._t)
        step = m_hat / (np.sqrt(v_hat) + self._eps)
        self.values = proximal_step(self.values, step, lr, weight_decay=0.0)

    def chosen_ops(self) -> np.ndarray:
        """Argmax op index per row."""
        return self.values.argmax(axis=1)

    def __repr__(self) -> str:
        return (f"CompletionParameters(rows={self.num_rows}, "
                f"ops={self.num_ops})")


class MixtureParameters:
    """Softmax-relaxed ``alpha`` (the DARTS-style ablation regime)."""

    def __init__(self, num_rows: int, num_ops: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        self.logits = Tensor(1e-2 * rng.standard_normal((num_rows, num_ops)),
                             requires_grad=True)
        self.num_rows = num_rows
        self.num_ops = num_ops

    def weights(self) -> Tensor:
        """Softmax mixture weights over ops, one row per cluster."""
        return softmax(self.logits, axis=-1)

    def node_weights(self, cluster_labels: np.ndarray) -> Tensor:
        """Per-node mixture weights via the cluster assignment."""
        return gather_rows(self.weights(), cluster_labels)

    def chosen_ops(self) -> np.ndarray:
        """Argmax op index per cluster (discretization of the mixture)."""
        return self.logits.data.argmax(axis=1)


__all__ = ["CompletionParameters", "MixtureParameters"]
