"""Persistence for search results and model weights.

A searched completion assignment is the expensive artifact of AutoAC —
teams want to reuse it across retraining runs and share it between
machines.  Everything round-trips through a single ``.npz`` file (numpy's
portable archive), no pickling of code objects involved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..tensor import Module
from .search import SearchResult

PathLike = Union[str, Path]


def save_search_result(result: SearchResult, path: PathLike) -> None:
    """Write a :class:`SearchResult` to ``path`` (``.npz``)."""
    path = Path(path)
    meta = {
        "op_names": result.op_names,
        "best_val_score": result.best_val_score,
        "epochs_run": result.epochs_run,
        "search_seconds": result.search_seconds,
        "history_keys": sorted(result.history),
    }
    arrays = {
        "assignment": result.assignment,
        "cluster_labels": result.cluster_labels,
        "alpha": result.alpha,
        "meta_json": np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    }
    for key, trace in result.history.items():
        arrays[f"history__{key}"] = np.asarray(trace, dtype=np.float64)
    np.savez_compressed(path, **arrays)


def load_search_result(path: PathLike) -> SearchResult:
    """Read a :class:`SearchResult` back from ``path``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        meta = json.loads(bytes(archive["meta_json"].tobytes()).decode())
        history = {
            key: archive[f"history__{key}"].tolist()
            for key in meta["history_keys"]
            if f"history__{key}" in archive
        }
        return SearchResult(
            assignment=archive["assignment"].copy(),
            cluster_labels=archive["cluster_labels"].copy(),
            alpha=archive["alpha"].copy(),
            op_names=list(meta["op_names"]),
            best_val_score=float(meta["best_val_score"]),
            epochs_run=int(meta["epochs_run"]),
            search_seconds=float(meta["search_seconds"]),
            history=history,
        )


def save_module(module: Module, path: PathLike) -> None:
    """Write a module's ``state_dict`` to ``path`` (``.npz``)."""
    state = module.state_dict()
    # '.' is not np.savez-safe in all readers; escape deterministically
    np.savez_compressed(Path(path),
                        **{key.replace(".", "__dot__"): value
                           for key, value in state.items()})


def load_module(module: Module, path: PathLike) -> None:
    """Load a ``state_dict`` previously written by :func:`save_module`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        state: Dict[str, np.ndarray] = {
            key.replace("__dot__", "."): archive[key] for key in archive.files
        }
    module.load_state_dict(state)


__all__ = ["save_search_result", "load_search_result", "save_module",
           "load_module"]
