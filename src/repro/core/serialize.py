"""Persistence for search results and model weights.

A searched completion assignment is the expensive artifact of AutoAC —
teams want to reuse it across retraining runs and share it between
machines.  Everything round-trips through a single ``.npz`` file (numpy's
portable archive), no pickling of code objects involved.

Every archive written here carries a ``format_version`` array so future
readers can detect (and refuse) layouts they do not understand; archives
from before versioning are read as version 0.  The serving layer
(:mod:`repro.serving.artifact`) builds its ``ModelBundle`` format on the
same helpers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Sequence, Union

import numpy as np

from ..tensor import Module
from .search import SearchResult

PathLike = Union[str, Path]

#: current on-disk layout version of every archive written by this module
FORMAT_VERSION = 1

#: separator-safe encoding of '.' in state-dict keys ('.' is not
#: np.savez-safe in all readers)
_DOT = "__dot__"


def pack_json(payload: dict) -> np.ndarray:
    """Encode a JSON-able dict as a uint8 array (np.savez-safe)."""
    return np.frombuffer(json.dumps(payload).encode(), dtype=np.uint8)


def unpack_json(array: np.ndarray) -> dict:
    """Decode an array written by :func:`pack_json`."""
    return json.loads(bytes(array.tobytes()).decode())


def archive_version(archive) -> int:
    """Read an archive's ``format_version`` (0 for pre-versioning files)."""
    if "format_version" not in archive.files:
        return 0
    return int(np.asarray(archive["format_version"]).ravel()[0])


def require_arrays(archive, keys: Sequence[str], path: PathLike,
                   kind: str) -> None:
    """Raise a clear ``ValueError`` when expected arrays are absent.

    Without this, a truncated or wrong-kind ``.npz`` surfaces as a bare
    ``KeyError`` deep inside numpy.
    """
    missing = [key for key in keys if key not in archive.files]
    if missing:
        raise ValueError(
            f"{path} is not a valid {kind} archive: missing arrays "
            f"{sorted(missing)} (found {sorted(archive.files)})")
    version = archive_version(archive)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"{path} uses format_version {version}, newer than the "
            f"supported version {FORMAT_VERSION}; upgrade this package")


def escape_state_key(key: str) -> str:
    """Make a dotted state-dict key np.savez-safe (deterministically)."""
    return key.replace(".", _DOT)


def unescape_state_key(key: str) -> str:
    """Invert :func:`escape_state_key`."""
    return key.replace(_DOT, ".")


def save_search_result(result: SearchResult, path: PathLike) -> None:
    """Write a :class:`SearchResult` to ``path`` (``.npz``)."""
    path = Path(path)
    meta = {
        "format_version": FORMAT_VERSION,
        "op_names": result.op_names,
        "best_val_score": result.best_val_score,
        "epochs_run": result.epochs_run,
        "search_seconds": result.search_seconds,
        "history_keys": sorted(result.history),
    }
    arrays = {
        "format_version": np.array([FORMAT_VERSION], dtype=np.int64),
        "assignment": result.assignment,
        "cluster_labels": result.cluster_labels,
        "alpha": result.alpha,
        "meta_json": pack_json(meta),
    }
    for key, trace in result.history.items():
        arrays[f"history__{key}"] = np.asarray(trace, dtype=np.float64)
    np.savez_compressed(path, **arrays)


def load_search_result(path: PathLike) -> SearchResult:
    """Read a :class:`SearchResult` back from ``path``."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        require_arrays(archive,
                       ["assignment", "cluster_labels", "alpha", "meta_json"],
                       path, kind="search-result")
        meta = unpack_json(archive["meta_json"])
        history = {
            key: archive[f"history__{key}"].tolist()
            for key in meta["history_keys"]
            if f"history__{key}" in archive
        }
        return SearchResult(
            assignment=archive["assignment"].copy(),
            cluster_labels=archive["cluster_labels"].copy(),
            alpha=archive["alpha"].copy(),
            op_names=list(meta["op_names"]),
            best_val_score=float(meta["best_val_score"]),
            epochs_run=int(meta["epochs_run"]),
            search_seconds=float(meta["search_seconds"]),
            history=history,
        )


def save_module(module: Module, path: PathLike) -> None:
    """Write a module's ``state_dict`` to ``path`` (``.npz``)."""
    state = module.state_dict()
    arrays = {escape_state_key(key): value for key, value in state.items()}
    arrays["format_version"] = np.array([FORMAT_VERSION], dtype=np.int64)
    np.savez_compressed(Path(path), **arrays)


def load_module(module: Module, path: PathLike) -> None:
    """Load a ``state_dict`` previously written by :func:`save_module`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(path)
    with np.load(path) as archive:
        require_arrays(archive, [], path, kind="state-dict")
        state: Dict[str, np.ndarray] = {
            unescape_state_key(key): archive[key]
            for key in archive.files if key != "format_version"
        }
    expected = [name for name, _ in module.named_parameters()]
    missing = [name for name in expected if name not in state]
    if missing:
        raise ValueError(
            f"{path} is not a valid state-dict archive for "
            f"{type(module).__name__}: missing arrays {sorted(missing)}")
    module.load_state_dict(state)


__all__ = ["FORMAT_VERSION", "save_search_result", "load_search_result",
           "save_module", "load_module", "pack_json", "unpack_json",
           "archive_version", "require_arrays", "escape_state_key",
           "unescape_state_key"]
