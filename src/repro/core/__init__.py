"""``repro.core`` — the AutoAC differentiable attribute-completion search."""

from .adapters import LinkPredictionAdapter, NodeClassificationAdapter, TaskAdapter
from .alpha import CompletionParameters, MixtureParameters
from .clustering import (
    EMClusterAssigner,
    ModularityClusteringHead,
    kmeans,
    modularity_loss,
)
from .config import AutoACConfig
from .evaluate import (
    ArchitectureEvaluation,
    budget_train_config,
    evaluate_architecture,
)
from .pipeline import (
    AutoACLinkResult,
    AutoACResult,
    run_autoac,
    run_autoac_link_prediction,
)
from .proximal import prox_c, prox_c1, prox_c2, proximal_step
from .retrain import (
    RetrainArtifacts,
    retrain_assignment_artifacts,
    retrain_link_prediction,
    retrain_node_classification,
    retrain_node_classification_artifacts,
)
from .search import AutoACSearcher, SearchResult
from .serialize import (
    FORMAT_VERSION,
    load_module,
    load_search_result,
    save_module,
    save_search_result,
)

__all__ = [
    "AutoACConfig",
    "AutoACSearcher",
    "SearchResult",
    "AutoACResult",
    "AutoACLinkResult",
    "run_autoac",
    "run_autoac_link_prediction",
    "retrain_node_classification",
    "retrain_node_classification_artifacts",
    "retrain_assignment_artifacts",
    "RetrainArtifacts",
    "ArchitectureEvaluation",
    "budget_train_config",
    "evaluate_architecture",
    "retrain_link_prediction",
    "FORMAT_VERSION",
    "CompletionParameters",
    "MixtureParameters",
    "prox_c",
    "prox_c1",
    "prox_c2",
    "proximal_step",
    "ModularityClusteringHead",
    "modularity_loss",
    "kmeans",
    "EMClusterAssigner",
    "TaskAdapter",
    "NodeClassificationAdapter",
    "LinkPredictionAdapter",
    "save_search_result",
    "load_search_result",
    "save_module",
    "load_module",
]
