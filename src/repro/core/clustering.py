"""Auxiliary unsupervised graph-node clustering (paper §IV-D).

Reduces the completion parameters from ``N⁻ × |O|`` to ``M × |O|`` by
softly assigning nodes to ``M`` clusters.  The assignment matrix ``C`` is
produced by a small learnable head over the current node embeddings and
trained by the relaxed spectral-modularity loss with DMoN-style collapse
regularization (Eq. 11):

    ``L_GmoC = -Tr(C^T B C)/(2|E|) + sqrt(M)/|V| * ||Σ_i C_i||_F``

The EM/k-means alternatives of the paper's Figure 3 ablation are provided
by :func:`kmeans` plus the ``EMClusterAssigner`` wrapper.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..tensor import Linear, Module, Tensor, no_grad, softmax, spmm, sqrt as t_sqrt


class ModularityClusteringHead(Module):
    """Learnable soft assignment ``C = softmax(W2 relu(W1 h))``."""

    def __init__(self, in_dim: int, num_clusters: int,
                 hidden_dim: Optional[int] = None) -> None:
        super().__init__()
        if num_clusters < 2:
            raise ValueError("need at least two clusters")
        self.num_clusters = num_clusters
        hidden_dim = hidden_dim or max(in_dim // 2, num_clusters)
        self.lin1 = Linear(in_dim, hidden_dim)
        self.lin2 = Linear(hidden_dim, num_clusters)

    def forward(self, h: Tensor) -> Tensor:
        """Soft cluster assignment ``(N, K)`` from node embeddings."""
        from ..tensor import relu
        return softmax(self.lin2(relu(self.lin1(h))), axis=-1)


def modularity_loss(assignment: Tensor, adj: sp.spmatrix,
                    degrees: np.ndarray,
                    collapse_weight: float = 1.0) -> Tensor:
    """Differentiable ``L_GmoC`` (modularity + collapse regularization).

    ``collapse_weight`` scales the DMoN collapse term; setting it to 0
    reproduces the degenerate behaviour the paper guards against (all
    nodes drifting into one cluster — see the ablation tests).
    """
    two_e = float(degrees.sum())
    if two_e == 0:
        raise ValueError("graph has no edges")
    n, m = assignment.shape
    term_adj = (spmm(adj, assignment) * assignment).sum()
    dc = Tensor(degrees.reshape(1, -1)) @ assignment  # (1, M)
    term_deg = (dc * dc).sum() * (1.0 / two_e)
    modularity = (term_adj - term_deg) * (1.0 / two_e)
    loss = -modularity
    if collapse_weight:
        column_mass = assignment.sum(axis=0)  # (M,)
        collapse = ((column_mass * column_mass).sum() + 1e-12) ** 0.5 \
            * (np.sqrt(m) / n)
        loss = loss + collapse * collapse_weight
    return loss


def kmeans(points: np.ndarray, num_clusters: int, rng: np.random.Generator,
           iterations: int = 20) -> Tuple[np.ndarray, np.ndarray]:
    """Plain k-means (the EM baseline of Figure 3).

    Returns ``(labels, centers)``.  Empty clusters are re-seeded from the
    farthest points, so exactly ``num_clusters`` clusters survive.
    """
    n = points.shape[0]
    if n < num_clusters:
        raise ValueError("fewer points than clusters")
    centers = points[rng.choice(n, size=num_clusters, replace=False)].copy()
    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        new_labels = distances.argmin(axis=1)
        if np.array_equal(new_labels, labels):
            labels = new_labels
            break
        labels = new_labels
        for k in range(num_clusters):
            members = points[labels == k]
            if members.shape[0] == 0:
                farthest = distances.min(axis=1).argmax()
                centers[k] = points[farthest]
            else:
                centers[k] = members.mean(axis=0)
    return labels, centers


class EMClusterAssigner:
    """k-means-based assigner used by the ``EM`` / ``EM with warmup`` ablations.

    ``warmup`` counts epochs during which the assignment stays at its random
    initialization before the first k-means run (the paper's "EM with
    warmup" variant lets representations settle first).
    """

    def __init__(self, num_missing: int, num_clusters: int, warmup: int,
                 rng: np.random.Generator) -> None:
        self.num_clusters = num_clusters
        self.warmup = warmup
        self.rng = rng
        self.labels = rng.integers(0, num_clusters, size=num_missing,
                                   dtype=np.int64)
        self._epoch = 0

    def update(self, embeddings: np.ndarray) -> np.ndarray:
        """Recluster from current V⁻ embeddings (after warmup)."""
        self._epoch += 1
        if self._epoch <= self.warmup:
            return self.labels
        self.labels, _ = kmeans(embeddings, self.num_clusters, self.rng,
                                iterations=10)
        return self.labels


__all__ = [
    "ModularityClusteringHead",
    "modularity_loss",
    "kmeans",
    "EMClusterAssigner",
]
