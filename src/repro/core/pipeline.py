"""High-level AutoAC facade: search + retrain in one call.

This is the entry point examples and benchmarks use:

    >>> from repro.core import run_autoac
    >>> result = run_autoac(dataset, "simple_hgn")
    >>> result.final.macro_f1, result.search.op_distribution()
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Optional

from ..completion import SearchSpace
from ..datasets import HeteroDataset
from ..perf.profiler import ProfileReport, Profiler
from ..training import LinkPredConfig, LinkPredResult, LinkPredictionTask, TrainResult
from .adapters import LinkPredictionAdapter, NodeClassificationAdapter
from .config import AutoACConfig
from .retrain import (
    RetrainArtifacts,
    retrain_link_prediction,
    retrain_node_classification_artifacts,
)
from .search import AutoACSearcher, SearchResult


@dataclass
class AutoACResult:
    """Outcome of a full node-classification run: search + retrain.

    ``artifacts`` carries the trained backbone + feature builder when the
    run was started with ``keep_artifacts=True`` (the serving layer's
    bundle-export hook); it is ``None`` otherwise so results stay light.
    ``profile`` holds the op-level :class:`~repro.perf.ProfileReport`
    when the run was started with ``profile=True``.
    """

    search: SearchResult
    final: TrainResult
    artifacts: Optional[RetrainArtifacts] = None
    profile: Optional[ProfileReport] = None

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time (search plus retraining)."""
        return self.search.search_seconds + self.final.train_seconds


@dataclass
class AutoACLinkResult:
    """Outcome of a full link-prediction run: search + retrain."""

    search: SearchResult
    final: LinkPredResult

    @property
    def total_seconds(self) -> float:
        """End-to-end wall time (search plus retraining)."""
        return self.search.search_seconds + self.final.train_seconds


def run_autoac(dataset: HeteroDataset, model_name: str = "simple_hgn",
               config: Optional[AutoACConfig] = None,
               space: Optional[SearchSpace] = None,
               seed: int = 0, keep_artifacts: bool = False,
               profile: bool = False) -> AutoACResult:
    """Full AutoAC pipeline for node classification (search → retrain).

    With ``keep_artifacts=True`` the trained backbone and feature builder
    are attached to the result so it can be exported as a servable
    :class:`~repro.serving.ModelBundle`.  With ``profile=True`` the whole
    run executes under the op-level profiler and the per-op report is
    attached as ``result.profile``.
    """
    config = config or AutoACConfig()
    profiler = Profiler() if profile else None
    with profiler if profiler is not None else contextlib.nullcontext():
        adapter = NodeClassificationAdapter(dataset)
        searcher = AutoACSearcher(adapter, model_name, config, space=space,
                                  seed=seed)
        search = searcher.search()
        artifacts = retrain_node_classification_artifacts(
            dataset, model_name, search,
            hidden_dim=config.hidden_dim, out_dim=config.out_dim,
            config=config.retrain, space=space, **config.model_kwargs)
    return AutoACResult(search=search, final=artifacts.result,
                        artifacts=artifacts if keep_artifacts else None,
                        profile=profiler.report() if profiler else None)


def run_autoac_link_prediction(task: LinkPredictionTask,
                               model_name: str = "simple_hgn",
                               config: Optional[AutoACConfig] = None,
                               space: Optional[SearchSpace] = None,
                               retrain_config: Optional[LinkPredConfig] = None,
                               seed: int = 0) -> AutoACLinkResult:
    """Full AutoAC pipeline for link prediction (search → retrain)."""
    config = config or AutoACConfig()
    adapter = LinkPredictionAdapter(task)
    searcher = AutoACSearcher(adapter, model_name, config, space=space,
                              seed=seed)
    search = searcher.search()
    final = retrain_link_prediction(
        task, model_name, search,
        hidden_dim=config.hidden_dim, out_dim=config.out_dim,
        config=retrain_config or LinkPredConfig(), space=space,
        **config.model_kwargs)
    return AutoACLinkResult(search=search, final=final)


__all__ = ["AutoACResult", "AutoACLinkResult", "run_autoac",
           "run_autoac_link_prediction"]
