"""The AutoAC bi-level search (paper §IV, Algorithm 1).

Alternates, per epoch:

1. **Upper level** — update the completion parameters ``alpha`` on the
   validation loss.  In discrete mode the gradient is taken at the
   projected one-hot point ``prox_C1(alpha)`` and the update is a proximal
   step inside the ``[0,1]`` box (NASP); in mixture mode ``alpha`` is a
   softmax relaxation trained by Adam, optionally with the DARTS
   second-order unrolled correction — the paper's "w/o discrete
   constraints" ablation (Table VIII).
2. **Lower level** — update the GNN weights ``w`` (plus the clustering
   head) on ``L_train + lambda * L_GmoC``, with the refined discrete
   choices active.
3. **Cluster refresh** — V⁻ nodes are re-assigned to clusters from the
   current soft assignment matrix (or by k-means in the EM ablations).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..completion import SearchSpace, WeightedCompletionFeatures
from ..datasets import HeteroDataset
from ..graph.sampler import NeighborSampler
from ..models import build_model
from ..perf.profiles import current_profile
from ..tensor import Adam, Tensor, gather_rows, no_grad
from ..training.metrics import alpha_entropy
from .adapters import TaskAdapter
from .alpha import CompletionParameters, MixtureParameters
from .clustering import EMClusterAssigner, ModularityClusteringHead, modularity_loss
from .config import AutoACConfig


@dataclass
class SearchResult:
    """Everything the retraining stage (and the analysis figures) need."""

    assignment: np.ndarray          # op index per V⁻ node
    cluster_labels: np.ndarray      # cluster id per V⁻ node
    alpha: np.ndarray               # final completion parameters (rows × |O|)
    op_names: List[str]
    best_val_score: float
    epochs_run: int
    search_seconds: float
    history: Dict[str, List[float]] = field(default_factory=dict)

    def op_distribution(self) -> Dict[str, float]:
        """Fraction of V⁻ nodes assigned to each op (paper Fig. 5)."""
        total = max(len(self.assignment), 1)
        return {
            name: float(np.sum(self.assignment == index)) / total
            for index, name in enumerate(self.op_names)
        }


class AutoACSearcher:
    """Runs the completion-operation search for one dataset + backbone."""

    def __init__(self, adapter: TaskAdapter, model_name: str,
                 config: Optional[AutoACConfig] = None,
                 space: Optional[SearchSpace] = None,
                 seed: int = 0) -> None:
        self.adapter = adapter
        self.dataset: HeteroDataset = adapter.dataset
        self.config = config or AutoACConfig()
        self.space = space or SearchSpace()
        self.rng = np.random.default_rng(seed)
        cfg = self.config

        self.features = WeightedCompletionFeatures(
            self.dataset, cfg.hidden_dim, space=self.space)
        self.model = build_model(model_name, self.dataset,
                                 hidden_dim=cfg.hidden_dim,
                                 out_dim=cfg.out_dim, **cfg.model_kwargs)

        self.num_missing = self.dataset.missing_global_ids.shape[0]
        if self.num_missing == 0:
            raise ValueError("dataset has no missing attributes to search over")

        # clustering infrastructure --------------------------------------
        self.cluster_method = cfg.cluster_method
        if self.cluster_method == "none":
            self.num_rows = self.num_missing
            self.cluster_labels = np.arange(self.num_missing, dtype=np.int64)
            self.cluster_head = None
            self.em_assigner = None
        elif self.cluster_method == "modularity":
            self.num_rows = cfg.num_clusters
            self.cluster_labels = self.rng.integers(
                0, cfg.num_clusters, size=self.num_missing, dtype=np.int64)
            self.cluster_head = ModularityClusteringHead(cfg.hidden_dim,
                                                         cfg.num_clusters)
            self.em_assigner = None
            graph = self.dataset.graph
            self._adj = graph.adjacency(symmetric=True)
            self._degrees = graph.degrees()
        else:  # em / em_warmup
            self.num_rows = cfg.num_clusters
            warmup = cfg.em_warmup if self.cluster_method == "em_warmup" else 0
            self.em_assigner = EMClusterAssigner(self.num_missing,
                                                 cfg.num_clusters, warmup,
                                                 self.rng)
            self.cluster_labels = self.em_assigner.labels
            self.cluster_head = None

        # alpha ----------------------------------------------------------
        if cfg.discrete:
            self.alpha = CompletionParameters(self.num_rows, len(self.space),
                                              rng=self.rng)
            self.mixture = None
            self.alpha_optimizer = None
        else:
            self.mixture = MixtureParameters(self.num_rows, len(self.space),
                                             rng=self.rng)
            self.alpha = None
            self.alpha_optimizer = Adam([self.mixture.logits],
                                        lr=cfg.alpha_lr,
                                        weight_decay=cfg.alpha_weight_decay)

        # lower-level optimizer -------------------------------------------
        w_params = self.model.parameters() + self.features.parameters()
        if self.cluster_head is not None:
            w_params += self.cluster_head.parameters()
        self._w_params = w_params
        self.w_optimizer = Adam(w_params, lr=cfg.w_lr,
                                weight_decay=cfg.w_weight_decay)

        # candidate cache --------------------------------------------------
        # Per-epoch reuse of the completion candidates (projector output +
        # per-op completions) across the upper step, lower step and
        # validation pass; see WeightedCompletionFeatures.candidate_mode.
        # The unrolled mixture ablation differentiates the candidate
        # forwards w.r.t. w in its upper step, so caching is unsound there.
        if cfg.candidate_cache is None:
            use_cache = current_profile().candidate_cache
        else:
            use_cache = bool(cfg.candidate_cache)
        if not cfg.discrete and cfg.unrolled:
            use_cache = False
        self.use_candidate_cache = use_cache

        # sampled lower level ---------------------------------------------
        # cfg.minibatch makes every lower w step train on a neighbor-
        # sampled view around a fresh batch of training seeds; the upper
        # alpha step, validation and the refresh signal stay full-graph.
        self._mb_sampler = None
        if cfg.minibatch is not None:
            if not getattr(self.model, "supports_sampling", False):
                raise ValueError(
                    f"minibatch search needs a supports_sampling backbone; "
                    f"{model_name!r} is full-graph only")
            if not hasattr(self.adapter, "train_loss_on_batch"):
                raise ValueError(
                    "minibatch search needs an adapter exposing "
                    "train_loss_on_batch (node classification)")
            mb = cfg.minibatch
            num_layers = mb.num_layers or getattr(self.model, "num_layers", 2)
            self._mb_sampler = NeighborSampler(
                self.dataset.graph, fanout=mb.fanout, num_layers=num_layers,
                seed=mb.sample_seed)
            self._mb_rng = np.random.default_rng(mb.sample_seed)
            n = self.dataset.graph.num_nodes
            # stochastic refresh signals: per-node rows updated whenever a
            # view touches them (plain data buffers, not activations).
            # The assignment buffer starts one-hot at the initial random
            # clustering so the first refresh preserves it for nodes no
            # view has touched yet (a uniform init would argmax them all
            # into cluster 0); the h0 buffer is seeded lazily from one
            # no-grad full forward on the first lower step.
            if self.cluster_head is not None:
                self._assignment_buffer = np.zeros((n, cfg.num_clusters))
                self._assignment_buffer[self.dataset.missing_global_ids,
                                        self.cluster_labels] = 1.0
            if self.em_assigner is not None:
                self._h0_buffer = None

    # ------------------------------------------------------------------
    # weight plumbing
    # ------------------------------------------------------------------
    def _set_node_weights(self, rows: Tensor) -> None:
        """Install per-node op weights derived from per-row ``rows``."""
        self.features.set_weights(gather_rows(rows, self.cluster_labels))

    def _current_discrete_rows(self, requires_grad: bool = False) -> Tensor:
        if self.alpha is not None:
            return Tensor(self.alpha.discrete(), requires_grad=requires_grad)
        return Tensor(
            np.eye(len(self.space))[self.mixture.chosen_ops()],
            requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # candidate-cache plumbing
    # ------------------------------------------------------------------
    def _candidate_mode(self, mode: str):
        """Enter a cached-replay mode, populating the snapshot if needed."""
        if not self.use_candidate_cache:
            return self.features.candidate_mode(None)
        if not self.features.has_candidates():
            self.features.refresh_candidates()
        return self.features.candidate_mode(mode)

    def _invalidate_candidates(self) -> None:
        if self.use_candidate_cache:
            self.features.invalidate_candidates()

    # ------------------------------------------------------------------
    # upper level
    # ------------------------------------------------------------------
    def _upper_step_discrete(self) -> float:
        bar_alpha = self._current_discrete_rows(requires_grad=True)
        self._set_node_weights(bar_alpha)
        # dropout off: the completion choice should not chase dropout noise
        self.model.eval()
        self.features.eval()
        # detached candidates: the upper step consumes only d loss/d alpha
        # (the dirtied w grads are discarded below), so the cached op
        # outputs enter the graph as constants
        with self._candidate_mode("detached"):
            loss = self.adapter.val_loss(self.model, self.features)
        self.model.train()
        self.features.train()
        loss.backward()
        grad = bar_alpha.grad if bar_alpha.grad is not None else \
            np.zeros_like(self.alpha.values)
        self.alpha.update(grad, self.config.alpha_lr,
                          self.config.alpha_weight_decay)
        # the backward pass also dirtied w grads; discard them
        self.w_optimizer.zero_grad()
        return loss.item()

    def _upper_step_mixture(self) -> float:
        cfg = self.config
        if not cfg.unrolled:
            self.mixture.logits.zero_grad()
            self._set_node_weights(self.mixture.weights())
            self.model.eval()
            self.features.eval()
            with self._candidate_mode("detached"):
                loss = self.adapter.val_loss(self.model, self.features)
            self.model.train()
            self.features.train()
            loss.backward()
            self.alpha_optimizer.step()
            self.w_optimizer.zero_grad()
            return loss.item()
        return self._upper_step_mixture_unrolled()

    def _upper_step_mixture_unrolled(self) -> float:
        """DARTS second-order step: virtual w update + finite-diff Hessian."""
        cfg = self.config
        xi = cfg.w_lr
        backup = [p.data.copy() for p in self._w_params]

        # virtual step: w' = w - xi * grad_w L_train(w, alpha)
        self.w_optimizer.zero_grad()
        self.mixture.logits.zero_grad()
        self._set_node_weights(self.mixture.weights())
        self.adapter.train_loss(self.model, self.features).backward()
        grads_w = [None if p.grad is None else p.grad.copy()
                   for p in self._w_params]
        for p, g in zip(self._w_params, grads_w):
            if g is not None:
                p.data = p.data - xi * g

        # gradient at w': d_alpha L_val and d_w' L_val
        self.w_optimizer.zero_grad()
        self.mixture.logits.zero_grad()
        self._set_node_weights(self.mixture.weights())
        val_loss = self.adapter.val_loss(self.model, self.features)
        val_loss.backward()
        d_alpha = self.mixture.logits.grad.copy()
        d_w = [None if p.grad is None else p.grad.copy()
               for p in self._w_params]

        # finite-difference Hessian-vector product
        norm = np.sqrt(sum(float((g ** 2).sum()) for g in d_w if g is not None))
        eps = 1e-2 / max(norm, 1e-8)

        def alpha_grad_at(sign: float) -> np.ndarray:
            """Grad of train loss w.r.t. alpha at ``w ± eps·d_w``."""
            for p, base, g in zip(self._w_params, backup, d_w):
                p.data = base + sign * eps * g if g is not None else base.copy()
            self.w_optimizer.zero_grad()
            self.mixture.logits.zero_grad()
            self._set_node_weights(self.mixture.weights())
            self.adapter.train_loss(self.model, self.features).backward()
            return self.mixture.logits.grad.copy()

        grad_plus = alpha_grad_at(+1.0)
        grad_minus = alpha_grad_at(-1.0)
        hessian_term = (grad_plus - grad_minus) / (2.0 * eps)

        for p, base in zip(self._w_params, backup):
            p.data = base
        self.mixture.logits.grad = d_alpha - xi * hessian_term
        self.alpha_optimizer.step()
        self.w_optimizer.zero_grad()
        self.mixture.logits.zero_grad()
        return val_loss.item()

    # ------------------------------------------------------------------
    # lower level
    # ------------------------------------------------------------------
    def _lower_step_minibatch(self) -> Dict[str, float]:
        """Stochastic lower step: one sampled batch instead of the graph.

        The gradient of the batch cross-entropy is an unbiased estimate
        of the full train loss gradient (uniform seed batches); the
        modularity term is evaluated on the sampled sub-adjacency.  The
        per-epoch candidate cache is bypassed — a view computes its own
        handful of completion rows directly — but still invalidated, so
        the (full-graph) upper step never replays stale candidates.
        """
        cfg = self.config
        mb = cfg.minibatch
        if cfg.discrete:
            self._set_node_weights(self._current_discrete_rows())
        else:
            self._set_node_weights(self.mixture.weights())
        split = self.dataset.split
        size = min(mb.batch_size, split.train.shape[0])
        batch = self._mb_rng.choice(split.train, size=size, replace=False)
        seeds = self.dataset.graph.to_global(self.dataset.target_type, batch)
        view = self._mb_sampler.sample(seeds)
        self.w_optimizer.zero_grad()
        # one view feature forward, shared by the loss, the cluster head
        # and the refresh buffers (mirrors the full path's pre-step h0)
        h0_view = self.features(view)
        loss = self.adapter.train_loss_on_batch(self.model, self.features,
                                                view, batch, h0=h0_view)
        record: Dict[str, float] = {"train_loss": loss.item()}
        if self.cluster_head is not None:
            assignment = self.cluster_head(h0_view)
            sub_adj = view.adjacency_sparse(symmetric=True).to_scipy()
            if sub_adj.nnz:
                degrees = np.asarray(sub_adj.sum(axis=1)).ravel()
                lgmoc = modularity_loss(assignment, sub_adj, degrees,
                                        collapse_weight=cfg.collapse_weight)
                loss = loss + lgmoc * cfg.lambda_cluster
                record["lgmoc"] = lgmoc.item()
            self._assignment_buffer[view.node_ids] = assignment.data
            self._last_assignment = self._assignment_buffer
        if self.em_assigner is not None:
            if self._h0_buffer is None:
                with no_grad():
                    self._h0_buffer = self.features().data.copy()
            self._h0_buffer[view.node_ids] = h0_view.data
            self._last_h0 = self._h0_buffer
        loss.backward()
        self.w_optimizer.step()
        self._invalidate_candidates()  # w changed: snapshot is stale
        if not cfg.discrete:
            self.mixture.logits.zero_grad()
        return record

    def _lower_step(self) -> Dict[str, float]:
        cfg = self.config
        if cfg.minibatch is not None:
            return self._lower_step_minibatch()
        if cfg.discrete:
            self._set_node_weights(self._current_discrete_rows())
        else:
            self._set_node_weights(self.mixture.weights())
        self.w_optimizer.zero_grad()
        # rigged candidates: forward values are replayed from the epoch
        # snapshot while every op/projector rigs its live backward, so the
        # w update sees bit-identical gradients without recomputing the
        # candidate matmuls (the adapter loss re-runs the builder too)
        with self._candidate_mode("rigged"):
            h0 = self.features()
            loss = self.adapter.train_loss(self.model, self.features)
        record: Dict[str, float] = {"train_loss": loss.item()}
        if self.cluster_head is not None:
            assignment = self.cluster_head(h0)
            lgmoc = modularity_loss(assignment, self._adj, self._degrees,
                                    collapse_weight=cfg.collapse_weight)
            loss = loss + lgmoc * cfg.lambda_cluster
            record["lgmoc"] = lgmoc.item()
            self._last_assignment = assignment.data
        loss.backward()
        self.w_optimizer.step()
        self._invalidate_candidates()  # w changed: snapshot is stale
        if not cfg.discrete:
            self.mixture.logits.zero_grad()
        self._last_h0 = h0.data
        return record

    # ------------------------------------------------------------------
    def _refresh_clusters(self) -> None:
        if self.cluster_method == "none":
            return
        if self.cluster_method == "modularity":
            missing = self.dataset.missing_global_ids
            self.cluster_labels = self._last_assignment[missing].argmax(axis=1)
        else:
            missing = self.dataset.missing_global_ids
            self.cluster_labels = self.em_assigner.update(self._last_h0[missing])
        self._invalidate_candidates()

    # ------------------------------------------------------------------
    def search(self) -> SearchResult:
        """Run the bi-level search loop (Algorithm 1) to convergence.

        Alternates lower-level ``w`` steps with upper-level ``alpha`` steps
        (plus the clustering objective), early-stops on the validation
        score, and returns the best discrete assignment found.
        """
        cfg = self.config
        history: Dict[str, List[float]] = {
            "val_loss": [], "train_loss": [], "lgmoc": [], "val_score": [],
            "alpha_entropy": [],
        }
        best_score = -np.inf
        best_alpha = None
        best_labels = self.cluster_labels.copy()
        patience_left = cfg.patience
        start = time.perf_counter()
        epochs_run = 0
        for epoch in range(cfg.search_epochs):
            epochs_run = epoch + 1
            if epoch >= cfg.warmup_epochs:
                if cfg.discrete:
                    val_loss = self._upper_step_discrete()
                else:
                    val_loss = self._upper_step_mixture()
                history["val_loss"].append(val_loss)
            record = self._lower_step()
            history["train_loss"].append(record["train_loss"])
            if "lgmoc" in record:
                history["lgmoc"].append(record["lgmoc"])
            self._refresh_clusters()

            self._set_node_weights(self._current_discrete_rows())
            # the validation pass repopulates the candidate snapshot at the
            # post-step weights; next epoch's upper step replays it
            with self._candidate_mode("detached"):
                score = self.adapter.val_score(self.model, self.features)
            history["val_score"].append(score)
            # pure read of the current parameters — no RNG, no training
            # effect — so timelines never perturb search determinism
            history["alpha_entropy"].append(alpha_entropy(
                self.alpha.values if cfg.discrete
                else self.mixture.logits.data))
            if score >= best_score:
                # on exact ties keep the *latest* alpha — it has seen more
                # search steps (validation scores plateau early on small
                # validation splits) — but only strict improvements reset
                # the patience budget
                if score > best_score:
                    patience_left = cfg.patience
                else:
                    patience_left -= 1
                best_score = score
                best_alpha = (self.alpha.values.copy() if cfg.discrete
                              else self.mixture.logits.data.copy())
                best_labels = self.cluster_labels.copy()
            else:
                patience_left -= 1
            if patience_left <= 0:
                break
        elapsed = time.perf_counter() - start

        if best_alpha is None:
            best_alpha = (self.alpha.values.copy() if cfg.discrete
                          else self.mixture.logits.data.copy())
        chosen_per_row = best_alpha.argmax(axis=1)
        assignment = chosen_per_row[best_labels]
        return SearchResult(
            assignment=assignment,
            cluster_labels=best_labels,
            alpha=best_alpha,
            op_names=list(self.space),
            best_val_score=float(best_score),
            epochs_run=epochs_run,
            search_seconds=elapsed,
            history=history,
        )


__all__ = ["AutoACSearcher", "SearchResult"]
