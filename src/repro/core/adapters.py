"""Task adapters: expose train/val losses to the bi-level search.

The searcher is task-agnostic — node classification (Tables II/III) and
link prediction (Table V) plug in through this small protocol.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from ..completion import FeatureBuilder
from ..datasets import HeteroDataset
from ..models import BaseHGNN
from ..tensor import Tensor, binary_cross_entropy_with_logits, cross_entropy, no_grad
from ..training.link_prediction import LinkPredictionTask, _pair_scores
from ..training.metrics import macro_f1, roc_auc


class TaskAdapter(Protocol):
    """What the bi-level search needs from a downstream task.

    The searcher alternates ``train_loss`` (lower-level ``w`` updates) and
    ``val_loss`` (upper-level ``alpha`` updates); ``val_score`` drives early
    stopping and model selection.
    """

    dataset: HeteroDataset

    def train_loss(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        """Differentiable loss on the training split."""
        ...

    def val_loss(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        """Differentiable loss on the validation split."""
        ...

    def val_score(self, model: BaseHGNN, features: FeatureBuilder) -> float:
        """Scalar validation quality (higher is better); no gradient."""
        ...


class NodeClassificationAdapter:
    """Cross-entropy on the 24% train split; macro-F1 on the 6% val split."""

    def __init__(self, dataset: HeteroDataset) -> None:
        self.dataset = dataset

    def _logits(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        return model(features())

    def train_loss(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        split = self.dataset.split
        logits = self._logits(model, features)
        loss = cross_entropy(logits[split.train], self.dataset.labels[split.train])
        if getattr(model, "has_auxiliary_loss", False):
            loss = loss + model.auxiliary_loss()
        return loss

    def train_loss_on_batch(self, model: BaseHGNN, features: FeatureBuilder,
                            view, batch_local: np.ndarray,
                            h0: Optional[Tensor] = None) -> Tensor:
        """Training loss of one sampled batch (the stochastic lower step).

        ``view`` is a :class:`~repro.graph.GraphView` whose seeds are the
        ``batch_local`` target-type nodes; ``h0`` is built for the view
        only (callers that already have it pass it in to skip a second
        builder forward), so this never touches an ``(N, hidden)``
        activation.
        """
        logits = model(features(view) if h0 is None else h0, view=view)
        loss = cross_entropy(logits, self.dataset.labels[batch_local])
        if getattr(model, "has_auxiliary_loss", False):
            loss = loss + model.auxiliary_loss()
        return loss

    def val_loss(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        split = self.dataset.split
        logits = self._logits(model, features)
        return cross_entropy(logits[split.val], self.dataset.labels[split.val])

    def val_score(self, model: BaseHGNN, features: FeatureBuilder) -> float:
        """Negative validation loss (smoother than F1 on small val splits)."""
        model.eval()
        features.eval()
        with no_grad():
            loss = self.val_loss(model, features).item()
        model.train()
        features.train()
        return -loss


class LinkPredictionAdapter:
    """BCE on training edges (fresh negatives each call); val ROC-AUC."""

    def __init__(self, task: LinkPredictionTask) -> None:
        self.task = task
        self.dataset = task.train_graph_dataset

    def _scores(self, model: BaseHGNN, features: FeatureBuilder,
                pairs: np.ndarray) -> Tensor:
        embeddings = model.encode(features())
        return _pair_scores(embeddings, pairs)

    def train_loss(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        split = self.task.split
        negatives = self.task.sample_train_negatives()
        pairs = np.concatenate([split.train_pos, negatives], axis=1)
        labels = np.concatenate([np.ones(split.train_pos.shape[1]),
                                 np.zeros(negatives.shape[1])])
        loss = binary_cross_entropy_with_logits(
            self._scores(model, features, pairs), labels)
        if getattr(model, "has_auxiliary_loss", False):
            loss = loss + model.auxiliary_loss()
        return loss

    def val_loss(self, model: BaseHGNN, features: FeatureBuilder) -> Tensor:
        split = self.task.split
        pairs = np.concatenate([split.val_pos, split.val_neg], axis=1)
        labels = np.concatenate([np.ones(split.val_pos.shape[1]),
                                 np.zeros(split.val_neg.shape[1])])
        return binary_cross_entropy_with_logits(
            self._scores(model, features, pairs), labels)

    def val_score(self, model: BaseHGNN, features: FeatureBuilder) -> float:
        split = self.task.split
        model.eval()
        features.eval()
        with no_grad():
            pos = self._scores(model, features, split.val_pos).data
            neg = self._scores(model, features, split.val_neg).data
        model.train()
        features.train()
        labels = np.concatenate([np.ones(pos.size), np.zeros(neg.size)])
        return roc_auc(labels, np.concatenate([pos, neg]))


__all__ = ["TaskAdapter", "NodeClassificationAdapter", "LinkPredictionAdapter"]
