"""Retraining stage: train a fresh backbone with the searched assignment.

The paper's pipeline is *search → retrain*: after the bi-level search
converges, the discrete completion choices are frozen and the GNN is
retrained from scratch (Table IV reports the two stages separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..completion import FixedAssignmentFeatures, SearchSpace
from ..datasets import HeteroDataset
from ..models import build_model
from ..training import (
    LinkPredConfig,
    LinkPredResult,
    LinkPredictionTask,
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    TrainConfig,
    TrainResult,
)
from .search import SearchResult


@dataclass
class RetrainArtifacts:
    """A finished retraining run *with* the trained modules attached.

    ``retrain_node_classification`` historically returned only the
    :class:`TrainResult` metrics; the serving layer additionally needs the
    trained backbone and feature builder to export a
    :class:`~repro.serving.ModelBundle`.
    """

    model: object                      # BaseHGNN (kept loose to avoid cycles)
    features: FixedAssignmentFeatures
    result: TrainResult


def retrain_assignment_artifacts(
    dataset: HeteroDataset, model_name: str, assignment: np.ndarray,
    hidden_dim: int = 64, out_dim: int = 64,
    config: Optional[TrainConfig] = None,
    space: Optional[SearchSpace] = None,
    **model_kwargs,
) -> RetrainArtifacts:
    """Train a fresh backbone under a raw per-node op ``assignment``.

    The assignment-level entry point shared by the search→retrain
    pipeline and by :func:`repro.core.evaluate_architecture` (the
    autotune trial body) — trial-based strategies propose assignments
    directly, without a :class:`SearchResult` around them.
    """
    features = FixedAssignmentFeatures(dataset, hidden_dim, assignment,
                                       space=space)
    model = build_model(model_name, dataset, hidden_dim=hidden_dim,
                        out_dim=out_dim, **model_kwargs)
    trainer = NodeClassificationTrainer(model, features, dataset,
                                        config or TrainConfig())
    result = trainer.train()
    return RetrainArtifacts(model=model, features=features, result=result)


def retrain_node_classification_artifacts(
    dataset: HeteroDataset, model_name: str, search: SearchResult,
    hidden_dim: int = 64, out_dim: int = 64,
    config: Optional[TrainConfig] = None,
    space: Optional[SearchSpace] = None,
    **model_kwargs,
) -> RetrainArtifacts:
    """Retrain and keep the trained model + feature builder (export hook)."""
    return retrain_assignment_artifacts(
        dataset, model_name, search.assignment, hidden_dim=hidden_dim,
        out_dim=out_dim, config=config, space=space, **model_kwargs)


def retrain_node_classification(
    dataset: HeteroDataset, model_name: str, search: SearchResult,
    hidden_dim: int = 64, out_dim: int = 64,
    config: Optional[TrainConfig] = None,
    space: Optional[SearchSpace] = None,
    **model_kwargs,
) -> TrainResult:
    """Train a fresh model with the searched per-node completion choices."""
    return retrain_node_classification_artifacts(
        dataset, model_name, search, hidden_dim=hidden_dim, out_dim=out_dim,
        config=config, space=space, **model_kwargs).result


def retrain_link_prediction(
    task: LinkPredictionTask, model_name: str, search: SearchResult,
    hidden_dim: int = 64, out_dim: int = 64,
    config: Optional[LinkPredConfig] = None,
    space: Optional[SearchSpace] = None,
    **model_kwargs,
) -> LinkPredResult:
    """Retrain from scratch on the searched assignment, for link prediction.

    Mirrors :func:`retrain_node_classification`: the discrete completion
    assignment found by the search is frozen into
    :class:`~repro.completion.FixedAssignmentFeatures` and a fresh model is
    trained on the edge-masked graph.
    """
    dataset = task.train_graph_dataset
    features = FixedAssignmentFeatures(dataset, hidden_dim, search.assignment,
                                       space=space)
    model = build_model(model_name, dataset, hidden_dim=hidden_dim,
                        out_dim=out_dim, **model_kwargs)
    trainer = LinkPredictionTrainer(model, features, task,
                                    config or LinkPredConfig())
    return trainer.train()


__all__ = ["RetrainArtifacts", "retrain_assignment_artifacts",
           "retrain_node_classification",
           "retrain_node_classification_artifacts",
           "retrain_link_prediction"]
