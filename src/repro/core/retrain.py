"""Retraining stage: train a fresh backbone with the searched assignment.

The paper's pipeline is *search → retrain*: after the bi-level search
converges, the discrete completion choices are frozen and the GNN is
retrained from scratch (Table IV reports the two stages separately).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..completion import FixedAssignmentFeatures, SearchSpace
from ..datasets import HeteroDataset
from ..models import build_model
from ..training import (
    LinkPredConfig,
    LinkPredResult,
    LinkPredictionTask,
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    TrainConfig,
    TrainResult,
)
from .search import SearchResult


def retrain_node_classification(
    dataset: HeteroDataset, model_name: str, search: SearchResult,
    hidden_dim: int = 64, out_dim: int = 64,
    config: Optional[TrainConfig] = None,
    space: Optional[SearchSpace] = None,
    **model_kwargs,
) -> TrainResult:
    """Train a fresh model with the searched per-node completion choices."""
    features = FixedAssignmentFeatures(dataset, hidden_dim, search.assignment,
                                       space=space)
    model = build_model(model_name, dataset, hidden_dim=hidden_dim,
                        out_dim=out_dim, **model_kwargs)
    trainer = NodeClassificationTrainer(model, features, dataset,
                                        config or TrainConfig())
    return trainer.train()


def retrain_link_prediction(
    task: LinkPredictionTask, model_name: str, search: SearchResult,
    hidden_dim: int = 64, out_dim: int = 64,
    config: Optional[LinkPredConfig] = None,
    space: Optional[SearchSpace] = None,
    **model_kwargs,
) -> LinkPredResult:
    """Retrain from scratch on the searched assignment, for link prediction.

    Mirrors :func:`retrain_node_classification`: the discrete completion
    assignment found by the search is frozen into
    :class:`~repro.completion.FixedAssignmentFeatures` and a fresh model is
    trained on the edge-masked graph.
    """
    dataset = task.train_graph_dataset
    features = FixedAssignmentFeatures(dataset, hidden_dim, search.assignment,
                                       space=space)
    model = build_model(model_name, dataset, hidden_dim=hidden_dim,
                        out_dim=out_dim, **model_kwargs)
    trainer = LinkPredictionTrainer(model, features, task,
                                    config or LinkPredConfig())
    return trainer.train()


__all__ = ["retrain_node_classification", "retrain_link_prediction"]
