"""Configuration dataclasses for the AutoAC search."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..training.minibatch import MiniBatchConfig
from ..training.trainer import TrainConfig


@dataclass
class AutoACConfig:
    """Hyperparameters of the bi-level completion-operation search.

    Defaults follow the paper (§V-B): Adam(5e-4, wd 1e-4) for the GNN
    weights ``w``; Adam-free proximal updates with lr 5e-3 / wd 1e-5 for
    the completion parameters ``alpha``; loss coefficient ``lambda`` 0.4
    and ``M`` ≈ 8-12 clusters.
    """

    hidden_dim: int = 64
    out_dim: int = 64
    num_clusters: int = 8
    lambda_cluster: float = 0.4
    alpha_lr: float = 5e-3
    alpha_weight_decay: float = 1e-5
    w_lr: float = 5e-4
    w_weight_decay: float = 1e-4
    search_epochs: int = 120
    patience: int = 25
    #: True → AutoAC proper (proximal, one active op);
    #: False → the "w/o discrete constraints" DARTS-style ablation
    discrete: bool = True
    #: second-order unrolled gradient in mixture mode (ignored when discrete)
    unrolled: bool = True
    #: 'modularity' (AutoAC), 'em', 'em_warmup' (Fig. 3 ablations), 'none'
    cluster_method: str = "modularity"
    #: weight of the DMoN collapse regularizer inside L_GmoC (0 disables)
    collapse_weight: float = 1.0
    em_warmup: int = 10
    #: epochs of pure-w training before alpha updates start
    warmup_epochs: int = 5
    #: reuse completion candidates across the upper/lower steps of one
    #: epoch (see repro.completion.WeightedCompletionFeatures); None
    #: defers to the active runtime profile (repro.perf: off in
    #: "reference", on in "fast"); ignored for the unrolled mixture
    #: ablation, whose upper step needs live w gradients
    candidate_cache: Optional[bool] = None
    #: sampled lower level: when set, every lower ``w`` step trains on a
    #: neighbor-sampled view around a batch of training seeds (only the
    #: ``batch_size`` / ``fanout`` / ``num_layers`` / ``sample_seed``
    #: fields are consulted), while the upper alpha step, the clustering
    #: refresh signal and validation stay full-graph — the paper's
    #: Algorithm 1 unchanged in expectation.  Requires a
    #: ``supports_sampling`` backbone and a node-classification adapter.
    minibatch: Optional[MiniBatchConfig] = None
    retrain: TrainConfig = field(default_factory=TrainConfig)
    model_kwargs: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid = {"modularity", "em", "em_warmup", "none"}
        if self.cluster_method not in valid:
            raise ValueError(f"cluster_method must be one of {sorted(valid)}")
        if self.num_clusters < 2:
            raise ValueError("num_clusters must be >= 2")
        if not 0.0 <= self.lambda_cluster:
            raise ValueError("lambda_cluster must be non-negative")


__all__ = ["AutoACConfig"]
