"""``repro.faults`` — deterministic, seed-derived fault injection.

The chaos substrate the robustness guarantees are *proved* with: a
:class:`FaultPlan` arms named sites (raise / delay / corrupt / kill)
whose fire decisions are pure functions of the plan seed, and
:func:`fault_site` hooks compiled down to a no-op when nothing is armed.
Plans propagate to subprocess workers through ``REPRO_FAULT_PLAN``.

Instrumented sites (see docs/ROBUSTNESS.md for the full table):

========================  ==================================================
``engine.flush``          entry of every serving micro-batch
``engine.forward``        before each model forward pass
``onboard.apply``         inside an onboard, before the WAL append
``io.atomic_write``       payload bytes of every atomic artifact write
``journal.append``        every fsync'd JSONL line (journal + WAL)
``worker.trial``          trial execution body (keys ``"<trial>:<attempt>"``)
``scheduler.batch``       scheduler batch dispatch
========================  ==================================================
"""

from .plan import (
    KILL_EXIT_CODE,
    PLAN_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    active_plan,
    arm,
    arm_from_env,
    armed,
    disarm,
    fault_site,
    is_armed,
    plan_from_env,
)

__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "KILL_EXIT_CODE",
    "PLAN_ENV_VAR",
    "active_plan",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "fault_site",
    "is_armed",
    "plan_from_env",
]
