"""Deterministic, seed-derived fault injection.

A :class:`FaultPlan` names *sites* in the codebase (``"engine.flush"``,
``"io.atomic_write"``, ``"worker.trial"``, ...) and attaches an *action*
to each: raise, delay, corrupt the payload, or kill the process.  Code
under test calls :func:`fault_site` at those points; with no plan armed
the hook is a global-read + ``None``-check and returns immediately, so
production paths pay nothing measurable.

Determinism is the whole point — a chaos run must be *replayable*:

* every fire/skip decision is a pure function of ``(plan seed, site,
  key-or-visit-index)`` through SHA-256, never of wall clock, PID, or
  Python hash randomization;
* per-site visit counters are process-local, so a single-threaded
  driver observes the identical fault sequence on every run;
* callers that need cross-process determinism (the autotune worker,
  whose pool processes each hold their own counters) pass an explicit
  ``key`` — the decision then depends only on the key, and bounded
  retries are expressed as keys like ``"3:0"`` (trial 3, attempt 0)
  that simply stop matching on the retry.

Plans cross process boundaries through the ``REPRO_FAULT_PLAN``
environment variable (inline JSON, or a path to a JSON file), which
``multiprocessing`` workers inherit under fork *and* spawn:
:func:`arm` exports it by default, and this module re-arms from the
environment on import.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: environment variable carrying the armed plan (inline JSON or a path)
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: process exit code used by the ``kill`` action, distinctive on purpose
#: so a chaos harness can tell an injected death from a genuine crash
KILL_EXIT_CODE = 23

_ACTIONS = ("raise", "delay", "corrupt", "kill")


class FaultInjected(RuntimeError):
    """Raised by the ``raise`` action (and never by anything else)."""


def _hash_unit(seed: int, site: str, token: str) -> float:
    """A uniform [0, 1) draw, pure in (seed, site, token)."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{token}".encode()).digest()
    return int.from_bytes(digest[:7], "big") / float(1 << 56)


@dataclass(frozen=True)
class FaultRule:
    """One site's behaviour inside a :class:`FaultPlan`.

    ``probability`` gates each visit through the seed-derived hash;
    ``after`` skips the first N visits; ``max_hits`` caps how many times
    the rule fires (both counted per process).  ``keys`` restricts the
    rule to visits carrying a matching explicit key — the cross-process
    deterministic mode.
    """

    site: str
    action: str = "raise"            #: raise | delay | corrupt | kill
    probability: float = 1.0
    latency_ms: float = 0.0          #: sleep for the ``delay`` action
    after: int = 0                   #: skip the first N visits
    max_hits: Optional[int] = None   #: stop firing after N hits
    keys: Optional[Tuple[str, ...]] = None  #: explicit key matches only
    message: str = ""                #: extra text for raised faults

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} "
                             f"(choose from {_ACTIONS})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.latency_ms < 0:
            raise ValueError("latency_ms must be >= 0")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"site": self.site, "action": self.action,
                               "probability": self.probability}
        if self.latency_ms:
            out["latency_ms"] = self.latency_ms
        if self.after:
            out["after"] = self.after
        if self.max_hits is not None:
            out["max_hits"] = self.max_hits
        if self.keys is not None:
            out["keys"] = list(self.keys)
        if self.message:
            out["message"] = self.message
        return out

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        keys = payload.get("keys")
        return cls(
            site=str(payload["site"]),
            action=str(payload.get("action", "raise")),
            probability=float(payload.get("probability", 1.0)),
            latency_ms=float(payload.get("latency_ms", 0.0)),
            after=int(payload.get("after", 0)),
            max_hits=(None if payload.get("max_hits") is None
                      else int(payload["max_hits"])),
            keys=None if keys is None else tuple(str(k) for k in keys),
            message=str(payload.get("message", "")),
        )


@dataclass
class _SiteState:
    visits: int = 0
    hits: int = 0


class FaultPlan:
    """A seed plus the rules for every instrumented site."""

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        self.seed = int(seed)
        self.rules: List[FaultRule] = list(rules)
        self._by_site: Dict[str, List[FaultRule]] = {}
        for rule in self.rules:
            self._by_site.setdefault(rule.site, []).append(rule)
        self._state: Dict[int, _SiteState] = {}
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        rules = [FaultRule.from_dict(entry)
                 for entry in payload.get("rules", [])]
        return cls(rules, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    # -- bookkeeping ----------------------------------------------------
    def sites(self) -> List[str]:
        return sorted(self._by_site)

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-rule visit/hit counts (for chaos-report accounting)."""
        with self._lock:
            return {f"{rule.site}#{index}": {
                        "visits": self._state.get(index, _SiteState()).visits,
                        "hits": self._state.get(index, _SiteState()).hits}
                    for index, rule in enumerate(self.rules)}

    # -- the decision ---------------------------------------------------
    def _decide(self, rule: FaultRule, index: int,
                key: Optional[str]) -> bool:
        """One visit through ``rule``; True → the rule fires.

        Holds the lock only for counter updates; the hash draw is pure.
        """
        with self._lock:
            state = self._state.setdefault(index, _SiteState())
            state.visits += 1
            visit = state.visits
            if rule.max_hits is not None and state.hits >= rule.max_hits:
                return False
        if visit <= rule.after:
            return False
        if rule.keys is not None:
            if key is None or key not in rule.keys:
                return False
        token = key if key is not None else f"visit{visit}"
        if rule.probability < 1.0:
            if _hash_unit(self.seed, rule.site, token) >= rule.probability:
                return False
        with self._lock:
            state = self._state[index]
            if rule.max_hits is not None and state.hits >= rule.max_hits:
                return False
            state.hits += 1
        return True

    def visit(self, site: str, payload: Any = None,
              key: Optional[str] = None) -> Any:
        """Apply every matching rule for one pass through ``site``."""
        rules = self._by_site.get(site)
        if not rules:
            return payload
        for index, rule in enumerate(self.rules):
            if rule.site != site or not self._decide(rule, index, key):
                continue
            _count_injection(site, rule.action)
            if rule.action == "delay":
                time.sleep(rule.latency_ms / 1e3)
            elif rule.action == "corrupt":
                payload = self._corrupt(rule, payload, key)
            elif rule.action == "kill":
                # simulate kill -9: no atexit, no finally blocks, no
                # flushing — exactly what a chaos harness needs to prove
                # crash-safety of the writers upstream
                os._exit(KILL_EXIT_CODE)
            else:
                raise FaultInjected(
                    f"injected fault at {site!r}"
                    + (f" (key={key})" if key is not None else "")
                    + (f": {rule.message}" if rule.message else ""))
        return payload

    def _corrupt(self, rule: FaultRule, payload: Any,
                 key: Optional[str]) -> Any:
        """Deterministically flip bytes in a bytes-like payload."""
        if payload is None:
            raise FaultInjected(
                f"corrupt action at {rule.site!r} got no payload")
        data = bytearray(payload)
        if not data:
            return bytes(data)
        token = key if key is not None else "corrupt"
        # flip 8 deterministic positions (fewer for tiny payloads)
        for flip in range(min(8, len(data))):
            unit = _hash_unit(self.seed, rule.site, f"{token}|{flip}")
            position = int(unit * len(data))
            data[position] ^= 0xFF
        return bytes(data)


# ---------------------------------------------------------------------------
# The armed-plan singleton and the fault_site hook
# ---------------------------------------------------------------------------
_PLAN: Optional[FaultPlan] = None
_counter = None  # lazy: telemetry import kept out of the hot no-op path


def _count_injection(site: str, action: str) -> None:
    global _counter
    if _counter is None:
        from ..telemetry import get_registry
        _counter = get_registry().counter(
            "fault_injections_total", "Faults fired by the armed plan",
            labels=("site", "action"))
    _counter.inc(site=site, action=action)


def fault_site(site: str, payload: Any = None,
               key: Optional[str] = None) -> Any:
    """The injection hook.  Compiles down to a no-op when disarmed.

    Returns ``payload`` (possibly corrupted by a ``corrupt`` rule);
    ``raise`` rules raise :class:`FaultInjected`, ``delay`` rules sleep,
    ``kill`` rules terminate the process with :data:`KILL_EXIT_CODE`.
    """
    plan = _PLAN
    if plan is None:
        return payload
    return plan.visit(site, payload, key=key)


def active_plan() -> Optional[FaultPlan]:
    """The armed plan, or ``None``."""
    return _PLAN


def is_armed() -> bool:
    return _PLAN is not None


def arm(plan: FaultPlan, export_env: bool = True) -> FaultPlan:
    """Arm ``plan`` process-wide; ``export_env`` ships it to children."""
    global _PLAN
    _PLAN = plan
    if export_env:
        os.environ[PLAN_ENV_VAR] = plan.to_json()
    return plan


def disarm() -> None:
    """Disarm and stop exporting to child processes."""
    global _PLAN
    _PLAN = None
    os.environ.pop(PLAN_ENV_VAR, None)


@contextlib.contextmanager
def armed(plan: FaultPlan, export_env: bool = True):
    """Scoped arming (tests); restores the previous plan and env var."""
    global _PLAN
    previous_plan = _PLAN
    previous_env = os.environ.get(PLAN_ENV_VAR)
    try:
        yield arm(plan, export_env=export_env)
    finally:
        _PLAN = previous_plan
        if previous_env is None:
            os.environ.pop(PLAN_ENV_VAR, None)
        else:
            os.environ[PLAN_ENV_VAR] = previous_env


def plan_from_env() -> Optional[FaultPlan]:
    """Parse :data:`PLAN_ENV_VAR` (inline JSON, or a path to JSON)."""
    raw = os.environ.get(PLAN_ENV_VAR, "").strip()
    if not raw:
        return None
    if raw.startswith("{"):
        return FaultPlan.from_json(raw)
    return FaultPlan.load(raw)


def arm_from_env() -> Optional[FaultPlan]:
    """Arm the environment's plan, if any (workers inherit plans here)."""
    plan = plan_from_env()
    if plan is not None:
        global _PLAN
        _PLAN = plan
    return plan


# a spawned/forked worker re-imports this module with the parent's
# environment: the plan follows the process tree with no plumbing
arm_from_env()


__all__ = [
    "FaultInjected",
    "FaultPlan",
    "FaultRule",
    "KILL_EXIT_CODE",
    "PLAN_ENV_VAR",
    "active_plan",
    "arm",
    "arm_from_env",
    "armed",
    "disarm",
    "fault_site",
    "is_armed",
    "plan_from_env",
]
