"""Adjacency normalizations used by the completion operations and GNNs.

The three topology-dependent completion operations of the paper map onto:

* ``mean``  — row-normalized adjacency restricted to attributed neighbors,
* ``gcn``   — symmetric re-normalized adjacency (Kipf & Welling),
* ``ppnp``  — personalized-PageRank diffusion (Klicpera et al.), either the
  exact closed form ``alpha (I - (1-alpha) Â)^{-1}`` or the APPNP power
  iteration that approximates it without a dense inverse.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..tensor.sparse import SparseTensor, as_sparse_tensor

#: normalization modes understood by :func:`normalize_adjacency` and the
#: graph-level caches: ``"none"`` (raw binary adjacency), ``"row"``
#: (``D^{-1} A``, mean aggregation) and ``"sym"``
#: (``D^{-1/2} A D^{-1/2}``, GCN renormalization).
NORMALIZATION_MODES = ("none", "row", "sym")


class LRUCache:
    """A tiny LRU cache for normalized adjacency blocks.

    The bi-level search loop asks for the same handful of normalized
    operators (one per completion op × normalization mode) thousands of
    times; caching them makes re-normalization a dictionary lookup while
    the ``maxsize`` bound keeps memory flat even when many modes/blocks
    are probed (e.g. a sweep over per-relation metapath blocks).
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._store: "OrderedDict[Hashable, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, builder: Callable[[], object]) -> object:
        """Return the cached value for ``key``, building it on a miss."""
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return self._store[key]
        self.misses += 1
        value = builder()
        self._store[key] = value
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)
        return value

    def lookup(self, key: Hashable, default: object = None) -> object:
        """Return the cached value for ``key`` without building on a miss."""
        if key in self._store:
            self._store.move_to_end(key)
            self.hits += 1
            return self._store[key]
        self.misses += 1
        return default

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) ``key`` directly, evicting the oldest entry."""
        self._store[key] = value
        self._store.move_to_end(key)
        if len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def invalidate(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``.

        Returns the number of entries dropped.  Used for *targeted*
        invalidation: when a graph mutation only touches some node types,
        cached operators over unaffected types survive.
        """
        stale = [key for key in self._store if predicate(key)]
        for key in stale:
            del self._store[key]
        return len(stale)

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._store

    def clear(self) -> None:
        self._store.clear()


def normalize_adjacency(adj: Union[SparseTensor, sp.spmatrix],
                        mode: str = "sym",
                        self_loops: bool = False) -> SparseTensor:
    """Normalize an adjacency into a CSR :class:`SparseTensor`.

    ``mode`` is one of :data:`NORMALIZATION_MODES`; ``self_loops`` sets the
    diagonal to one *before* normalizing (square matrices only).
    """
    if mode not in NORMALIZATION_MODES:
        raise ValueError(f"unknown normalization mode {mode!r}; "
                         f"expected one of {NORMALIZATION_MODES}")
    matrix = as_sparse_tensor(adj)
    if self_loops:
        matrix = matrix.add_self_loops()
    if mode == "row":
        return matrix.row_normalize()
    if mode == "sym":
        return matrix.sym_normalize()
    return matrix


def add_self_loops(adj: sp.spmatrix) -> sp.csr_matrix:
    adj = adj.tocsr().copy()
    adj.setdiag(1.0)
    return adj.tocsr()


def sym_normalized_adjacency(adj: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """``D^{-1/2} (A [+ I]) D^{-1/2}`` with zero-degree rows left at zero."""
    adj = add_self_loops(adj) if self_loops else adj.tocsr()
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


def row_normalized_adjacency(adj: sp.spmatrix, self_loops: bool = False) -> sp.csr_matrix:
    """``D^{-1} A`` — the mean-aggregation operator."""
    adj = add_self_loops(adj) if self_loops else adj.tocsr()
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(degree)
    nonzero = degree > 0
    inv[nonzero] = 1.0 / degree[nonzero]
    return (sp.diags(inv) @ adj).tocsr()


def ppnp_exact(adj: sp.spmatrix, alpha: float = 0.1) -> np.ndarray:
    """Dense closed-form PPNP operator ``alpha (I - (1-alpha) Â)^{-1}``.

    Only sensible for the small synthetic graphs used here; prefer
    :func:`appnp_propagate` on anything large.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"restart probability must be in (0, 1], got {alpha}")
    n = adj.shape[0]
    a_hat = sym_normalized_adjacency(adj, self_loops=True).toarray()
    return alpha * np.linalg.inv(np.eye(n) - (1.0 - alpha) * a_hat)


def appnp_propagate(adj: sp.spmatrix, features: np.ndarray, alpha: float = 0.1,
                    iterations: int = 10,
                    a_hat: Optional[Union[SparseTensor, sp.csr_matrix,
                                          np.ndarray]] = None,
                    ) -> np.ndarray:
    """APPNP power iteration ``Z ← (1-alpha) Â Z + alpha X`` (data-level).

    Converges geometrically to the exact PPNP diffusion of ``features``.
    ``a_hat`` may be a precomputed (and cached) normalized operator — a
    scipy CSR matrix, a :class:`~repro.tensor.SparseTensor`, or a dense
    array (the validation fallback) — in which case ``adj`` is ignored.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"restart probability must be in (0, 1], got {alpha}")
    if a_hat is None:
        a_hat = sym_normalized_adjacency(adj, self_loops=True)
    z = features.copy()
    for _ in range(iterations):
        z = (1.0 - alpha) * (a_hat @ z) + alpha * features
    return z


__all__ = [
    "LRUCache",
    "NORMALIZATION_MODES",
    "normalize_adjacency",
    "add_self_loops",
    "sym_normalized_adjacency",
    "row_normalized_adjacency",
    "ppnp_exact",
    "appnp_propagate",
]
