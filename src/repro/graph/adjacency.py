"""Adjacency normalizations used by the completion operations and GNNs.

The three topology-dependent completion operations of the paper map onto:

* ``mean``  — row-normalized adjacency restricted to attributed neighbors,
* ``gcn``   — symmetric re-normalized adjacency (Kipf & Welling),
* ``ppnp``  — personalized-PageRank diffusion (Klicpera et al.), either the
  exact closed form ``alpha (I - (1-alpha) Â)^{-1}`` or the APPNP power
  iteration that approximates it without a dense inverse.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp


def add_self_loops(adj: sp.spmatrix) -> sp.csr_matrix:
    adj = adj.tocsr().copy()
    adj.setdiag(1.0)
    return adj.tocsr()


def sym_normalized_adjacency(adj: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """``D^{-1/2} (A [+ I]) D^{-1/2}`` with zero-degree rows left at zero."""
    adj = add_self_loops(adj) if self_loops else adj.tocsr()
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv_sqrt = np.zeros_like(degree)
    nonzero = degree > 0
    inv_sqrt[nonzero] = degree[nonzero] ** -0.5
    d_mat = sp.diags(inv_sqrt)
    return (d_mat @ adj @ d_mat).tocsr()


def row_normalized_adjacency(adj: sp.spmatrix, self_loops: bool = False) -> sp.csr_matrix:
    """``D^{-1} A`` — the mean-aggregation operator."""
    adj = add_self_loops(adj) if self_loops else adj.tocsr()
    degree = np.asarray(adj.sum(axis=1)).ravel()
    inv = np.zeros_like(degree)
    nonzero = degree > 0
    inv[nonzero] = 1.0 / degree[nonzero]
    return (sp.diags(inv) @ adj).tocsr()


def ppnp_exact(adj: sp.spmatrix, alpha: float = 0.1) -> np.ndarray:
    """Dense closed-form PPNP operator ``alpha (I - (1-alpha) Â)^{-1}``.

    Only sensible for the small synthetic graphs used here; prefer
    :func:`appnp_propagate` on anything large.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"restart probability must be in (0, 1], got {alpha}")
    n = adj.shape[0]
    a_hat = sym_normalized_adjacency(adj, self_loops=True).toarray()
    return alpha * np.linalg.inv(np.eye(n) - (1.0 - alpha) * a_hat)


def appnp_propagate(adj: sp.spmatrix, features: np.ndarray, alpha: float = 0.1,
                    iterations: int = 10,
                    a_hat: Optional[sp.csr_matrix] = None) -> np.ndarray:
    """APPNP power iteration ``Z ← (1-alpha) Â Z + alpha X`` (data-level).

    Converges geometrically to the exact PPNP diffusion of ``features``.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"restart probability must be in (0, 1], got {alpha}")
    if a_hat is None:
        a_hat = sym_normalized_adjacency(adj, self_loops=True)
    z = features.copy()
    for _ in range(iterations):
        z = (1.0 - alpha) * (a_hat @ z) + alpha * features
    return z


__all__ = [
    "add_self_loops",
    "sym_normalized_adjacency",
    "row_normalized_adjacency",
    "ppnp_exact",
    "appnp_propagate",
]
