"""``repro.graph`` — heterogeneous graph container and topology toolkit."""

from .adjacency import (
    LRUCache,
    NORMALIZATION_MODES,
    add_self_loops,
    appnp_propagate,
    normalize_adjacency,
    ppnp_exact,
    row_normalized_adjacency,
    sym_normalized_adjacency,
)
from .hetero import HeteroGraph, NodeTypeInfo, Relation
from .metapath import DEFAULT_METAPATHS, metapath_adjacency, metapath_edge_list
from .sampler import FanoutSpec, GraphView, NeighborSampler
from .modularity import collapse_regularization, hard_modularity, modularity_value
from .walks import metapath_random_walks, typed_neighbor_sample, uniform_random_walks

__all__ = [
    "HeteroGraph",
    "NodeTypeInfo",
    "Relation",
    "GraphView",
    "NeighborSampler",
    "FanoutSpec",
    "LRUCache",
    "NORMALIZATION_MODES",
    "normalize_adjacency",
    "add_self_loops",
    "sym_normalized_adjacency",
    "row_normalized_adjacency",
    "ppnp_exact",
    "appnp_propagate",
    "metapath_adjacency",
    "metapath_edge_list",
    "DEFAULT_METAPATHS",
    "modularity_value",
    "hard_modularity",
    "collapse_regularization",
    "uniform_random_walks",
    "metapath_random_walks",
    "typed_neighbor_sample",
]
