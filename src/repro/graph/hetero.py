"""Heterogeneous graph container.

Replaces DGL's ``DGLHeteroGraph`` for this reproduction.  Nodes of every
type are packed into one contiguous global id space (type by type, in the
declared order), which keeps attribute completion, clustering and the
homogeneous views (PPNP, modularity) simple, while typed edge lists retain
the relational structure needed by the heterogeneous models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..tensor.dtype import get_default_dtype
from ..tensor.sparse import SparseTensor
from .adjacency import LRUCache, normalize_adjacency

Relation = Tuple[str, str, str]  # (src_type, edge_name, dst_type)


@dataclass(frozen=True)
class NodeTypeInfo:
    """Bookkeeping for one node type inside the global id space."""

    name: str
    count: int
    offset: int

    @property
    def stop(self) -> int:
        return self.offset + self.count

    def global_ids(self) -> np.ndarray:
        return np.arange(self.offset, self.stop, dtype=np.int64)


class HeteroGraph:
    """A typed multigraph over a contiguous global node id space.

    Parameters
    ----------
    node_counts:
        Ordered mapping ``type name -> number of nodes``.  The order fixes
        the global id layout.
    edges:
        Mapping ``(src_type, edge_name, dst_type) -> (2, E) array`` of
        *local* (per-type) node ids.  Each relation is stored directed;
        use :meth:`add_reverse_relations` for symmetric message passing.
    """

    def __init__(
        self,
        node_counts: Mapping[str, int],
        edges: Mapping[Relation, np.ndarray],
    ) -> None:
        self.node_types: List[str] = list(node_counts.keys())
        self._info: Dict[str, NodeTypeInfo] = {}
        offset = 0
        for name in self.node_types:
            count = int(node_counts[name])
            if count <= 0:
                raise ValueError(f"node type {name!r} must have a positive count")
            self._info[name] = NodeTypeInfo(name=name, count=count, offset=offset)
            offset += count
        self.num_nodes: int = offset

        # caches invalidated on mutation
        self._cache: Dict[str, object] = {}
        # LRU of normalized CSR operators, keyed by (scope, mode, flags);
        # bounded so mode sweeps cannot grow memory without limit
        self._norm_cache = LRUCache(maxsize=32)

        self.relations: List[Relation] = []
        self._edges: Dict[Relation, np.ndarray] = {}
        for relation, pairs in edges.items():
            self.add_relation(relation, pairs)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_relation(self, relation: Relation, pairs: np.ndarray) -> None:
        src_type, _, dst_type = relation
        if src_type not in self._info or dst_type not in self._info:
            raise KeyError(f"unknown node type in relation {relation!r}")
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[0] != 2:
            raise ValueError(f"edges for {relation!r} must be a (2, E) array")
        if pairs.shape[1] > 0:
            if pairs[0].min() < 0 or pairs[0].max() >= self._info[src_type].count:
                raise ValueError(f"source ids out of range for {relation!r}")
            if pairs[1].min() < 0 or pairs[1].max() >= self._info[dst_type].count:
                raise ValueError(f"destination ids out of range for {relation!r}")
        if relation in self._edges:
            raise KeyError(f"relation {relation!r} already present")
        self.relations.append(relation)
        self._edges[relation] = pairs
        self._cache.clear()
        self._norm_cache.clear()

    def add_reverse_relations(self, suffix: str = "_rev") -> "HeteroGraph":
        """Add a reversed copy of every relation whose reverse is missing.

        Self-relations (same src and dst type) whose edge set is already
        symmetric are left untouched.
        """
        for relation in list(self.relations):
            src_type, name, dst_type = relation
            reverse = (dst_type, name + suffix, src_type)
            if reverse in self._edges or name.endswith(suffix):
                continue
            pairs = self._edges[relation]
            self.add_relation(reverse, np.stack([pairs[1], pairs[0]]))
        return self

    # ------------------------------------------------------------------
    # Type/id bookkeeping
    # ------------------------------------------------------------------
    def info(self, node_type: str) -> NodeTypeInfo:
        return self._info[node_type]

    def num_nodes_of(self, node_type: str) -> int:
        return self._info[node_type].count

    def offset_of(self, node_type: str) -> int:
        return self._info[node_type].offset

    def global_ids(self, node_type: str) -> np.ndarray:
        return self._info[node_type].global_ids()

    def to_global(self, node_type: str, local_ids: np.ndarray) -> np.ndarray:
        return np.asarray(local_ids, dtype=np.int64) + self._info[node_type].offset

    def to_local(self, node_type: str, global_ids: np.ndarray) -> np.ndarray:
        return np.asarray(global_ids, dtype=np.int64) - self._info[node_type].offset

    @property
    def node_type_index(self) -> np.ndarray:
        """Per-global-node integer type id, in ``node_types`` order."""
        key = "node_type_index"
        if key not in self._cache:
            out = np.empty(self.num_nodes, dtype=np.int64)
            for type_id, name in enumerate(self.node_types):
                info = self._info[name]
                out[info.offset:info.stop] = type_id
            self._cache[key] = out
        return self._cache[key]  # type: ignore[return-value]

    def type_of(self, global_id: int) -> str:
        return self.node_types[int(self.node_type_index[global_id])]

    # ------------------------------------------------------------------
    # Edge access
    # ------------------------------------------------------------------
    def edges_local(self, relation: Relation) -> np.ndarray:
        return self._edges[relation]

    def edges_global(self, relation: Relation) -> np.ndarray:
        src_type, _, dst_type = relation
        pairs = self._edges[relation]
        return np.stack([
            pairs[0] + self._info[src_type].offset,
            pairs[1] + self._info[dst_type].offset,
        ])

    def num_edges(self, relation: Optional[Relation] = None) -> int:
        if relation is not None:
            return self._edges[relation].shape[1]
        return sum(pairs.shape[1] for pairs in self._edges.values())

    def all_edges_global(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate every relation: ``(src, dst, edge_type_id)`` arrays.

        Edge type ids follow the order of ``self.relations``.
        """
        key = "all_edges_global"
        if key not in self._cache:
            srcs, dsts, types = [], [], []
            for type_id, relation in enumerate(self.relations):
                pairs = self.edges_global(relation)
                srcs.append(pairs[0])
                dsts.append(pairs[1])
                types.append(np.full(pairs.shape[1], type_id, dtype=np.int64))
            src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
            dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
            etype = np.concatenate(types) if types else np.empty(0, dtype=np.int64)
            self._cache[key] = (src, dst, etype)
        return self._cache[key]  # type: ignore[return-value]

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    def edge_arrays_with_self_loops(
            self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Global ``(src, dst, etype)`` arrays plus a self-loop pseudo-relation.

        Self loops get their own edge-type id (``num_relations``), the HGB
        convention SimpleHGN relies on.  Built once per graph (cached with
        the other global structures; invalidated on mutation) — the GNN zoo
        constructs several edge-list models per search epoch over the same
        topology, and each used to re-concatenate these arrays.
        """
        key = "edges_with_self_loops"
        if key not in self._cache:
            src, dst, etype = self.all_edges_global()
            loops = np.arange(self.num_nodes, dtype=np.int64)
            self._cache[key] = (
                np.concatenate([src, loops]),
                np.concatenate([dst, loops]),
                np.concatenate([etype,
                                np.full(self.num_nodes, self.num_relations,
                                        dtype=np.int64)]),
                self.num_relations + 1,
            )
        return self._cache[key]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Homogeneous views
    # ------------------------------------------------------------------
    def adjacency(self, symmetric: bool = True) -> sp.csr_matrix:
        """Unweighted global adjacency (binarized, optionally symmetrized)."""
        key = f"adjacency:{symmetric}:{get_default_dtype()}"
        if key not in self._cache:
            src, dst, _ = self.all_edges_global()
            data = np.ones(src.shape[0], dtype=get_default_dtype())
            adj = sp.coo_matrix((data, (src, dst)),
                                shape=(self.num_nodes, self.num_nodes)).tocsr()
            if symmetric:
                adj = adj.maximum(adj.T)
            adj.data[:] = 1.0
            adj.setdiag(0)
            adj.eliminate_zeros()
            self._cache[key] = adj
        return self._cache[key]  # type: ignore[return-value]

    def biadjacency(self, relation: Relation) -> sp.csr_matrix:
        """Per-relation biadjacency of shape ``(n_src_type, n_dst_type)``.

        Memoized in the LRU cache: metapath models chain the same handful
        of blocks every time they are (re)built during a search.  Callers
        must treat the returned matrix as read-only.
        """
        src_type, _, dst_type = relation

        def build() -> sp.csr_matrix:
            pairs = self._edges[relation]
            data = np.ones(pairs.shape[1], dtype=get_default_dtype())
            return sp.coo_matrix(
                (data, (pairs[0], pairs[1])),
                shape=(self._info[src_type].count, self._info[dst_type].count),
            ).tocsr()

        return self._norm_cache.get(
            ("biadjacency", relation, get_default_dtype().name), build)

    # ------------------------------------------------------------------
    # Cached sparse (CSR) views — the propagation fast path
    # ------------------------------------------------------------------
    def adjacency_sparse(self, symmetric: bool = True) -> SparseTensor:
        """Global adjacency as a :class:`~repro.tensor.SparseTensor`."""
        key = ("adjacency_sparse", symmetric, get_default_dtype().name)
        return self._norm_cache.get(
            key, lambda: SparseTensor.from_scipy(self.adjacency(symmetric)))

    def normalized_adjacency(self, mode: str = "sym",
                             self_loops: bool = False,
                             symmetric: bool = True) -> SparseTensor:
        """Cached normalized global adjacency (CSR).

        ``mode`` follows :data:`repro.graph.NORMALIZATION_MODES` (``"none"``,
        ``"row"``, ``"sym"``).  Results are memoized in an LRU cache keyed by
        ``(mode, self_loops, symmetric)`` so the search loop — which builds
        one GNN and several completion operators per epoch over the same
        graph — never re-normalizes.  The cache is invalidated whenever a
        relation is added.
        """
        key = ("global", mode, self_loops, symmetric,
               get_default_dtype().name)
        return self._norm_cache.get(
            key,
            lambda: normalize_adjacency(self.adjacency_sparse(symmetric),
                                        mode=mode, self_loops=self_loops))

    def block_adjacency(self, src_type: str, dst_type: str,
                        mode: str = "none",
                        self_loops: bool = False) -> SparseTensor:
        """Cached per-(src-type, dst-type) adjacency block (CSR).

        Sums the biadjacency of every relation connecting ``src_type`` to
        ``dst_type`` (binarized), then applies ``mode`` normalization.
        Shape is ``(n_src_type, n_dst_type)``; ``self_loops`` is only legal
        for square blocks (``src_type == dst_type``).
        """
        if src_type not in self._info or dst_type not in self._info:
            raise KeyError(f"unknown node type in block "
                           f"({src_type!r}, {dst_type!r})")
        if self_loops and src_type != dst_type:
            raise ValueError(
                f"self loops are only meaningful on same-type blocks, got "
                f"({src_type!r}, {dst_type!r})")
        key = ("block", src_type, dst_type, mode, self_loops,
               get_default_dtype().name)

        def build() -> SparseTensor:
            n_src = self._info[src_type].count
            n_dst = self._info[dst_type].count
            block = sp.csr_matrix((n_src, n_dst), dtype=get_default_dtype())
            for relation in self.relations:
                if relation[0] == src_type and relation[2] == dst_type:
                    block = block + self.biadjacency(relation)
            if block.nnz:
                block.data[:] = 1.0
            return normalize_adjacency(block, mode=mode,
                                       self_loops=self_loops)

        return self._norm_cache.get(key, build)

    def degrees(self, symmetric: bool = True) -> np.ndarray:
        adj = self.adjacency(symmetric=symmetric)
        return np.asarray(adj.sum(axis=1)).ravel()

    def neighbors(self, global_id: int) -> np.ndarray:
        adj = self.adjacency(symmetric=True)
        start, stop = adj.indptr[global_id], adj.indptr[global_id + 1]
        return adj.indices[start:stop]

    # ------------------------------------------------------------------
    # Online mutation (node onboarding)
    # ------------------------------------------------------------------
    def append_node(self, node_type: str,
                    edges: Mapping[Relation, np.ndarray],
                    auto_reverse: bool = True) -> int:
        """Append one node of ``node_type`` with edges to existing nodes.

        ``edges`` maps existing relations to arrays of *local* neighbor ids
        on the side of the relation opposite to ``node_type`` (for a
        same-type relation the new node is the source).  When
        ``auto_reverse`` is set, every appended edge is mirrored into the
        matching ``<name>_rev`` relation if one exists (the
        :meth:`add_reverse_relations` convention), so symmetric message
        passing sees the new node immediately.

        Returns the new node's local id.  Global ids of nodes in types
        declared after ``node_type`` shift by one; callers holding global
        ids must re-derive them.  Caches are invalidated *selectively*:
        cached per-type blocks that do not involve ``node_type`` survive.
        """
        if node_type not in self._info:
            raise KeyError(f"unknown node type {node_type!r}")
        new_local = self._info[node_type].count

        # validate everything before mutating any state
        appends: Dict[Relation, np.ndarray] = {}
        for relation, neighbors in edges.items():
            if relation not in self._edges:
                raise KeyError(f"unknown relation {relation!r}")
            src_type, _, dst_type = relation
            if node_type not in (src_type, dst_type):
                raise ValueError(
                    f"relation {relation!r} does not involve {node_type!r}")
            neighbors = np.asarray(neighbors, dtype=np.int64).ravel()
            if neighbors.size == 0:
                continue
            other = dst_type if src_type == node_type else src_type
            if neighbors.min() < 0 or neighbors.max() >= self._info[other].count:
                raise ValueError(
                    f"neighbor ids out of range for {relation!r}")
            new_col = np.full(neighbors.shape[0], new_local, dtype=np.int64)
            if src_type == node_type:
                pairs = np.stack([new_col, neighbors])
            else:
                pairs = np.stack([neighbors, new_col])
            appends[relation] = pairs
        if auto_reverse:
            for relation, pairs in list(appends.items()):
                src_type, name, dst_type = relation
                reverse = (dst_type, name + "_rev", src_type)
                if reverse in self._edges and reverse not in appends:
                    appends[reverse] = np.stack([pairs[1], pairs[0]])

        # grow the type block; offsets of later types shift by one
        self._info[node_type] = NodeTypeInfo(
            name=node_type, count=new_local + 1,
            offset=self._info[node_type].offset)
        shifting = False
        for name in self.node_types:
            if name == node_type:
                shifting = True
                continue
            if shifting:
                info = self._info[name]
                self._info[name] = NodeTypeInfo(
                    name=name, count=info.count, offset=info.offset + 1)
        self.num_nodes += 1

        for relation, pairs in appends.items():
            self._edges[relation] = np.concatenate(
                [self._edges[relation], pairs], axis=1)

        self._invalidate_for_type(node_type)
        return new_local

    def pop_node(self, node_type: str) -> int:
        """Remove the *last* node of ``node_type`` and every incident edge.

        The exact inverse of :meth:`append_node` (used to roll back a
        failed onboarding).  Returns the removed node's local id.
        """
        info = self._info[node_type]
        if info.count <= 1:
            raise ValueError(f"cannot remove the last node of {node_type!r}")
        last = info.count - 1
        for relation in self.relations:
            src_type, _, dst_type = relation
            pairs = self._edges[relation]
            if src_type == node_type and dst_type == node_type:
                keep = (pairs[0] != last) & (pairs[1] != last)
            elif src_type == node_type:
                keep = pairs[0] != last
            elif dst_type == node_type:
                keep = pairs[1] != last
            else:
                continue
            if not keep.all():
                self._edges[relation] = pairs[:, keep]
        self._info[node_type] = NodeTypeInfo(name=node_type, count=last,
                                             offset=info.offset)
        shifting = False
        for name in self.node_types:
            if name == node_type:
                shifting = True
                continue
            if shifting:
                other = self._info[name]
                self._info[name] = NodeTypeInfo(
                    name=name, count=other.count, offset=other.offset - 1)
        self.num_nodes -= 1
        self._invalidate_for_type(node_type)
        return last

    def _invalidate_for_type(self, node_type: str) -> None:
        """Drop caches a ``node_type`` mutation stales, keeping the rest.

        Global structures (id space shifted) always go; per-type blocks,
        biadjacencies and the sampler's per-relation CSR lists survive
        unless their relation involves ``node_type``.
        """
        self._cache.clear()

        def stale(key: object) -> bool:
            if not isinstance(key, tuple) or not key:
                return True
            scope = key[0]
            if scope in ("biadjacency", "sample_csr"):
                relation = key[1]
                return node_type in (relation[0], relation[2])
            if scope == "block":
                return node_type in (key[1], key[2])
            return True  # global-scope operators ("adjacency_sparse", ...)

        self._norm_cache.invalidate(stale)

    def copy(self) -> "HeteroGraph":
        """Deep copy (fresh caches); mutation of one copy leaves the other intact."""
        counts = {name: self._info[name].count for name in self.node_types}
        edges = {rel: self._edges[rel].copy() for rel in self.relations}
        return HeteroGraph(counts, edges)

    # ------------------------------------------------------------------
    def subgraph_without_edges(self, relation: Relation,
                               drop_mask: np.ndarray) -> "HeteroGraph":
        """Copy of the graph with ``drop_mask`` edges of ``relation`` removed.

        Used by the link-prediction protocol, which masks a fraction of the
        target relation's edges for evaluation.  The dropped pairs are also
        removed from the matching reverse relation (if present), so masked
        edges cannot leak back through symmetrization.
        """
        drop_mask = np.asarray(drop_mask, dtype=bool)
        if drop_mask.shape[0] != self.num_edges(relation):
            raise ValueError("drop mask length must equal the relation's edge count")
        src_type, name, dst_type = relation
        reverse = (dst_type, name + "_rev", src_type)
        dropped_pairs = self._edges[relation][:, drop_mask]
        dropped_keys = set(zip(dropped_pairs[0].tolist(),
                               dropped_pairs[1].tolist()))
        edges = {}
        for rel in self.relations:
            pairs = self._edges[rel]
            if rel == relation:
                pairs = pairs[:, ~drop_mask]
            elif rel == reverse and dropped_keys:
                keep = np.array([
                    (dst, src) not in dropped_keys
                    for src, dst in pairs.T.tolist()
                ], dtype=bool)
                pairs = pairs[:, keep]
            edges[rel] = pairs.copy()
        counts = {name: self._info[name].count for name in self.node_types}
        return HeteroGraph(counts, edges)

    def __repr__(self) -> str:
        type_desc = ", ".join(f"{t}:{self._info[t].count}" for t in self.node_types)
        return (f"HeteroGraph(nodes=[{type_desc}], "
                f"relations={len(self.relations)}, edges={self.num_edges()})")


__all__ = ["HeteroGraph", "NodeTypeInfo", "Relation"]
