"""Sampled subgraph views — the mini-batch execution path.

Every layer of the reproduction originally assumed one full-graph forward
over an ``(N, hidden)`` tensor.  This module introduces the two pieces
that lift that assumption:

* :class:`GraphView` — an induced subgraph over a subset of global node
  ids, with local↔global id remapping, typed edge arrays, and the same
  cached-operator surface :class:`~repro.graph.HeteroGraph` exposes
  (``normalized_adjacency``, ``adjacency_sparse``,
  ``edge_arrays_with_self_loops``).  Models and feature builders that
  accept a view run unchanged math over ``(V, hidden)`` tensors, where
  ``V`` is the view size — never ``(N, hidden)``.
* :class:`NeighborSampler` — relation-aware fan-out sampling (GraphSAGE
  style): starting from a batch of seed nodes it draws up to ``fanout``
  in-neighbors per node *per relation* for ``num_layers`` hops, so the
  view size is bounded by ``B · (1 + Σ_l (R · fanout)^l)`` regardless of
  ``N``.  The per-relation destination-indexed CSR lists it samples from
  live in the graph's existing LRU adjacency cache and survive unrelated
  :meth:`~repro.graph.HeteroGraph.append_node` mutations.

A view built by the sampler contains the *sampled* edges only (bounded
memory); :meth:`GraphView.induced` instead keeps every edge between the
chosen nodes — the exact-subgraph variant used when a caller wants a
view over a node set it picked itself (serving-time onboarding samples
with :class:`NeighborSampler` around the new node).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..tensor.dtype import get_default_dtype
from ..tensor.sparse import SparseTensor
from .hetero import HeteroGraph, Relation

FanoutSpec = Union[int, Mapping[Relation, int]]


def _dst_indexed_csr(graph: HeteroGraph,
                     relation: Relation) -> Tuple[np.ndarray, np.ndarray]:
    """``(indptr, src_local)`` indexed by destination-local id, LRU-cached.

    This is the structure fan-out sampling draws from: for a destination
    node ``v`` of the relation, ``src_local[indptr[v]:indptr[v+1]]`` are
    its in-neighbors on the source side.  Cached under a relation-scoped
    key so :meth:`HeteroGraph.append_node` on an unrelated type keeps it.
    """
    def build() -> Tuple[np.ndarray, np.ndarray]:
        src_type, _, dst_type = relation
        pairs = graph.edges_local(relation)
        n_dst = graph.num_nodes_of(dst_type)
        order = np.argsort(pairs[1], kind="stable")
        counts = np.bincount(pairs[1], minlength=n_dst)
        indptr = np.zeros(n_dst + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, pairs[0][order]

    return graph._norm_cache.get(("sample_csr", relation), build)


class GraphView:
    """An induced or sampled subgraph over a subset of global node ids.

    ``node_ids`` are global ids of the parent graph, **seeds first** (the
    first ``len(seed_ids)`` view-local positions are the seed nodes, in
    seed order).  ``edges`` holds view-local ``(2, E)`` arrays per
    relation.  Operators derived from the view (normalized sub-adjacency,
    attention patterns, self-loop edge arrays) are memoized on the view —
    it is immutable once built — so the handful of forwards sharing one
    batch never rebuild them.
    """

    def __init__(self, graph: HeteroGraph, node_ids: np.ndarray,
                 seed_ids: np.ndarray,
                 edges: Mapping[Relation, np.ndarray]) -> None:
        self.graph = graph
        self.node_ids = np.asarray(node_ids, dtype=np.int64)
        self.seed_ids = np.asarray(seed_ids, dtype=np.int64)
        self.num_nodes = int(self.node_ids.shape[0])
        if self.seed_ids.shape[0] > self.num_nodes:
            raise ValueError("more seeds than view nodes")
        if not np.array_equal(self.node_ids[:self.seed_ids.shape[0]],
                              self.seed_ids):
            raise ValueError("view node ids must start with the seeds")
        self.relations: List[Relation] = list(edges.keys())
        self._edges: Dict[Relation, np.ndarray] = {
            rel: np.asarray(pairs, dtype=np.int64)
            for rel, pairs in edges.items()
        }
        # view-local position of every global id in the view
        self._local: Dict[int, int] = {
            int(gid): pos for pos, gid in enumerate(self.node_ids)
        }
        self._cache: Dict[object, object] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def induced(cls, graph: HeteroGraph, node_ids: np.ndarray,
                seed_ids: Optional[np.ndarray] = None) -> "GraphView":
        """Exact induced subgraph: every relation edge between the nodes.

        Extraction is pure CSR slicing of the parent's cached per-relation
        structures — no Python loop over edges.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        if seed_ids is None:
            seed_ids = node_ids
        else:
            seed_ids = np.asarray(seed_ids, dtype=np.int64)
            rest = node_ids[~np.isin(node_ids, seed_ids)]
            node_ids = np.concatenate([seed_ids, rest])
        in_view = np.zeros(graph.num_nodes, dtype=bool)
        in_view[node_ids] = True
        local_of = np.full(graph.num_nodes, -1, dtype=np.int64)
        local_of[node_ids] = np.arange(node_ids.shape[0], dtype=np.int64)
        edges: Dict[Relation, np.ndarray] = {}
        for relation in graph.relations:
            pairs = graph.edges_global(relation)
            keep = in_view[pairs[0]] & in_view[pairs[1]]
            if not keep.any():
                continue
            edges[relation] = np.stack([local_of[pairs[0][keep]],
                                        local_of[pairs[1][keep]]])
        return cls(graph, node_ids, seed_ids, edges)

    # ------------------------------------------------------------------
    # Id bookkeeping
    # ------------------------------------------------------------------
    @property
    def seed_local(self) -> np.ndarray:
        """View-local positions of the seeds (always ``0..B-1``)."""
        return np.arange(self.seed_ids.shape[0], dtype=np.int64)

    def local_of(self, global_ids: np.ndarray) -> np.ndarray:
        """Map parent-global ids to view-local positions (KeyError if absent)."""
        return np.array([self._local[int(g)] for g in np.atleast_1d(global_ids)],
                        dtype=np.int64)

    def contains(self, global_id: int) -> bool:
        return int(global_id) in self._local

    def type_members(self, node_type: str) -> Tuple[np.ndarray, np.ndarray]:
        """``(view_local, parent_local)`` ids of the view's ``node_type`` nodes."""
        key = ("type_members", node_type)
        if key not in self._cache:
            info = self.graph.info(node_type)
            mask = (self.node_ids >= info.offset) & (self.node_ids < info.stop)
            view_local = np.flatnonzero(mask).astype(np.int64)
            parent_local = self.node_ids[mask] - info.offset
            self._cache[key] = (view_local, parent_local)
        return self._cache[key]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Edge access (mirrors HeteroGraph, in view-local ids)
    # ------------------------------------------------------------------
    def edges_local(self, relation: Relation) -> np.ndarray:
        return self._edges[relation]

    def num_edges(self, relation: Optional[Relation] = None) -> int:
        if relation is not None:
            return self._edges[relation].shape[1]
        return sum(pairs.shape[1] for pairs in self._edges.values())

    def all_edges(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated ``(src, dst, etype)`` arrays in view-local ids.

        Edge-type ids follow the *parent's* relation order so edge-type
        embeddings learned full-graph transfer to the view unchanged.
        """
        key = "all_edges"
        if key not in self._cache:
            type_of = {rel: i for i, rel in enumerate(self.graph.relations)}
            srcs, dsts, types = [], [], []
            for relation in self.relations:
                pairs = self._edges[relation]
                srcs.append(pairs[0])
                dsts.append(pairs[1])
                types.append(np.full(pairs.shape[1], type_of[relation],
                                     dtype=np.int64))
            src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int64)
            dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int64)
            etype = (np.concatenate(types) if types
                     else np.empty(0, dtype=np.int64))
            self._cache[key] = (src, dst, etype)
        return self._cache[key]  # type: ignore[return-value]

    @property
    def num_relations(self) -> int:
        """Parent relation count (edge-type id space is shared)."""
        return self.graph.num_relations

    def edge_arrays_with_self_loops(
            self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Typed edges plus the self-loop pseudo-relation, cached on the view.

        The self-loop relation keeps the id ``graph.num_relations`` it has
        full-graph, so SimpleHGN's edge-type table indexes identically on
        both paths.
        """
        key = "edges_with_self_loops"
        if key not in self._cache:
            src, dst, etype = self.all_edges()
            loops = np.arange(self.num_nodes, dtype=np.int64)
            src = np.concatenate([src, loops])
            dst = np.concatenate([dst, loops])
            etype = np.concatenate([
                etype, np.full(self.num_nodes, self.graph.num_relations,
                               dtype=np.int64)])
            self._cache[key] = (src, dst, etype, self.graph.num_relations + 1)
        return self._cache[key]  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Cached operators (mirrors HeteroGraph's propagation surface)
    # ------------------------------------------------------------------
    def adjacency_sparse(self, symmetric: bool = True) -> SparseTensor:
        """Binarized adjacency of the view's *own* edges (CSR).

        Built from the edges the view actually holds (sampled edges for a
        sampler-built view) — the in-sample estimator the stochastic
        modularity objective wants.  For message passing use
        :meth:`normalized_adjacency`, which extracts full-graph
        coefficients instead.
        """
        key = ("adjacency_sparse", symmetric, get_default_dtype().name)
        if key not in self._cache:
            src, dst, _ = self.all_edges()
            if symmetric:
                rows = np.concatenate([src, dst])
                cols = np.concatenate([dst, src])
            else:
                rows, cols = src, dst
            keep = rows != cols
            rows, cols = rows[keep], cols[keep]
            # binarize duplicates (parallel relation edges / symmetrization)
            keys = rows * np.int64(self.num_nodes) + cols
            _, unique = np.unique(keys, return_index=True)
            self._cache[key] = SparseTensor.from_edges(
                rows[unique], cols[unique],
                shape=(self.num_nodes, self.num_nodes))
        return self._cache[key]  # type: ignore[return-value]

    def normalized_adjacency(self, mode: str = "sym",
                             self_loops: bool = False,
                             symmetric: bool = True) -> SparseTensor:
        """Normalized sub-operator (CSR), extracted — not re-normalized.

        The view's propagation operator is the row/column restriction of
        the parent's LRU-cached normalized adjacency, so every
        coefficient keeps its *full-graph* degree normalization.
        Re-normalizing the sub-adjacency instead would inflate boundary
        nodes (their view degree undercounts their true degree) and the
        sampled path would no longer converge to the full-graph forward
        as fan-out grows — with a fan-out at or above the maximum degree
        this extraction makes the two paths agree exactly.  Memoized on
        the (immutable) view.
        """
        key = ("normalized", mode, self_loops, symmetric,
               get_default_dtype().name)
        if key not in self._cache:
            full = self.graph.normalized_adjacency(
                mode=mode, self_loops=self_loops, symmetric=symmetric)
            sub = full.to_scipy()[self.node_ids][:, self.node_ids]
            self._cache[key] = SparseTensor.from_scipy(sub.tocsr())
        return self._cache[key]  # type: ignore[return-value]

    def cached(self, key, builder):
        """Memoize an arbitrary per-view derived object (e.g. an attention
        pattern); the view is immutable so entries never go stale."""
        if key not in self._cache:
            self._cache[key] = builder()
        return self._cache[key]

    def __repr__(self) -> str:
        return (f"GraphView(nodes={self.num_nodes}, seeds="
                f"{self.seed_ids.shape[0]}, edges={self.num_edges()}, "
                f"of {self.graph!r})")


class NeighborSampler:
    """Relation-aware fan-out neighbor sampling over a :class:`HeteroGraph`.

    Parameters
    ----------
    graph:
        The parent graph.  Per-relation sampling structures are cached in
        the graph's LRU adjacency cache and invalidated selectively on
        mutation.
    fanout:
        Neighbors to draw per node *per relation* at each hop — an int
        (shared by every relation) or a ``{relation: int}`` mapping
        (missing relations fall back to ``default_fanout``).  A fanout of
        0 skips a relation entirely.
    num_layers:
        Hops to expand (use the model's layer count).
    rng / seed:
        Randomness for subsampling; a fresh default generator otherwise.
    """

    def __init__(self, graph: HeteroGraph, fanout: FanoutSpec = 10,
                 num_layers: int = 2,
                 rng: Optional[np.random.Generator] = None,
                 seed: Optional[int] = None) -> None:
        if num_layers < 1:
            raise ValueError("num_layers must be >= 1")
        self.graph = graph
        self.num_layers = int(num_layers)
        if isinstance(fanout, Mapping):
            self._fanout = {tuple(rel): int(k) for rel, k in fanout.items()}
            self._default_fanout = 0
        else:
            if int(fanout) < 1:
                raise ValueError("fanout must be >= 1")
            self._fanout = {}
            self._default_fanout = int(fanout)
        self.rng = rng if rng is not None else np.random.default_rng(seed)

    def fanout_of(self, relation: Relation) -> int:
        return self._fanout.get(tuple(relation), self._default_fanout)

    def max_view_nodes(self, batch_size: int) -> int:
        """Worst-case view size for a ``batch_size`` seed batch.

        ``B · (1 + Σ_{l=1..L} (Σ_rel fanout_rel)^l)`` — the bound the
        scale benchmark asserts peak activations against.
        """
        per_hop = sum(self.fanout_of(rel) for rel in self.graph.relations) \
            if self._fanout else self._default_fanout * len(self.graph.relations)
        total = batch_size
        frontier = batch_size
        for _ in range(self.num_layers):
            frontier = frontier * max(per_hop, 1)
            total += frontier
        return total

    # ------------------------------------------------------------------
    def _sample_relation(self, relation: Relation, dst_local: np.ndarray,
                         fanout: int) -> Tuple[np.ndarray, np.ndarray]:
        """Up to ``fanout`` source neighbors per destination node.

        Returns ``(src_local, dst_local)`` edge endpoints in parent-local
        ids.  Nodes with at most ``fanout`` in-neighbors keep *all* of
        them (no replacement, no padding), so a large-enough fanout makes
        sampling exact.  Fully vectorized: over-fanout nodes are
        subsampled without replacement by ranking a random key per
        candidate edge inside each node's span and keeping the ``fanout``
        smallest — no per-node Python loop on the hot path.
        """
        indptr, src_of = _dst_indexed_csr(self.graph, relation)
        begins = indptr[dst_local]
        spans = indptr[dst_local + 1] - begins
        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        full = spans <= fanout
        if full.any():
            # take every neighbor of low-degree nodes in one gather
            take = spans[full]
            flat = np.repeat(begins[full], take)
            step = np.arange(take.sum(), dtype=np.int64) - np.repeat(
                np.cumsum(take) - take, take)
            srcs.append(src_of[flat + step])
            dsts.append(np.repeat(dst_local[full], take))
        over = np.flatnonzero(~full)
        if over.size:
            spans_o = spans[over]
            total = int(spans_o.sum())
            starts = np.cumsum(spans_o) - spans_o
            offsets = np.arange(total, dtype=np.int64) - np.repeat(starts,
                                                                   spans_o)
            flat = np.repeat(begins[over], spans_o) + offsets
            segment = np.repeat(np.arange(over.size, dtype=np.int64),
                                spans_o)
            order = np.lexsort((self.rng.random(total), segment))
            keep = offsets < fanout  # rank within segment after the sort
            picked = order[keep]
            srcs.append(src_of[flat[picked]])
            dsts.append(dst_local[over][segment[picked]])
        if not srcs:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(srcs), np.concatenate(dsts)

    def sample(self, seed_global_ids: np.ndarray) -> GraphView:
        """Expand a seed batch into a bounded :class:`GraphView`.

        Per hop, every node already in the view pulls up to ``fanout``
        in-neighbors along every relation whose destination type matches
        its own; sampled edges from all hops are unioned, so one sub-
        adjacency serves every model layer (subgraph-style sampling — the
        propagation operator is the same at each layer, exactly like the
        full-graph path).
        """
        graph = self.graph
        seeds = np.asarray(seed_global_ids, dtype=np.int64).ravel()
        if seeds.size == 0:
            raise ValueError("cannot sample around an empty seed batch")
        if np.unique(seeds).shape[0] != seeds.shape[0]:
            raise ValueError("seed ids must be unique within a batch")
        if seeds.min() < 0 or seeds.max() >= graph.num_nodes:
            raise ValueError("seed ids out of range")
        type_index = graph.node_type_index
        in_view = np.zeros(graph.num_nodes, dtype=bool)
        in_view[seeds] = True
        frontier = seeds
        # accumulated edges in *global* ids, per relation
        edge_acc: Dict[Relation, List[np.ndarray]] = {}
        type_id_of = {name: i for i, name in enumerate(graph.node_types)}
        for _ in range(self.num_layers):
            if frontier.size == 0:
                break
            new_nodes: List[np.ndarray] = []
            for relation in graph.relations:
                fanout = self.fanout_of(relation)
                if fanout <= 0:
                    continue
                src_type, _, dst_type = relation
                members = frontier[type_index[frontier]
                                   == type_id_of[dst_type]]
                if members.size == 0:
                    continue
                dst_local = members - graph.offset_of(dst_type)
                src_local, dst_sampled = self._sample_relation(
                    relation, dst_local, fanout)
                if src_local.size == 0:
                    continue
                src_global = src_local + graph.offset_of(src_type)
                dst_global = dst_sampled + graph.offset_of(dst_type)
                edge_acc.setdefault(relation, []).append(
                    np.stack([src_global, dst_global]))
                fresh = src_global[~in_view[src_global]]
                if fresh.size:
                    fresh = np.unique(fresh)
                    in_view[fresh] = True
                    new_nodes.append(fresh)
            frontier = (np.concatenate(new_nodes) if new_nodes
                        else np.empty(0, dtype=np.int64))
        others = np.flatnonzero(in_view)
        others = others[~np.isin(others, seeds)]
        node_ids = np.concatenate([seeds, others])
        local_of = np.full(graph.num_nodes, -1, dtype=np.int64)
        local_of[node_ids] = np.arange(node_ids.shape[0], dtype=np.int64)
        edges: Dict[Relation, np.ndarray] = {}
        for relation, chunks in edge_acc.items():
            pairs = np.concatenate(chunks, axis=1)
            # dedupe edges drawn at several hops
            keys = pairs[0] * np.int64(graph.num_nodes) + pairs[1]
            _, unique = np.unique(keys, return_index=True)
            pairs = pairs[:, np.sort(unique)]
            edges[relation] = np.stack([local_of[pairs[0]],
                                        local_of[pairs[1]]])
        return GraphView(graph, node_ids, seeds, edges)

    def sample_type(self, node_type: str,
                    local_ids: Sequence[int]) -> GraphView:
        """Convenience: sample around per-type local seed ids."""
        seeds = self.graph.to_global(
            node_type, np.asarray(local_ids, dtype=np.int64))
        return self.sample(seeds)


__all__ = ["GraphView", "NeighborSampler", "FanoutSpec"]
