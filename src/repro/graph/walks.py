"""Random walks over heterogeneous graphs.

Two flavours are needed by the baselines:

* uniform walks on the homogeneous view (HetGNN-style context sampling),
* metapath-guided walks (metapath2vec pre-learning inside HGNN-AC).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .hetero import HeteroGraph


def _adjacency_lists(adj: sp.csr_matrix) -> tuple[np.ndarray, np.ndarray]:
    return adj.indptr, adj.indices


def uniform_random_walks(graph: HeteroGraph, starts: np.ndarray, length: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Uniform neighbor walks of ``length`` steps from each start (global ids).

    Dead ends repeat the current node, so the output is always rectangular:
    shape ``(num_starts, length + 1)``.
    """
    adj = graph.adjacency(symmetric=True)
    indptr, indices = _adjacency_lists(adj)
    starts = np.asarray(starts, dtype=np.int64)
    walks = np.empty((starts.shape[0], length + 1), dtype=np.int64)
    walks[:, 0] = starts
    current = starts.copy()
    for step in range(1, length + 1):
        begins = indptr[current]
        ends = indptr[current + 1]
        spans = ends - begins
        has_neighbors = spans > 0
        offsets = np.zeros_like(current)
        if has_neighbors.any():
            offsets[has_neighbors] = (
                rng.random(int(has_neighbors.sum())) * spans[has_neighbors]
            ).astype(np.int64)
        next_nodes = current.copy()
        next_nodes[has_neighbors] = indices[(begins + offsets)[has_neighbors]]
        walks[:, step] = next_nodes
        current = next_nodes
    return walks


def metapath_random_walks(graph: HeteroGraph, metapath: Sequence[str],
                          walks_per_node: int, walk_length: int,
                          rng: np.random.Generator) -> List[np.ndarray]:
    """Metapath-guided walks in global ids (metapath2vec sampling).

    The metapath is cycled: ``A-P-A`` with ``walk_length=4`` produces node
    type sequence ``A P A P A``.  Walks that hit a node with no neighbor of
    the required next type are truncated.
    """
    # Pre-build typed adjacency lists keyed by (src_type, dst_type).
    typed: Dict[tuple, sp.csr_matrix] = {}
    for relation in graph.relations:
        src_type, _, dst_type = relation
        bi = graph.biadjacency(relation)
        key = (src_type, dst_type)
        typed[key] = (typed[key] + bi).tocsr() if key in typed else bi
        rkey = (dst_type, src_type)
        bi_t = bi.T.tocsr()
        typed[rkey] = (typed[rkey] + bi_t).tocsr() if rkey in typed else bi_t

    if metapath[0] != metapath[-1]:
        raise ValueError("metapath walks require a cyclic metapath "
                         f"(got {metapath[0]!r} .. {metapath[-1]!r})")
    period = len(metapath) - 1
    start_type = metapath[0]
    starts = np.arange(graph.num_nodes_of(start_type), dtype=np.int64)
    offsets = {name: graph.offset_of(name) for name in graph.node_types}
    walks: List[np.ndarray] = []
    for _ in range(walks_per_node):
        for start_local in starts:
            walk = [offsets[start_type] + int(start_local)]
            current_local = int(start_local)
            for step in range(walk_length):
                src_type = metapath[step % period]
                dst_type = metapath[(step + 1) % period] if (step + 1) % period != 0 \
                    else metapath[0]
                key = (src_type, dst_type)
                if key not in typed:
                    break
                adj = typed[key]
                begin, end = adj.indptr[current_local], adj.indptr[current_local + 1]
                if end == begin:
                    break
                pick = begin + int(rng.random() * (end - begin))
                current_local = int(adj.indices[pick])
                walk.append(offsets[dst_type] + current_local)
            if len(walk) > 1:
                walks.append(np.asarray(walk, dtype=np.int64))
    return walks


def typed_neighbor_sample(graph: HeteroGraph, node_type: str, budget: int,
                          rng: np.random.Generator) -> Dict[str, np.ndarray]:
    """For each node of ``node_type``, sample up to ``budget`` neighbors per type.

    Returns a mapping ``neighbor_type -> (n_nodes, budget)`` global-id array
    where missing samples repeat the node's own id (acting as padding that
    aggregators treat as a no-op self message).  Used by the simplified
    HetGNN encoder.
    """
    adj = graph.adjacency(symmetric=True)
    type_index = graph.node_type_index
    info = graph.info(node_type)
    out: Dict[str, np.ndarray] = {}
    for neighbor_type_id, neighbor_type in enumerate(graph.node_types):
        sampled = np.empty((info.count, budget), dtype=np.int64)
        for row, global_id in enumerate(range(info.offset, info.stop)):
            begin, end = adj.indptr[global_id], adj.indptr[global_id + 1]
            neighbors = adj.indices[begin:end]
            neighbors = neighbors[type_index[neighbors] == neighbor_type_id]
            if neighbors.size == 0:
                sampled[row, :] = global_id
            elif neighbors.size >= budget:
                sampled[row, :] = rng.choice(neighbors, size=budget, replace=False)
            else:
                sampled[row, :] = rng.choice(neighbors, size=budget, replace=True)
        out[neighbor_type] = sampled
    return out


__all__ = ["uniform_random_walks", "metapath_random_walks", "typed_neighbor_sample"]
