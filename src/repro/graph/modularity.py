"""Spectral modularity utilities (paper Eq. 9-11).

The auxiliary clustering task maximizes the relaxed spectral modularity

    ``Q = Tr(C^T B C) / (2|E|)``,   ``B = A - d d^T / (2|E|)``

where ``C`` is an ``(N, M)`` soft cluster-assignment matrix.  ``B`` is dense,
so it is never materialized; instead the two terms are evaluated as

    ``Tr(C^T A C) = sum_ij A_ij (C_i · C_j)``   (sparse)
    ``Tr(C^T d d^T C) = || d^T C ||²``          (rank one)

This module holds the *data-level* (numpy) reference used by tests; the
differentiable twin that participates in training lives in
:mod:`repro.core.clustering`.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def modularity_value(adj: sp.spmatrix, assignment: np.ndarray) -> float:
    """Relaxed modularity ``Tr(C^T B C) / 2|E|`` for a soft assignment."""
    adj = adj.tocsr()
    degree = np.asarray(adj.sum(axis=1)).ravel()
    two_e = degree.sum()
    if two_e == 0:
        return 0.0
    term_adj = float(np.sum((adj @ assignment) * assignment))
    dc = degree @ assignment
    term_deg = float(dc @ dc) / two_e
    return (term_adj - term_deg) / two_e


def hard_modularity(adj: sp.spmatrix, labels: np.ndarray) -> float:
    """Classic Newman modularity of a hard partition (sanity baseline)."""
    labels = np.asarray(labels, dtype=np.int64)
    num_clusters = int(labels.max()) + 1 if labels.size else 0
    assignment = np.zeros((labels.shape[0], num_clusters))
    assignment[np.arange(labels.shape[0]), labels] = 1.0
    return modularity_value(adj, assignment)


def collapse_regularization(assignment: np.ndarray) -> float:
    """DMoN collapse term ``sqrt(M)/N * ||sum_i C_i||_F - 1``.

    Zero when clusters are perfectly balanced; approaches ``sqrt(M) - 1``
    when every node collapses into a single cluster.
    """
    n, m = assignment.shape
    column_mass = assignment.sum(axis=0)
    return float(np.sqrt(m) / n * np.linalg.norm(column_mass) - 1.0)


__all__ = ["modularity_value", "hard_modularity", "collapse_regularization"]
