"""Metapath utilities for HAN/MAGNN-style models.

A metapath such as ``M-A-M`` induces a homogeneous graph over its endpoint
type: two movies are metapath neighbors when they share an actor.  We build
that graph by chaining per-relation biadjacency matrices; entry ``(i, j)``
of the product counts metapath instances, which the models may use as edge
weights or simply binarize.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from .hetero import HeteroGraph, Relation


def _find_relation(graph: HeteroGraph, src_type: str, dst_type: str) -> Tuple[Relation, bool]:
    """Locate a relation connecting ``src_type -> dst_type`` (maybe reversed)."""
    for relation in graph.relations:
        if relation[0] == src_type and relation[2] == dst_type:
            return relation, False
    for relation in graph.relations:
        if relation[0] == dst_type and relation[2] == src_type:
            return relation, True
    raise KeyError(f"no relation between {src_type!r} and {dst_type!r}")


def metapath_adjacency(graph: HeteroGraph, metapath: Sequence[str],
                       binarize: bool = False) -> sp.csr_matrix:
    """Adjacency of the metapath-induced graph over the endpoint type.

    ``metapath`` is a sequence of node types, e.g. ``("movie", "actor",
    "movie")``.  Steps are resolved against the graph's relations in either
    direction.  The diagonal (a node reaching itself through the path) is
    removed.
    """
    if len(metapath) < 2:
        raise ValueError("a metapath needs at least two node types")
    if metapath[0] != metapath[-1]:
        raise ValueError("metapath must start and end at the same node type "
                         f"(got {metapath[0]!r} .. {metapath[-1]!r})")
    product: Optional[sp.csr_matrix] = None
    for src_type, dst_type in zip(metapath[:-1], metapath[1:]):
        relation, reversed_ = _find_relation(graph, src_type, dst_type)
        step = graph.biadjacency(relation)
        if reversed_:
            step = step.T.tocsr()
        product = step if product is None else (product @ step).tocsr()
    assert product is not None
    product = product.tolil()
    product.setdiag(0)
    product = product.tocsr()
    product.eliminate_zeros()
    if binarize:
        product.data[:] = 1.0
    return product


def compose_biadjacency(graph: HeteroGraph, type_chain: Sequence[str],
                        binarize: bool = True) -> sp.csr_matrix:
    """Chain biadjacency matrices along ``type_chain`` (need not be cyclic).

    Returns the reachability matrix from ``type_chain[0]`` nodes to
    ``type_chain[-1]`` nodes; with ``binarize`` the entries are 0/1 rather
    than path counts (keeps products from blowing up numerically).
    """
    if len(type_chain) < 2:
        raise ValueError("need at least two node types to compose")
    product: Optional[sp.csr_matrix] = None
    for src_type, dst_type in zip(type_chain[:-1], type_chain[1:]):
        relation, reversed_ = _find_relation(graph, src_type, dst_type)
        step = graph.biadjacency(relation)
        if reversed_:
            step = step.T.tocsr()
        # copy the first step: biadjacency() is cached and must stay pristine
        product = step.copy() if product is None else (product @ step).tocsr()
        if binarize:
            product.data[:] = 1.0
    assert product is not None
    return product


def metapath_instances(graph: HeteroGraph, metapath: Sequence[str],
                       cap_per_center: int,
                       rng: np.random.Generator
                       ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Enumerate (endpoint, center, endpoint) triples of a cyclic metapath.

    A metapath instance in MAGNN is a concrete node sequence; we reduce it
    to its two endpoints plus the *center-type* node (APA → A,P,A; APTPA →
    A,T,A reached through papers), which preserves the content of the most
    structurally informative intermediate node while keeping enumeration
    tractable.  Per center node, at most ``cap_per_center`` ordered pairs
    are kept (uniformly subsampled).

    Returns global-id arrays ``(src_endpoint, center, dst_endpoint)``.
    """
    if metapath[0] != metapath[-1]:
        raise ValueError("metapath must be cyclic")
    center_pos = len(metapath) // 2
    center_type = metapath[center_pos]
    reach = compose_biadjacency(graph, metapath[:center_pos + 1]).tocsc()
    src_off = graph.offset_of(metapath[0])
    center_off = graph.offset_of(center_type)
    us, ms, vs = [], [], []
    for center_local in range(reach.shape[1]):
        begin, end = reach.indptr[center_local], reach.indptr[center_local + 1]
        endpoints = reach.indices[begin:end]
        if endpoints.size == 0:
            continue
        grid_u = np.repeat(endpoints, endpoints.size)
        grid_v = np.tile(endpoints, endpoints.size)
        keep = grid_u != grid_v
        grid_u, grid_v = grid_u[keep], grid_v[keep]
        if grid_u.size > cap_per_center:
            picks = rng.choice(grid_u.size, size=cap_per_center, replace=False)
            grid_u, grid_v = grid_u[picks], grid_v[picks]
        us.append(grid_u)
        ms.append(np.full(grid_u.size, center_local, dtype=np.int64))
        vs.append(grid_v)
    if not us:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    return (np.concatenate(us) + src_off,
            np.concatenate(ms) + center_off,
            np.concatenate(vs) + src_off)


def metapath_edge_list(graph: HeteroGraph, metapath: Sequence[str],
                       binarize: bool = True) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Edge list ``(src_local, dst_local, weight)`` of the metapath graph."""
    adj = metapath_adjacency(graph, metapath, binarize=binarize).tocoo()
    return adj.row.astype(np.int64), adj.col.astype(np.int64), adj.data


DEFAULT_METAPATHS: Dict[str, List[Tuple[str, ...]]] = {
    # Same metapath families the paper's models use on the HGB datasets.
    "dblp": [("author", "paper", "author"),
             ("author", "paper", "term", "paper", "author"),
             ("author", "paper", "venue", "paper", "author")],
    "acm": [("paper", "author", "paper"),
            ("paper", "subject", "paper")],
    "imdb": [("movie", "actor", "movie"),
             ("movie", "director", "movie"),
             ("movie", "keyword", "movie")],
    "lastfm": [("user", "artist", "user"),
               ("artist", "user", "artist"),
               ("artist", "tag", "artist")],
}


__all__ = ["metapath_adjacency", "metapath_edge_list", "DEFAULT_METAPATHS"]
