"""Link-prediction task and trainer (HGB protocol, paper Table V/X).

A fraction of the target relation's edges is masked out of the graph and
held as test positives; an equal number of unobserved pairs become test
negatives.  The encoder trains on the remaining graph with BCE over the
training positives plus freshly sampled negatives each epoch; model
selection uses validation ROC-AUC; the report is ROC-AUC and MRR on the
masked edges.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..completion import FeatureBuilder
from ..datasets import HeteroDataset
from ..models import BaseHGNN
from ..tensor import (
    Adam,
    Tensor,
    binary_cross_entropy_with_logits,
    no_grad,
)
from .early_stopping import EarlyStopping
from .metrics import mean_reciprocal_rank, roc_auc


@dataclass
class LinkSplit:
    """Global-id positive/negative pairs for train/val/test."""

    train_pos: np.ndarray  # (2, E) global ids
    val_pos: np.ndarray
    test_pos: np.ndarray
    val_neg: np.ndarray
    test_neg: np.ndarray


def _sample_negatives(n_pairs: int, src_pool: np.ndarray, dst_pool: np.ndarray,
                      forbidden: Set[Tuple[int, int]],
                      rng: np.random.Generator) -> np.ndarray:
    """Sample unobserved (src, dst) pairs uniformly from the typed pools."""
    out_src = np.empty(n_pairs, dtype=np.int64)
    out_dst = np.empty(n_pairs, dtype=np.int64)
    filled = 0
    guard = 0
    while filled < n_pairs:
        guard += 1
        if guard > 200:
            raise RuntimeError("negative sampling failed to find enough pairs")
        remaining = n_pairs - filled
        cand_src = src_pool[rng.integers(0, src_pool.size, size=2 * remaining)]
        cand_dst = dst_pool[rng.integers(0, dst_pool.size, size=2 * remaining)]
        for s, d in zip(cand_src, cand_dst):
            if (int(s), int(d)) in forbidden:
                continue
            out_src[filled] = s
            out_dst[filled] = d
            filled += 1
            if filled == n_pairs:
                break
    return np.stack([out_src, out_dst])


class LinkPredictionTask:
    """Masks target-relation edges and materializes evaluation pairs."""

    def __init__(self, dataset: HeteroDataset, mask_rate: float = 0.10,
                 val_rate: float = 0.05, seed: int = 0) -> None:
        if dataset.link_target is None:
            raise ValueError(f"dataset {dataset.name!r} has no link target")
        if not 0.0 < mask_rate < 1.0:
            raise ValueError("mask rate must be in (0, 1)")
        self.dataset = dataset
        self.relation = dataset.link_target
        rng = np.random.default_rng(seed)
        graph = dataset.graph
        pairs = graph.edges_global(self.relation)  # (2, E)
        n_edges = pairs.shape[1]
        order = rng.permutation(n_edges)
        n_test = max(1, int(round(mask_rate * n_edges)))
        n_val = max(1, int(round(val_rate * n_edges)))
        test_idx = order[:n_test]
        val_idx = order[n_test:n_test + n_val]
        train_idx = order[n_test + n_val:]

        drop_mask = np.zeros(n_edges, dtype=bool)
        drop_mask[test_idx] = True
        drop_mask[val_idx] = True
        self.train_graph_dataset = self._masked_dataset(drop_mask)

        src_type, _, dst_type = self.relation
        src_pool = graph.global_ids(src_type)
        dst_pool = graph.global_ids(dst_type)
        forbidden = set(zip(pairs[0].tolist(), pairs[1].tolist()))
        self.split = LinkSplit(
            train_pos=pairs[:, train_idx],
            val_pos=pairs[:, val_idx],
            test_pos=pairs[:, test_idx],
            val_neg=_sample_negatives(val_idx.size, src_pool, dst_pool,
                                      forbidden, rng),
            test_neg=_sample_negatives(test_idx.size, src_pool, dst_pool,
                                       forbidden, rng),
        )
        self._src_pool = src_pool
        self._dst_pool = dst_pool
        self._forbidden = forbidden
        self._rng = rng

    def _masked_dataset(self, drop_mask: np.ndarray) -> HeteroDataset:
        from dataclasses import replace

        # subgraph_without_edges also strips the matching reverse edges, so
        # the masked positives are completely invisible to the encoder
        graph = self.dataset.graph.subgraph_without_edges(self.relation, drop_mask)
        return replace(self.dataset, graph=graph)

    def sample_train_negatives(self) -> np.ndarray:
        return _sample_negatives(self.split.train_pos.shape[1], self._src_pool,
                                 self._dst_pool, self._forbidden, self._rng)


@dataclass
class LinkPredConfig:
    epochs: int = 150
    lr: float = 5e-4
    weight_decay: float = 1e-4
    patience: int = 20
    verbose: bool = False


@dataclass
class LinkPredResult:
    roc_auc: float
    mrr: float
    val_roc_auc: float
    epochs_run: int
    train_seconds: float
    history: Dict[str, List[float]] = field(default_factory=dict)


def _pair_scores(embeddings: Tensor, pairs: np.ndarray) -> Tensor:
    """Dot-product decoder over (2, E) global-id pairs."""
    h_src = embeddings[pairs[0]]
    h_dst = embeddings[pairs[1]]
    return (h_src * h_dst).sum(axis=-1)


class LinkPredictionTrainer:
    def __init__(self, model: BaseHGNN, features: FeatureBuilder,
                 task: LinkPredictionTask,
                 config: Optional[LinkPredConfig] = None) -> None:
        if not model.full_graph:
            raise ValueError("link prediction needs a full-graph encoder")
        self.model = model
        self.features = features
        self.task = task
        self.config = config or LinkPredConfig()
        params = model.parameters() + features.parameters()
        self.optimizer = Adam(params, lr=self.config.lr,
                              weight_decay=self.config.weight_decay)

    def _embeddings(self) -> Tensor:
        return self.model.encode(self.features())

    def _eval_scores(self, pairs: np.ndarray) -> np.ndarray:
        self.model.eval()
        self.features.eval()
        with no_grad():
            scores = _pair_scores(self._embeddings(), pairs).data
        self.model.train()
        self.features.train()
        return scores

    def evaluate(self, pos: np.ndarray, neg: np.ndarray) -> Dict[str, float]:
        pos_scores = self._eval_scores(pos)
        neg_scores = self._eval_scores(neg)
        labels = np.concatenate([np.ones(pos_scores.size),
                                 np.zeros(neg_scores.size)])
        scores = np.concatenate([pos_scores, neg_scores])
        return {"roc_auc": roc_auc(labels, scores),
                "mrr": mean_reciprocal_rank(pos_scores, neg_scores)}

    def train(self) -> LinkPredResult:
        cfg = self.config
        split = self.task.split
        stopper = EarlyStopping(cfg.patience, [self.model, self.features])
        history: Dict[str, List[float]] = {"train_loss": [], "val_roc_auc": []}
        start = time.perf_counter()
        epochs_run = 0
        for epoch in range(cfg.epochs):
            epochs_run = epoch + 1
            negatives = self.task.sample_train_negatives()
            pairs = np.concatenate([split.train_pos, negatives], axis=1)
            labels = np.concatenate([
                np.ones(split.train_pos.shape[1]),
                np.zeros(negatives.shape[1]),
            ])
            self.optimizer.zero_grad()
            logits = _pair_scores(self._embeddings(), pairs)
            loss = binary_cross_entropy_with_logits(logits, labels)
            if getattr(self.model, "has_auxiliary_loss", False):
                loss = loss + self.model.auxiliary_loss()
            loss.backward()
            self.optimizer.step()
            history["train_loss"].append(loss.item())
            val = self.evaluate(split.val_pos, split.val_neg)["roc_auc"]
            history["val_roc_auc"].append(val)
            if cfg.verbose:
                print(f"epoch {epoch:3d} loss {loss.item():.4f} val AUC {val:.4f}")
            if stopper.step(val, epoch):
                break
        stopper.restore_best()
        elapsed = time.perf_counter() - start
        test = self.evaluate(split.test_pos, split.test_neg)
        return LinkPredResult(
            roc_auc=test["roc_auc"],
            mrr=test["mrr"],
            val_roc_auc=stopper.best_score,
            epochs_run=epochs_run,
            train_seconds=elapsed,
            history=history,
        )


__all__ = [
    "LinkSplit",
    "LinkPredictionTask",
    "LinkPredConfig",
    "LinkPredResult",
    "LinkPredictionTrainer",
]
