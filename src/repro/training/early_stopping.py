"""Patience-based early stopping with best-state snapshots."""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..tensor import Module


class EarlyStopping:
    """Track a score to maximize; snapshot module states at the best epoch."""

    def __init__(self, patience: int, modules: List[Module]) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.modules = modules
        self.best_score = -np.inf
        self.best_epoch = -1
        self.counter = 0
        self._best_states: Optional[List[Dict[str, np.ndarray]]] = None

    def step(self, score: float, epoch: int) -> bool:
        """Record a new score; returns ``True`` when training should stop."""
        if score > self.best_score:
            self.best_score = score
            self.best_epoch = epoch
            self.counter = 0
            self._best_states = [m.state_dict() for m in self.modules]
            return False
        self.counter += 1
        return self.counter >= self.patience

    def restore_best(self) -> None:
        if self._best_states is None:
            return
        for module, state in zip(self.modules, self._best_states):
            module.load_state_dict(state)


__all__ = ["EarlyStopping"]
