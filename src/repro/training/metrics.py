"""Evaluation metrics matching the HGB protocol.

Node classification reports macro/micro F1; link prediction reports
ROC-AUC and MRR (mean reciprocal rank of each positive against the shared
negative pool).  All implementations are pure numpy.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def confusion_counts(y_true: np.ndarray, y_pred: np.ndarray,
                     num_classes: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-class (true positives, false positives, false negatives)."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    tp = np.zeros(num_classes)
    fp = np.zeros(num_classes)
    fn = np.zeros(num_classes)
    for cls in range(num_classes):
        tp[cls] = np.sum((y_pred == cls) & (y_true == cls))
        fp[cls] = np.sum((y_pred == cls) & (y_true != cls))
        fn[cls] = np.sum((y_pred != cls) & (y_true == cls))
    return tp, fp, fn


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> float:
    tp, fp, fn = confusion_counts(y_true, y_pred, num_classes)
    precision = np.divide(tp, tp + fp, out=np.zeros_like(tp), where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros_like(tp), where=(tp + fn) > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom,
                   out=np.zeros_like(tp), where=denom > 0)
    return float(f1.mean())


def micro_f1(y_true: np.ndarray, y_pred: np.ndarray, num_classes: int) -> float:
    tp, fp, fn = confusion_counts(y_true, y_pred, num_classes)
    tp_sum, fp_sum, fn_sum = tp.sum(), fp.sum(), fn.sum()
    if tp_sum == 0:
        return 0.0
    precision = tp_sum / (tp_sum + fp_sum)
    recall = tp_sum / (tp_sum + fn_sum)
    return float(2 * precision * recall / (precision + recall))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def alpha_entropy(alpha: np.ndarray) -> float:
    """Mean per-row entropy (nats) of a completion-parameter matrix.

    The one-number summary of how *decided* a differentiable search is:
    ``log(num_ops)`` while every op is equally plausible, ``0`` once each
    row has collapsed onto a single op.  Non-negative box-constrained
    weights (the discrete NASP alpha) are normalized row-wise by their
    sum — a collapsed one-hot row reads exactly 0 — while matrices with
    negative entries (mixture logits) go through a row softmax.
    """
    values = np.asarray(alpha, dtype=np.float64)
    if values.ndim != 2 or values.size == 0:
        return 0.0
    eps = 1e-12
    if values.min() >= 0.0:
        totals = values.sum(axis=1, keepdims=True)
        uniform = np.full_like(values, 1.0 / values.shape[1])
        rows = np.where(totals > eps, values / np.maximum(totals, eps),
                        uniform)
    else:
        shifted = values - values.max(axis=1, keepdims=True)
        weights = np.exp(shifted)
        rows = weights / weights.sum(axis=1, keepdims=True)
    entropy = -(rows * np.log(rows + eps)).sum(axis=1)
    return float(entropy.mean())


def roc_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """Binary ROC-AUC via the Mann-Whitney rank statistic (tie-aware)."""
    labels = np.asarray(labels, dtype=bool)
    scores = np.asarray(scores, dtype=np.float64)
    n_pos = int(labels.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return 0.5
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # average ranks over ties
    i = 0
    position = 1.0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        avg_rank = (position + position + (j - i)) / 2.0
        ranks[order[i:j + 1]] = avg_rank
        position += j - i + 1
        i = j + 1
    pos_rank_sum = ranks[labels].sum()
    return float((pos_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def mean_reciprocal_rank(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """MRR of each positive against the shared negative score pool.

    Rank = 1 + number of negatives scoring strictly higher (+ half of the
    ties, to be deterministic under score collisions).
    """
    pos_scores = np.asarray(pos_scores, dtype=np.float64)
    neg_scores = np.sort(np.asarray(neg_scores, dtype=np.float64))
    if pos_scores.size == 0:
        return 0.0
    higher = neg_scores.size - np.searchsorted(neg_scores, pos_scores, side="right")
    equal = (np.searchsorted(neg_scores, pos_scores, side="right")
             - np.searchsorted(neg_scores, pos_scores, side="left"))
    ranks = 1.0 + higher + 0.5 * equal
    return float(np.mean(1.0 / ranks))


__all__ = [
    "confusion_counts",
    "macro_f1",
    "micro_f1",
    "accuracy",
    "alpha_entropy",
    "roc_auc",
    "mean_reciprocal_rank",
]
