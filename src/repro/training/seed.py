"""Global seeding for reproducible experiments.

Besides the process-wide :func:`set_seed`, this module owns the
**per-trial seed derivation** used by :mod:`repro.autotune`: every trial
of a tuning run gets ``derive_seed(base_seed, trial_id)``, a
deterministic child seed that is (a) independent of how many workers the
scheduler uses and of the order trials finish in, and (b) spawn-safe —
a freshly spawned worker process calls :func:`set_seed` with the derived
value and needs no RNG state inherited from the parent.  Two schedulers
started from the same base seed therefore produce identical leaderboards
whether they run inline, forked, or spawned.
"""

from __future__ import annotations

import random

import numpy as np

from ..tensor import manual_seed

_SEED_SPAN = 2 ** 32


def set_seed(seed: int) -> None:
    """Seed Python, numpy's legacy RNG, and the tensor package generator."""
    random.seed(seed)
    np.random.seed(seed % _SEED_SPAN)
    manual_seed(seed)


def derive_seed(base_seed: int, *keys: int) -> int:
    """Deterministic child seed from a base seed and integer key path.

    Built on :class:`numpy.random.SeedSequence`, so nearby key paths
    (``trial_id`` 0, 1, 2, …) still yield statistically independent
    streams — incrementing the base seed by the trial id would not.
    Negative inputs are folded into the valid entropy range first.
    """
    entropy = [int(base_seed) % _SEED_SPAN]
    entropy += [int(key) % _SEED_SPAN for key in keys]
    sequence = np.random.SeedSequence(entropy)
    return int(sequence.generate_state(1, dtype=np.uint32)[0])


def set_trial_seed(base_seed: int, trial_id: int) -> int:
    """Seed every RNG for one tuning trial; returns the derived seed.

    The scheduler's workers call this (directly or via the trial's
    pre-derived ``seed`` field) before touching any random state, which
    makes parallel trials reproducible: the result of trial ``i`` depends
    only on ``(base_seed, i)``, never on which worker ran it or what ran
    on that worker before.
    """
    seed = derive_seed(base_seed, trial_id)
    set_seed(seed)
    return seed


__all__ = ["set_seed", "derive_seed", "set_trial_seed"]
