"""Global seeding for reproducible experiments."""

from __future__ import annotations

import random

import numpy as np

from ..tensor import manual_seed


def set_seed(seed: int) -> None:
    """Seed Python, numpy's legacy RNG, and the tensor package generator."""
    random.seed(seed)
    np.random.seed(seed % (2 ** 32))
    manual_seed(seed)


__all__ = ["set_seed"]
