"""Mini-batch neighbor-sampled training — AutoAC beyond full-graph scale.

:class:`NodeClassificationTrainer` runs one full-graph forward per step,
so its peak memory is ``O(N · hidden)`` however small the labelled set
is.  :class:`MiniBatchTrainer` replaces that with seed-node batching over
the target type plus relation-aware fan-out sampling
(:class:`~repro.graph.NeighborSampler`): each step samples a bounded
:class:`~repro.graph.GraphView` around a batch of training seeds, builds
``h0`` *for the view only* (view-aware feature builders complete exactly
the V⁻ nodes the batch touches), and runs a view forward of a
``supports_sampling`` backbone.  No ``(N, hidden)`` activation is ever
materialized on this path — peak forward-tensor rows are bounded by
``batch_size × fan-out`` (see :meth:`NeighborSampler.max_view_nodes`),
which is what ``benchmarks/test_minibatch_scale.py`` asserts.

Evaluation is sampled too (fixed eval seed, so early-stopping scores are
comparable across epochs); with a fanout at or above the maximum degree
sampling keeps every neighbor and the trainer reproduces the full-graph
path's quality — the equivalence the tier-1 tests pin down.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..completion import FeatureBuilder
from ..datasets import HeteroDataset
from ..graph.sampler import FanoutSpec, NeighborSampler
from ..models import BaseHGNN
from ..tensor import Adam, cross_entropy, no_grad
from .early_stopping import EarlyStopping
from .metrics import macro_f1, micro_f1
from .trainer import TrainConfig, TrainResult, epoch_instruments


@dataclass
class MiniBatchConfig(TrainConfig):
    """Hyperparameters of a sampled training run.

    Extends :class:`TrainConfig` with the sampling knobs.  ``fanout`` is
    per relation per hop (int or ``{relation: int}``); ``num_layers``
    defaults to the model's layer count so the sampled receptive field
    matches the architecture.  ``batches_per_epoch`` caps the number of
    optimizer steps per epoch (None → every training seed once).
    """

    batch_size: int = 128
    fanout: FanoutSpec = 10
    num_layers: Optional[int] = None
    batches_per_epoch: Optional[int] = None
    eval_batch_size: int = 512
    sample_seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be >= 1")


class MiniBatchTrainer:
    """Seed-node mini-batch trainer over sampled :class:`GraphView`\\ s.

    Drop-in alternative to :class:`NodeClassificationTrainer` for
    backbones with ``supports_sampling = True`` (GCN, GAT, SimpleHGN).
    Tracks ``peak_view_nodes`` so callers (and the scale benchmark) can
    assert the bounded-memory contract.
    """

    def __init__(self, model: BaseHGNN, features: FeatureBuilder,
                 dataset: HeteroDataset,
                 config: Optional[MiniBatchConfig] = None,
                 sampler: Optional[NeighborSampler] = None) -> None:
        if not getattr(model, "supports_sampling", False):
            raise ValueError(
                f"{type(model).__name__} does not support sampled "
                f"execution; use NodeClassificationTrainer or a "
                f"supports_sampling backbone")
        self.model = model
        self.features = features
        self.dataset = dataset
        self.config = config or MiniBatchConfig()
        cfg = self.config
        num_layers = cfg.num_layers or getattr(model, "num_layers", 2)
        self.sampler = sampler or NeighborSampler(
            dataset.graph, fanout=cfg.fanout, num_layers=num_layers,
            seed=cfg.sample_seed)
        self._eval_layers = self.sampler.num_layers
        params = model.parameters() + features.parameters()
        self.optimizer = Adam(params, lr=cfg.lr,
                              weight_decay=cfg.weight_decay)
        self.rng = np.random.default_rng(cfg.sample_seed)
        #: largest sampled view seen (nodes) — the memory watermark; node
        #: tensors are view-sized, per-edge tensors are a further
        #: R·fanout factor on top (both fan-out bounded)
        self.peak_view_nodes = 0

    # ------------------------------------------------------------------
    def _note_view(self, view) -> None:
        self.peak_view_nodes = max(self.peak_view_nodes, view.num_nodes)

    def _batch_loss(self, batch_local: np.ndarray):
        """Loss of one sampled batch of target-type local ids."""
        seeds = self.dataset.graph.to_global(self.dataset.target_type,
                                             batch_local)
        view = self.sampler.sample(seeds)
        self._note_view(view)
        h0 = self.features(view)
        logits = self.model(h0, view=view)
        loss = cross_entropy(logits, self.dataset.labels[batch_local])
        if getattr(self.model, "has_auxiliary_loss", False):
            loss = loss + self.model.auxiliary_loss()
        return loss

    def _batches(self, indices: np.ndarray, batch_size: int,
                 shuffle: bool) -> List[np.ndarray]:
        order = self.rng.permutation(indices) if shuffle else indices
        return [order[start:start + batch_size]
                for start in range(0, order.shape[0], batch_size)]

    # ------------------------------------------------------------------
    def predict(self, indices: np.ndarray) -> np.ndarray:
        """Sampled inference over target-type local ids, one view per batch.

        A fixed evaluation seed makes the sampled neighborhoods — and so
        the scores early stopping compares — reproducible across epochs.
        """
        cfg = self.config
        eval_sampler = NeighborSampler(
            self.dataset.graph, fanout=cfg.fanout,
            num_layers=self._eval_layers, seed=cfg.sample_seed + 1)
        self.model.eval()
        self.features.eval()
        out = np.empty(indices.shape[0], dtype=np.int64)
        with no_grad():
            for start in range(0, indices.shape[0], cfg.eval_batch_size):
                batch = indices[start:start + cfg.eval_batch_size]
                seeds = self.dataset.graph.to_global(
                    self.dataset.target_type, batch)
                view = eval_sampler.sample(seeds)
                self._note_view(view)
                logits = self.model(self.features(view), view=view)
                out[start:start + batch.shape[0]] = np.argmax(
                    logits.data, axis=-1)
        self.model.train()
        self.features.train()
        return out

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        predictions = self.predict(indices)
        truth = self.dataset.labels[indices]
        k = self.dataset.num_classes
        return {"macro_f1": macro_f1(truth, predictions, k),
                "micro_f1": micro_f1(truth, predictions, k)}

    # ------------------------------------------------------------------
    def train(self) -> TrainResult:
        cfg = self.config
        split = self.dataset.split
        stopper = EarlyStopping(cfg.patience, [self.model, self.features])
        history: Dict[str, List[float]] = {"train_loss": [],
                                           "val_macro_f1": []}
        record_epoch, record_eval = epoch_instruments("minibatch")
        start = time.perf_counter()
        epochs_run = 0
        for epoch in range(cfg.epochs):
            epochs_run = epoch + 1
            epoch_start = time.perf_counter()
            batches = self._batches(split.train, cfg.batch_size, shuffle=True)
            if cfg.batches_per_epoch is not None:
                batches = batches[:cfg.batches_per_epoch]
            epoch_loss = 0.0
            for batch in batches:
                self.optimizer.zero_grad()
                loss = self._batch_loss(batch)
                loss.backward()
                self.optimizer.step()
                epoch_loss += loss.item() * batch.shape[0]
            seen = sum(b.shape[0] for b in batches)
            history["train_loss"].append(epoch_loss / max(seen, 1))
            record_epoch(time.perf_counter() - epoch_start,
                         history["train_loss"][-1])
            if epoch % cfg.eval_every == 0:
                val = self.evaluate(split.val)["macro_f1"]
                history["val_macro_f1"].append(val)
                record_eval(val)
                if cfg.verbose:
                    print(f"epoch {epoch:3d} loss "
                          f"{history['train_loss'][-1]:.4f} "
                          f"val macro-F1 {val:.4f}")
                if stopper.step(val, epoch):
                    break
        stopper.restore_best()
        elapsed = time.perf_counter() - start
        test = self.evaluate(split.test)
        return TrainResult(
            macro_f1=test["macro_f1"],
            micro_f1=test["micro_f1"],
            val_macro_f1=stopper.best_score,
            epochs_run=epochs_run,
            train_seconds=elapsed,
            history=history,
        )


__all__ = ["MiniBatchConfig", "MiniBatchTrainer"]
