"""Node-classification trainer (HGB protocol).

Jointly optimizes a feature builder (attribute completion) and a GNN with
Adam, early-stops on validation macro-F1, restores the best snapshot and
reports test macro/micro-F1 — the quantities of the paper's Tables II/III
and VI-IX.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..completion import FeatureBuilder
from ..datasets import HeteroDataset
from ..models import BaseHGNN
from ..telemetry import DEFAULT_TIME_BUCKETS, get_registry
from ..tensor import Adam, Tensor, cross_entropy, no_grad
from .early_stopping import EarlyStopping
from .metrics import macro_f1, micro_f1


def epoch_instruments(trainer: str):
    """Per-epoch instruments on the global registry, shared by both
    trainers (``trainer`` label: ``full_graph`` | ``minibatch``).

    Returns ``(record_epoch, record_eval)`` closures so the epoch loop
    stays one call per event; overhead is nanoseconds against an epoch.
    """
    registry = get_registry()
    epochs = registry.counter("train_epochs_total",
                              "Training epochs completed",
                              labels=("trainer",))
    seconds = registry.histogram("train_epoch_seconds",
                                 "Wall time per training epoch",
                                 labels=("trainer",),
                                 buckets=DEFAULT_TIME_BUCKETS)
    loss_gauge = registry.gauge("train_loss", "Most recent training loss",
                                labels=("trainer",), aggregation="last")
    val_gauge = registry.gauge("train_val_macro_f1",
                               "Most recent validation macro-F1",
                               labels=("trainer",), aggregation="last")

    def record_epoch(elapsed: float, loss: float) -> None:
        epochs.inc(trainer=trainer)
        seconds.observe(elapsed, trainer=trainer)
        loss_gauge.set(loss, trainer=trainer)

    def record_eval(val_macro_f1: float) -> None:
        val_gauge.set(val_macro_f1, trainer=trainer)

    return record_epoch, record_eval


@dataclass
class TrainConfig:
    """Hyperparameters of a supervised training run.

    Defaults follow the paper's implementation details (§V-B): Adam with
    lr 5e-4 and weight decay 1e-4 for the GNN weights ``w``.
    """

    epochs: int = 200
    lr: float = 5e-4
    weight_decay: float = 1e-4
    patience: int = 30
    eval_every: int = 1
    verbose: bool = False


@dataclass
class TrainResult:
    macro_f1: float
    micro_f1: float
    val_macro_f1: float
    epochs_run: int
    train_seconds: float
    history: Dict[str, List[float]] = field(default_factory=dict)


class NodeClassificationTrainer:
    def __init__(self, model: BaseHGNN, features: FeatureBuilder,
                 dataset: HeteroDataset,
                 config: Optional[TrainConfig] = None) -> None:
        self.model = model
        self.features = features
        self.dataset = dataset
        self.config = config or TrainConfig()
        params = model.parameters() + features.parameters()
        self.optimizer = Adam(params, lr=self.config.lr,
                              weight_decay=self.config.weight_decay)

    # ------------------------------------------------------------------
    def _loss(self, indices: np.ndarray) -> Tensor:
        h0 = self.features()
        logits = self.model(h0)
        loss = cross_entropy(logits[indices], self.dataset.labels[indices])
        if getattr(self.model, "has_auxiliary_loss", False):
            loss = loss + self.model.auxiliary_loss()
        return loss

    def _predict(self) -> np.ndarray:
        self.model.eval()
        self.features.eval()
        with no_grad():
            logits = self.model(self.features())
        self.model.train()
        self.features.train()
        return np.argmax(logits.data, axis=-1)

    def evaluate(self, indices: np.ndarray) -> Dict[str, float]:
        predictions = self._predict()[indices]
        truth = self.dataset.labels[indices]
        k = self.dataset.num_classes
        return {"macro_f1": macro_f1(truth, predictions, k),
                "micro_f1": micro_f1(truth, predictions, k)}

    # ------------------------------------------------------------------
    def train(self) -> TrainResult:
        cfg = self.config
        split = self.dataset.split
        stopper = EarlyStopping(cfg.patience, [self.model, self.features])
        history: Dict[str, List[float]] = {"train_loss": [], "val_macro_f1": []}
        record_epoch, record_eval = epoch_instruments("full_graph")
        start = time.perf_counter()
        epochs_run = 0
        for epoch in range(cfg.epochs):
            epochs_run = epoch + 1
            epoch_start = time.perf_counter()
            self.optimizer.zero_grad()
            loss = self._loss(split.train)
            loss.backward()
            self.optimizer.step()
            history["train_loss"].append(loss.item())
            record_epoch(time.perf_counter() - epoch_start, loss.item())
            if epoch % cfg.eval_every == 0:
                val = self.evaluate(split.val)["macro_f1"]
                history["val_macro_f1"].append(val)
                record_eval(val)
                if cfg.verbose:
                    print(f"epoch {epoch:3d} loss {loss.item():.4f} "
                          f"val macro-F1 {val:.4f}")
                if stopper.step(val, epoch):
                    break
        stopper.restore_best()
        elapsed = time.perf_counter() - start
        test = self.evaluate(split.test)
        return TrainResult(
            macro_f1=test["macro_f1"],
            micro_f1=test["micro_f1"],
            val_macro_f1=stopper.best_score,
            epochs_run=epochs_run,
            train_seconds=elapsed,
            history=history,
        )


def run_repeats(factory, repeats: int = 3, base_seed: int = 0):
    """Run ``factory(seed) -> TrainResult`` several times; aggregate stats.

    Mirrors the paper's "run five times, report mean ± std" protocol (we
    default to three repeats to keep the CPU budget sane).
    """
    from .seed import set_seed

    results = []
    for run in range(repeats):
        set_seed(base_seed + run)
        results.append(factory(base_seed + run))
    macro = np.array([r.macro_f1 for r in results])
    micro = np.array([r.micro_f1 for r in results])
    return {
        "macro_f1_mean": float(macro.mean()),
        "macro_f1_std": float(macro.std()),
        "micro_f1_mean": float(micro.mean()),
        "micro_f1_std": float(micro.std()),
        "train_seconds_mean": float(np.mean([r.train_seconds for r in results])),
        "results": results,
    }


__all__ = ["TrainConfig", "TrainResult", "NodeClassificationTrainer",
           "epoch_instruments", "run_repeats"]
