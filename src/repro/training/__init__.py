"""``repro.training`` — trainers, metrics, early stopping, seeding."""

from .early_stopping import EarlyStopping
from .link_prediction import (
    LinkPredConfig,
    LinkPredResult,
    LinkPredictionTask,
    LinkPredictionTrainer,
    LinkSplit,
)
from .metrics import (
    accuracy,
    confusion_counts,
    macro_f1,
    mean_reciprocal_rank,
    micro_f1,
    roc_auc,
)
from .minibatch import MiniBatchConfig, MiniBatchTrainer
from .seed import derive_seed, set_seed, set_trial_seed
from .trainer import (
    NodeClassificationTrainer,
    TrainConfig,
    TrainResult,
    run_repeats,
)

__all__ = [
    "EarlyStopping",
    "set_seed",
    "derive_seed",
    "set_trial_seed",
    "macro_f1",
    "micro_f1",
    "accuracy",
    "roc_auc",
    "mean_reciprocal_rank",
    "confusion_counts",
    "TrainConfig",
    "TrainResult",
    "NodeClassificationTrainer",
    "MiniBatchConfig",
    "MiniBatchTrainer",
    "run_repeats",
    "LinkSplit",
    "LinkPredictionTask",
    "LinkPredConfig",
    "LinkPredResult",
    "LinkPredictionTrainer",
]
