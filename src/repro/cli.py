"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``   print Table-I-style statistics of the synthetic datasets
``search``     run the AutoAC search (+retrain) on one dataset/backbone
``train``      train a backbone with a fixed completion policy
``table``      regenerate one paper table (2-10)
``figure``     regenerate one paper figure (3, 4, 5, 67, 8, 9, 1011)
``export``     search + retrain, then export a servable ModelBundle
``serve``      serve a ModelBundle over HTTP (predict/onboard/stats/metrics)
``predict``    query a bundle (locally or against a running server)
``metrics``    scrape a running server's /metrics and pretty-print it
``profile``    run a small search under the op-level profiler
``tune``       trial-based architecture search on the parallel scheduler
``strategies`` list the registered tuning strategies
``report``     render a trial journal to a self-contained HTML report
``runs``       list / compare / diff registered runs (see docs/OBSERVABILITY.md)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_scale(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium", "paper"])
    parser.add_argument("--seed", type=int, default=0)


def _add_fault_plan(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--fault-plan", default=None,
                        help="arm a chaos fault plan: path to a JSON file "
                             "or inline JSON (see docs/ROBUSTNESS.md); "
                             "worker processes inherit it")


def _arm_fault_plan(args: argparse.Namespace) -> None:
    """Arm ``--fault-plan`` (inline JSON or a path) process-wide."""
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return
    from .faults import FaultPlan, arm

    plan = (FaultPlan.from_json(spec) if spec.lstrip().startswith("{")
            else FaultPlan.load(spec))
    arm(plan)
    print(f"fault plan armed: seed={plan.seed}, "
          f"sites={', '.join(plan.sites())}", file=sys.stderr)


def _cmd_datasets(args: argparse.Namespace) -> int:
    from .datasets import dataset_names, get_dataset
    from .datasets.stats import dataset_statistics, render_table1

    stats = [dataset_statistics(get_dataset(name, scale=args.scale,
                                            seed=args.seed))
             for name in dataset_names()]
    print(render_table1(stats))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    from .core import AutoACConfig, run_autoac
    from .core.serialize import save_search_result
    from .datasets import get_dataset
    from .training import TrainConfig, set_seed

    dataset = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
    set_seed(args.seed)
    config = AutoACConfig(
        search_epochs=args.epochs,
        patience=max(args.epochs // 4, 5),
        num_clusters=args.clusters,
        retrain=TrainConfig(epochs=args.epochs, patience=max(args.epochs // 4,
                                                             5)),
    )
    result = run_autoac(dataset, args.model, config, seed=args.seed)
    print(f"macro-F1 {result.final.macro_f1:.4f}  "
          f"micro-F1 {result.final.micro_f1:.4f}")
    print(f"search {result.search.search_seconds:.1f}s  "
          f"retrain {result.final.train_seconds:.1f}s")
    for op, fraction in result.search.op_distribution().items():
        print(f"  {op:>8s}: {fraction:6.1%}")
    if args.out:
        save_search_result(result.search, args.out)
        print(f"search result written to {args.out}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .completion import (
        FixedAssignmentFeatures,
        HandcraftedFeatures,
        SingleOpFeatures,
    )
    from .core.serialize import load_search_result
    from .datasets import get_dataset
    from .models import build_model
    from .training import NodeClassificationTrainer, TrainConfig, set_seed

    dataset = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
    set_seed(args.seed)
    if args.from_search:
        search = load_search_result(args.from_search)
        features = FixedAssignmentFeatures(dataset, 64, search.assignment)
    elif args.completion == "one_hot_handcrafted":
        features = HandcraftedFeatures(dataset, 64)
    else:
        features = SingleOpFeatures(dataset, 64, args.completion)
    model = build_model(args.model, dataset)
    config = TrainConfig(epochs=args.epochs,
                         patience=max(args.epochs // 4, 5))
    result = NodeClassificationTrainer(model, features, dataset,
                                       config).train()
    print(f"macro-F1 {result.macro_f1:.4f}  micro-F1 {result.micro_f1:.4f}  "
          f"({result.train_seconds:.1f}s, {result.epochs_run} epochs)")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from .experiments import reporting, tables

    drivers = {
        "2": (tables.table2, reporting.render_node_clf_table),
        "3": (tables.table3, reporting.render_node_clf_table),
        "4": (tables.table4, reporting.render_table4),
        "5": (tables.table5, reporting.render_table5),
        "6": (tables.table6, reporting.render_node_clf_table),
        "7": (tables.table7, reporting.render_node_clf_table),
        "8": (tables.table8, reporting.render_table8),
        "9": (tables.table9, reporting.render_table9),
        "10": (tables.table10, reporting.render_table10),
    }
    driver, renderer = drivers[args.number]
    result = driver(scale=args.scale, seed=args.seed)
    print(renderer(result))
    if args.json:
        from .experiments.reporting import to_json
        with open(args.json, "w") as handle:
            handle.write(to_json(result))
        print(f"raw results written to {args.json}")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from .experiments import figures, reporting

    if args.number == "3":
        result = figures.figure3(scale=args.scale, seed=args.seed)
        print(reporting.render_figure3(result))
    elif args.number == "4":
        result = figures.figure4(scale=args.scale, seed=args.seed)
        print(reporting.render_figure4(result))
    elif args.number == "5":
        result = figures.figure5(scale=args.scale, seed=args.seed)
        print(reporting.render_figure5(result))
    elif args.number == "67":
        result = figures.figure6_7(scale=args.scale, seed=args.seed)
        print(reporting.render_figure6_7(result))
    elif args.number == "8":
        result = figures.figure8(scale=args.scale, seed=args.seed)
        print(reporting.render_sweep(result, "series", "M"))
    elif args.number == "9":
        result = figures.figure9(scale=args.scale, seed=args.seed)
        print(reporting.render_sweep(result, "series", "lambda"))
    else:  # "1011"
        result = figures.figure10_11(scale=args.scale, seed=args.seed)
        print(reporting.render_figure10_11(result))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .core import AutoACConfig, run_autoac
    from .datasets import get_dataset
    from .perf import runtime_profile
    from .training import TrainConfig, set_seed

    with runtime_profile(args.runtime) as active:
        dataset = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
        set_seed(args.seed)
        config = AutoACConfig(
            search_epochs=args.epochs,
            patience=max(args.epochs // 4, 5),
            warmup_epochs=min(2, args.epochs),
            retrain=TrainConfig(epochs=args.epochs,
                                patience=max(args.epochs // 4, 5)),
        )
        result = run_autoac(dataset, args.model, config, seed=args.seed,
                            profile=True)
    if args.json:
        import json

        payload = json.dumps(result.profile.to_json(), indent=2)
        if args.json == "-":
            print(payload)
            return 0
        with open(args.json, "w") as handle:
            handle.write(payload + "\n")
        print(f"profile report written to {args.json}")
    print(f"runtime profile: {active.describe()}")
    print(f"search {result.search.search_seconds:.2f}s  "
          f"retrain {result.final.train_seconds:.2f}s  "
          f"macro-F1 {result.final.macro_f1:.4f}")
    print()
    print(result.profile.render(limit=args.top))
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    from .autotune import STRATEGY_REGISTRY, available_strategies

    for name in available_strategies():
        doc = (STRATEGY_REGISTRY[name].__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        print(f"{name:>10s}  {summary}")
    return 0


def _build_stopper(args: argparse.Namespace):
    """Compose the tune stopper from CLI flags (None when none are set)."""
    from .autotune import ProgressThresholdStopper, TargetScoreStopper

    stopper = None
    if args.stop_patience:
        stopper = ProgressThresholdStopper(patience=args.stop_patience,
                                           min_delta=args.stop_min_delta)
    if args.target_score is not None:
        target = TargetScoreStopper(args.target_score)
        stopper = target if stopper is None else stopper | target
    return stopper


def _cmd_tune(args: argparse.Namespace) -> int:
    from .autotune import (
        DatasetRef,
        TrialScheduler,
        TuneTask,
        build_strategy,
        export_best,
    )
    from .core import AutoACConfig
    from .training import TrainConfig

    search_config = AutoACConfig(
        hidden_dim=args.hidden_dim,
        out_dim=args.hidden_dim,
        num_clusters=args.slots,
        search_epochs=args.search_epochs,
        patience=max(args.search_epochs // 4, 5),
        retrain=TrainConfig(epochs=args.budget,
                            patience=max(args.budget // 4, 5)),
    )
    task = TuneTask(
        dataset=DatasetRef(args.dataset, scale=args.scale, seed=args.seed),
        model_name=args.model,
        hidden_dim=args.hidden_dim,
        out_dim=args.hidden_dim,
        num_slots=args.slots,
        max_budget=args.budget,
        search_config=search_config,
    )
    if args.strategy == "grid":
        print("grid sweeps need an explicit values list; use "
              "repro.experiments.runner.tune_sweep (or the figure "
              "drivers) instead of `repro tune --strategy grid`",
              file=sys.stderr)
        return 2
    kwargs = {}
    if args.strategy in ("random", "evolution", "asha"):
        kwargs["num_trials"] = args.trials
    if args.strategy == "asha":
        kwargs["eta"] = args.eta
        if args.min_budget:
            kwargs["min_budget"] = args.min_budget
    if args.strategy == "evolution":
        population = max(2, min(args.population, args.trials))
        kwargs["population_size"] = population
        kwargs["sample_size"] = max(1, min(args.sample_size, population))
    strategy = build_strategy(args.strategy, num_slots=task.num_slots,
                              num_ops=task.num_ops,
                              max_budget=task.max_budget, seed=args.seed,
                              **kwargs)
    _arm_fault_plan(args)
    scheduler = TrialScheduler(task, strategy, workers=args.workers,
                               journal=args.journal, resume=args.resume,
                               stopper=_build_stopper(args),
                               max_trial_retries=args.trial_retries,
                               trial_timeout_s=(args.trial_timeout or None))
    report = scheduler.run()
    stats = report.stats
    print(f"{args.strategy}: {stats.executed} trials run, "
          f"{stats.replayed} replayed from journal, {stats.failed} failed"
          + (f", {stats.worker_deaths} worker deaths"
             if stats.worker_deaths else "")
          + (f", {stats.retried} retried" if stats.retried else "")
          + (f", {stats.quarantined} quarantined"
             if stats.quarantined else "")
          + (f", {stats.timeouts} timed out" if stats.timeouts else ""))
    if report.stopped:
        print(f"stopped early by {report.stopped['stopper']} at trial "
              f"{report.stopped['trial_id']}: {report.stopped['reason']}")
    print(f"{'rank':>4s} {'trial':>5s} {'rung':>4s} {'budget':>6s} "
          f"{'val-F1':>8s} {'test-F1':>8s}")
    for rank, row in enumerate(report.leaderboard(args.top), start=1):
        print(f"{rank:>4d} {row.trial_id:>5d} {row.rung:>4d} "
              f"{row.budget_used:>6d} {row.score:>8.4f} "
              f"{row.macro_f1:>8.4f}")
    if args.out:
        bundle = export_best(report, path=args.out)
        print(f"best trial retrained and exported to {args.out} "
              f"(macro-F1 {bundle.metrics['macro_f1']:.4f})")
    if args.runs_dir and args.journal:
        from .runs import RunRegistry

        record = RunRegistry(args.runs_dir).ingest(args.journal,
                                                   overwrite=True)
        print(f"run registered as {record.name!r} under {args.runs_dir}/")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .runs import write_report

    out = write_report(args.journal, out=args.out, top=args.top)
    print(f"report written to {out}")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    from .experiments.reporting import render_run_diff, render_runs_index
    from .runs import RunRegistry

    registry = RunRegistry(args.dir)
    if args.action == "list":
        print(render_runs_index(registry.index()))
        return 0
    if args.action == "ingest":
        if not args.runs:
            print("runs ingest needs a journal path", file=sys.stderr)
            return 2
        record = registry.ingest(args.runs[0], name=args.name,
                                 overwrite=args.overwrite)
        print(f"run registered as {record.name!r} under {args.dir}/")
        return 0
    # compare / diff take exactly two runs (registered names or paths)
    if len(args.runs) != 2:
        print(f"runs {args.action} needs exactly two runs "
              f"(registered: {', '.join(registry.names()) or 'none'})",
              file=sys.stderr)
        return 2
    if args.action == "diff":
        rows = registry.diff(args.runs[0], args.runs[1])
        if not rows:
            print("identical setups")
        for row in rows:
            print(f"{row['path']:<32s} {row['a']!r} -> {row['b']!r}")
        return 0
    print(render_run_diff(registry.compare(args.runs[0], args.runs[1])))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .core import AutoACConfig, run_autoac
    from .datasets import get_dataset
    from .serving import DatasetSpec, bundle_from_result
    from .training import TrainConfig, set_seed

    dataset = get_dataset(args.dataset, scale=args.scale, seed=args.seed)
    set_seed(args.seed)
    config = AutoACConfig(
        search_epochs=args.epochs,
        patience=max(args.epochs // 4, 5),
        num_clusters=args.clusters,
        retrain=TrainConfig(epochs=args.epochs, patience=max(args.epochs // 4,
                                                             5)),
    )
    result = run_autoac(dataset, args.model, config, seed=args.seed,
                        keep_artifacts=True)
    spec = DatasetSpec(name=args.dataset, scale=args.scale, seed=args.seed)
    bundle = bundle_from_result(result, dataset, spec, args.model, config)
    bundle.save(args.out)
    print(f"macro-F1 {result.final.macro_f1:.4f}  "
          f"micro-F1 {result.final.micro_f1:.4f}")
    print(f"bundle written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serving import (
        EngineConfig,
        InferenceEngine,
        ServerConfig,
        ServingServer,
    )
    from .telemetry import EventSink, Tracer

    _arm_fault_plan(args)
    if args.workers > 1:
        from .serving import FrontendConfig, ServingTier, TierConfig

        tier = ServingTier(
            args.bundle,
            TierConfig(workers=args.workers, mmap=not args.no_mmap,
                       wal_path=args.wal or None),
            engine_config=EngineConfig(max_batch_size=args.batch_size,
                                       cache_size=args.cache_size),
            host=args.host, port=args.port,
            frontend_config=FrontendConfig(
                deadline_ms=(args.deadline_ms or None),
                max_queue=args.max_queue,
                max_batch=args.batch_size,
                max_body_bytes=args.max_body_bytes))
        print(f"serving {args.bundle} with {args.workers} workers "
              f"({'mmap' if not args.no_mmap else 'eager'} bundle, "
              f"writer=worker 0) at http://{args.host}:{args.port} "
              f"(/healthz /readyz /predict /onboard /stats /metrics); "
              f"Ctrl-C to stop, SIGTERM to drain")
        try:
            tier.serve_forever()
        except KeyboardInterrupt:
            tier.shutdown()
        return 0
    # spans go to --telemetry-out (JSONL); access records share that
    # sink when present, else fall back to stderr so --access-log alone
    # still produces structured lines somewhere visible
    trace_sink = EventSink(args.telemetry_out) if args.telemetry_out else None
    tracer = Tracer(trace_sink) if trace_sink is not None else None
    access_sink = None
    if args.access_log:
        access_sink = trace_sink or EventSink(sys.stderr)
    engine = InferenceEngine.from_path(
        args.bundle, EngineConfig(max_batch_size=args.batch_size,
                                  cache_size=args.cache_size),
        tracer=tracer)
    if args.wal:
        replayed = engine.attach_wal(args.wal)
        if replayed:
            print(f"replayed {replayed} onboard(s) from {args.wal}")
    server = ServingServer(
        engine, host=args.host, port=args.port, access_sink=access_sink,
        config=ServerConfig(deadline_ms=(args.deadline_ms or None),
                            max_inflight=args.max_inflight,
                            max_queue=args.max_queue,
                            max_body_bytes=args.max_body_bytes))
    server.register_sigterm_drain()
    host, port = server.address
    print(f"serving {args.bundle} at http://{host}:{port} "
          f"(/healthz /readyz /predict /onboard /stats /metrics); "
          f"Ctrl-C to stop, SIGTERM to drain")
    if args.telemetry_out:
        print(f"trace spans -> {args.telemetry_out}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.shutdown()
    finally:
        engine.close()
        if trace_sink is not None:
            trace_sink.close()
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    import urllib.request

    from .telemetry import parse_prometheus

    with urllib.request.urlopen(args.url.rstrip("/") + "/metrics") as reply:
        text = reply.read().decode()
    try:
        if args.raw:
            print(text, end="")
            return 0
        parsed = parse_prometheus(text)
        meta = parsed["meta"]
        rows = sorted(parsed["samples"].items())
        last_family = None
        for (name, labels), value in rows:
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[:-len(suffix)] in meta:
                    family = family[:-len(suffix)]
            if family != last_family:
                info = meta.get(family, {})
                kind = info.get("type", "untyped")
                help_text = info.get("help", "")
                print(f"\n# {family} ({kind})"
                      + (f" — {help_text}" if help_text else ""))
                last_family = family
            if args.no_buckets and name.endswith("_bucket"):
                continue
            label_text = ",".join(f"{k}={v}" for k, v in labels)
            series = name + (f"{{{label_text}}}" if label_text else "")
            print(f"  {series:<64s} {value:g}")
    except BrokenPipeError:
        # e.g. `repro metrics ... | head` — the consumer hung up, fine
        sys.stderr.close()
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    if not args.bundle and not args.url:
        print("predict needs --bundle (local) or --url (running server)",
              file=sys.stderr)
        return 2
    node_ids = [int(piece) for piece in args.nodes.split(",") if piece]
    if args.url:
        import json
        import urllib.request

        request = urllib.request.Request(
            args.url.rstrip("/") + "/predict",
            data=json.dumps({"node_ids": node_ids}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as response:
            payload = json.loads(response.read())
        predictions = payload["predictions"]
        labels = payload["labels"]
    else:
        from .serving import InferenceEngine

        engine = InferenceEngine.from_path(args.bundle)
        results = engine.predict_batch(node_ids)
        predictions = [entry["prediction"] for entry in results]
        labels = [entry["label"] for entry in results]
    for node_id, prediction, label in zip(node_ids, predictions, labels):
        print(f"node {node_id:6d}  class {prediction}  ({label})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AutoAC reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    p_datasets = sub.add_parser("datasets", help="dataset statistics (Table I)")
    _add_scale(p_datasets)
    p_datasets.set_defaults(func=_cmd_datasets)

    p_search = sub.add_parser("search", help="run the AutoAC search")
    _add_scale(p_search)
    p_search.add_argument("--dataset", default="imdb")
    p_search.add_argument("--model", default="simple_hgn")
    p_search.add_argument("--epochs", type=int, default=60)
    p_search.add_argument("--clusters", type=int, default=8)
    p_search.add_argument("--out", default=None,
                          help="write the search result to this .npz file")
    p_search.set_defaults(func=_cmd_search)

    p_train = sub.add_parser("train", help="train with a fixed completion")
    _add_scale(p_train)
    p_train.add_argument("--dataset", default="imdb")
    p_train.add_argument("--model", default="simple_hgn")
    p_train.add_argument("--epochs", type=int, default=60)
    p_train.add_argument("--completion", default="one_hot_handcrafted",
                         help="one_hot_handcrafted | mean | gcn | ppnp | one_hot")
    p_train.add_argument("--from-search", default=None,
                         help="reuse a saved search result (.npz)")
    p_train.set_defaults(func=_cmd_train)

    p_table = sub.add_parser("table", help="regenerate a paper table")
    _add_scale(p_table)
    p_table.add_argument("number", choices=[str(i) for i in range(2, 11)])
    p_table.add_argument("--json", default=None,
                         help="also dump raw results to this JSON file")
    p_table.set_defaults(func=_cmd_table)

    p_figure = sub.add_parser("figure", help="regenerate a paper figure")
    _add_scale(p_figure)
    p_figure.add_argument("number",
                          choices=["3", "4", "5", "67", "8", "9", "1011"])
    p_figure.set_defaults(func=_cmd_figure)

    p_export = sub.add_parser(
        "export", help="search + retrain, then export a servable bundle")
    _add_scale(p_export)
    p_export.add_argument("--dataset", default="imdb")
    p_export.add_argument("--model", default="simple_hgn")
    p_export.add_argument("--epochs", type=int, default=60)
    p_export.add_argument("--clusters", type=int, default=8)
    p_export.add_argument("--out", required=True,
                          help="write the ModelBundle to this .npz file")
    p_export.set_defaults(func=_cmd_export)

    p_profile = sub.add_parser(
        "profile", help="run a small search under the op-level profiler")
    _add_scale(p_profile)
    p_profile.add_argument("--dataset", default="imdb")
    p_profile.add_argument("--model", default="simple_hgn")
    p_profile.add_argument("--epochs", type=int, default=8)
    p_profile.add_argument("--runtime", default="reference",
                           choices=["reference", "fast"],
                           help="runtime profile to measure under")
    p_profile.add_argument("--top", type=int, default=30,
                           help="rows to show in the per-op table")
    p_profile.add_argument("--json", default=None,
                           help="write the ProfileReport as JSON to this "
                                "path ('-' for stdout)")
    p_profile.set_defaults(func=_cmd_profile)

    p_tune = sub.add_parser(
        "tune", help="trial-based search on the parallel trial scheduler")
    _add_scale(p_tune)
    p_tune.add_argument("--dataset", default="imdb")
    p_tune.add_argument("--model", default="simple_hgn")
    p_tune.add_argument("--strategy", default="asha",
                        help="a registered strategy (see `repro strategies`)")
    p_tune.add_argument("--trials", type=int, default=8,
                        help="trial count (initial rung size for asha)")
    p_tune.add_argument("--budget", type=int, default=40,
                        help="full retrain epoch budget per trial")
    p_tune.add_argument("--min-budget", type=int, default=0,
                        help="asha first-rung epochs (0 → derived)")
    p_tune.add_argument("--eta", type=int, default=2,
                        help="asha rung growth / survivor fraction")
    p_tune.add_argument("--search-epochs", type=int, default=40,
                        help="bi-level search epochs for one-shot trials")
    p_tune.add_argument("--population", type=int, default=8,
                        help="evolution population size")
    p_tune.add_argument("--sample-size", type=int, default=3,
                        help="evolution tournament size")
    p_tune.add_argument("--slots", type=int, default=8,
                        help="op-vector length (V⁻ cluster granularity)")
    p_tune.add_argument("--hidden-dim", type=int, default=64)
    p_tune.add_argument("--workers", type=int, default=0,
                        help="parallel worker processes (0/1 → inline)")
    p_tune.add_argument("--journal", default=None,
                        help="JSONL checkpoint journal path")
    p_tune.add_argument("--resume", action="store_true",
                        help="replay completed trials from --journal")
    p_tune.add_argument("--top", type=int, default=5,
                        help="leaderboard rows to print")
    p_tune.add_argument("--out", default=None,
                        help="export the winner as a ModelBundle (.npz)")
    p_tune.add_argument("--stop-patience", type=int, default=0,
                        help="stop after N consecutive non-improving "
                             "trials (0 → off)")
    p_tune.add_argument("--stop-min-delta", type=float, default=0.0,
                        help="score gain that counts as improvement")
    p_tune.add_argument("--target-score", type=float, default=None,
                        help="stop once any trial reaches this val score")
    p_tune.add_argument("--runs-dir", default=None,
                        help="also register the finished journal in this "
                             "run registry directory")
    p_tune.add_argument("--trial-retries", type=int, default=2,
                        help="re-run a trial whose worker process died up "
                             "to N times before quarantining it (0 → off)")
    p_tune.add_argument("--trial-timeout", type=float, default=0.0,
                        help="seconds before a hung trial wave is "
                             "abandoned (0 → no timeout)")
    _add_fault_plan(p_tune)
    p_tune.set_defaults(func=_cmd_tune)

    p_strategies = sub.add_parser(
        "strategies", help="list registered tuning strategies")
    p_strategies.set_defaults(func=_cmd_strategies)

    p_report = sub.add_parser(
        "report", help="render a trial journal to a static HTML report")
    p_report.add_argument("journal",
                          help="a TrialJournal .jsonl (any format vintage)")
    p_report.add_argument("--out", default=None,
                          help="output path (default: journal with .html)")
    p_report.add_argument("--top", type=int, default=10,
                          help="leaderboard rows / curves to include")
    p_report.set_defaults(func=_cmd_report)

    p_runs = sub.add_parser(
        "runs", help="list / ingest / compare / diff registered runs")
    p_runs.add_argument("action", nargs="?", default="list",
                        choices=["list", "ingest", "compare", "diff"])
    p_runs.add_argument("runs", nargs="*",
                        help="run names or journal paths (two for "
                             "compare/diff, one for ingest)")
    p_runs.add_argument("--dir", default="runs",
                        help="run registry directory")
    p_runs.add_argument("--name", default=None,
                        help="ingest: register under this name")
    p_runs.add_argument("--overwrite", action="store_true",
                        help="ingest: replace an existing run")
    p_runs.set_defaults(func=_cmd_runs)

    p_serve = sub.add_parser("serve", help="serve a bundle over HTTP")
    p_serve.add_argument("--bundle", required=True,
                         help="a ModelBundle .npz written by `repro export`")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080)
    p_serve.add_argument("--batch-size", type=int, default=64,
                         help="micro-batch flush size")
    p_serve.add_argument("--cache-size", type=int, default=4096,
                         help="LRU result-cache capacity")
    p_serve.add_argument("--access-log", action="store_true",
                         help="structured access logging (JSONL) through "
                              "the telemetry sink (default off)")
    p_serve.add_argument("--telemetry-out", default=None,
                         help="JSONL file for trace spans (+ access "
                              "records when --access-log is set)")
    p_serve.add_argument("--deadline-ms", type=float, default=0.0,
                         help="per-POST time budget; expiry answers 504 "
                              "(0 → no deadline)")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         help="POSTs executing concurrently before "
                              "arrivals queue")
    p_serve.add_argument("--max-queue", type=int, default=32,
                         help="queued POSTs before arrivals are shed "
                              "with 503 + Retry-After")
    p_serve.add_argument("--max-body-bytes", type=int,
                         default=8 * 1024 * 1024,
                         help="request bodies above this answer 413")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="worker processes; >1 runs the preforked "
                              "serving tier over a shared mmap bundle "
                              "(worker 0 is the onboarding writer)")
    p_serve.add_argument("--no-mmap", action="store_true",
                         help="tier only: load the bundle eagerly instead "
                              "of through the mmap sidecar cache")
    p_serve.add_argument("--wal", default=None,
                         help="onboarding write-ahead log (JSONL): "
                              "replayed on start, appended per onboard")
    _add_fault_plan(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_metrics = sub.add_parser(
        "metrics", help="scrape and pretty-print a server's /metrics")
    p_metrics.add_argument("--url", required=True,
                           help="base URL of a running `repro serve`")
    p_metrics.add_argument("--raw", action="store_true",
                           help="print the exposition text unmodified")
    p_metrics.add_argument("--no-buckets", action="store_true",
                           help="hide per-bucket histogram series")
    p_metrics.set_defaults(func=_cmd_metrics)

    p_predict = sub.add_parser("predict", help="query a bundle")
    p_predict.add_argument("--bundle", default=None,
                           help="load this bundle locally")
    p_predict.add_argument("--url", default=None,
                           help="query a running `repro serve` instead")
    p_predict.add_argument("--nodes", required=True,
                           help="comma-separated target-type node ids")
    p_predict.set_defaults(func=_cmd_predict)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
