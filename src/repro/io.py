"""Durable file writes — the one place tmp+fsync+rename lives.

Three writers share these primitives: the :class:`~repro.serving.
ModelBundle` artifact writer, the autotune :class:`~repro.autotune.
TrialJournal`, and the serving onboard WAL.  Two disciplines:

* **whole-file artifacts** go through :func:`atomic_write_bytes` —
  write to a same-directory temp file, flush + fsync, ``os.replace``
  onto the destination, fsync the directory.  A crash at any instant
  leaves either the complete old file or the complete new file, never
  a torn mix (the stale temp file is the only possible residue).
* **append-only logs** go through :class:`JsonlAppender` — every line
  is flushed and fsync'd before the call returns, and opening an
  existing log seals a torn final line (kill mid-write) with a newline
  so the next record cannot be glued to the fragment.

Both paths carry fault-injection sites (``io.atomic_write``,
``journal.append``) so the chaos harness can corrupt payloads or kill
the process exactly between the dangerous instructions.
"""

from __future__ import annotations

import hashlib
import io as _stdlib_io
import json
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from .faults import fault_site

PathLike = Union[str, Path]


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 of a byte string (the artifact checksum algorithm)."""
    return hashlib.sha256(data).hexdigest()


def fsync_directory(path: PathLike) -> None:
    """fsync a directory so a rename inside it survives power loss.

    Silently skipped where directories cannot be opened (e.g. Windows);
    the rename itself is still atomic on the filesystem level.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes,
                       fault_key: str = None) -> Path:
    """Durably replace ``path`` with ``data``; returns the path.

    The payload passes through the ``io.atomic_write`` fault site first,
    so an armed ``corrupt`` rule models a torn/bit-rotted write that the
    rename discipline cannot prevent (lying disks, truncated copies) —
    the case checksums exist for.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = fault_site("io.atomic_write", payload=bytes(data), key=fault_key)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    fsync_directory(path.parent)
    return path


@contextmanager
def atomic_writer(path: PathLike,
                  fault_key: str = None) -> Iterator[_stdlib_io.BytesIO]:
    """Context manager yielding a buffer committed atomically on exit.

    ``np.savez``-style writers that want a file object use this::

        with atomic_writer(path) as buffer:
            np.savez_compressed(buffer, **arrays)

    Nothing touches ``path`` until the body completes without raising.
    """
    buffer = _stdlib_io.BytesIO()
    yield buffer
    atomic_write_bytes(path, buffer.getvalue(), fault_key=fault_key)


class JsonlAppender:
    """Append-only JSONL writer with per-line flush + fsync.

    Opening with ``append=True`` keeps existing lines and seals a torn
    tail (a final line without ``\\n`` left by a kill mid-write) so the
    fragment parses as one ignorable line instead of corrupting the
    next record.  ``append=False`` truncates.
    """

    def __init__(self, path: PathLike, append: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        seal_torn_tail = False
        if append and self.path.exists():
            with open(self.path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    seal_torn_tail = handle.read(1) != b"\n"
        self._handle = open(self.path, "a" if append else "w",
                            encoding="utf-8")
        if seal_torn_tail:
            self._handle.write("\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())

    @property
    def closed(self) -> bool:
        return self._handle is None

    def write(self, payload: Dict[str, Any]) -> None:
        """Append one JSON record; durable when the call returns."""
        if self._handle is None:
            raise ValueError(f"appender for {self.path} is closed")
        fault_site("journal.append", key=str(payload.get("kind")))
        self._handle.write(json.dumps(payload) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlAppender":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Parse a JSONL file tolerantly: blank and torn lines are dropped.

    A missing file reads as an empty list — callers that need stricter
    semantics (e.g. the journal's header validation) layer them on top.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail from a kill mid-write
    return records


__all__ = [
    "JsonlAppender",
    "atomic_write_bytes",
    "atomic_writer",
    "fsync_directory",
    "read_jsonl",
    "sha256_hex",
]
