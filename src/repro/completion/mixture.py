"""Feature builders: assemble the global initial embedding ``h0``.

Every trainer in this repo consumes a :class:`FeatureBuilder` whose
``forward()`` returns an ``(N, hidden)`` tensor: raw attributes of V⁺
projected per type, plus completed attributes for V⁻ produced by some
completion policy.  Builders provided here:

* :class:`HandcraftedFeatures` — HGB's default: one-hot (embedding) per
  missing node; the baseline used by every handcrafted model in Table II.
* :class:`SingleOpFeatures`    — one fixed op for all V⁻ (Tables VI/VII).
* :class:`RandomOpFeatures`    — a random op per node (Tables VI/VII).
* :class:`WeightedCompletionFeatures` — mixes all candidate ops with
  per-node weights; AutoAC's relaxed/discrete search drives the weights
  (see :mod:`repro.core.search`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets import HeteroDataset
from ..graph.sampler import GraphView
from ..tensor import (
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Tensor,
    gather_rows,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    scatter_add,
)
from .base import CompletionOp
from .ops import OneHotCompletion
from .space import SearchSpace


class AttributeProjector(Module):
    """Per-type linear projection of raw attributes into the hidden space."""

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.projections = ModuleDict({
            node_type: Linear(dataset.features[node_type].shape[1], hidden_dim)
            for node_type in dataset.attributed_types
        })
        # raw attributes cast to the engine dtype once, not per forward
        self._raw = {
            node_type: np.asarray(dataset.features[node_type],
                                  dtype=get_default_dtype())
            for node_type in dataset.attributed_types
        }

    def forward(self, view: Optional[GraphView] = None) -> Tensor:
        """Project every attributed type; V⁻ rows stay zero.

        Full graph: ``(N, hidden)``.  With a :class:`~repro.graph.GraphView`
        only the view's attributed members are gathered and projected, so
        both the output and every intermediate are ``(V, hidden)``-sized.
        """
        if view is None:
            n = self.dataset.graph.num_nodes
            pieces = []
            for node_type in self.dataset.attributed_types:
                raw = Tensor(self._raw[node_type])
                projected = self.projections[node_type](raw)
                ids = self.dataset.graph.global_ids(node_type)
                pieces.append(scatter_add(projected, ids, n))
            if not pieces:
                raise ValueError("dataset has no attributed node types")
        else:
            n = view.num_nodes
            pieces = []
            for node_type in self.dataset.attributed_types:
                view_local, parent_local = view.type_members(node_type)
                if view_local.size == 0:
                    continue
                raw = Tensor(self._raw[node_type][parent_local])
                projected = self.projections[node_type](raw)
                pieces.append(scatter_add(projected, view_local, n))
            if not pieces:  # a batch may touch no attributed node at all
                return Tensor(np.zeros((n, self.hidden_dim),
                                       dtype=get_default_dtype()))
        out = pieces[0]
        for piece in pieces[1:]:
            out = out + piece
        return out

    def forward_from_cache(self, value: Optional[np.ndarray]) -> Tensor:
        """Reuse a captured output value; rig the live backward only.

        Valid as long as no projection weight changed since ``value`` was
        computed.  The backward issues exactly the gathers/matmuls the
        live composite would (scatter-add adjoint then the Linear
        adjoints), so gradients are bit-identical to a recomputation.
        """
        if value is None:
            return self.forward()
        params = [p for p in self.parameters() if p.requires_grad]
        out = Tensor(value, requires_grad=is_grad_enabled() and bool(params))
        if out.requires_grad:
            def backward(grad: np.ndarray) -> None:
                for node_type in self.dataset.attributed_types:
                    linear = self.projections[node_type]
                    wants_weight = linear.weight.requires_grad
                    wants_bias = (linear.bias is not None
                                  and linear.bias.requires_grad)
                    if not wants_weight and not wants_bias:
                        continue  # frozen projection: match the live path
                    ids = self.dataset.graph.global_ids(node_type)
                    grad_rows = grad[ids]
                    if wants_weight:
                        linear.weight.accumulate_grad(
                            np.matmul(self._raw[node_type].T, grad_rows))
                    if wants_bias:
                        linear.bias.accumulate_grad(grad_rows.sum(axis=0))
            out._rig(tuple(params), backward)
        return out


class FeatureBuilder(Module):
    """Base: produce the global initial embedding ``h0`` of shape (N, hidden)."""

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.projector = AttributeProjector(dataset, hidden_dim)

    def completed(self) -> Optional[Tensor]:
        """Completed attributes for V⁻ (``(num_missing, hidden)``) or None."""
        raise NotImplementedError

    def completed_rows(self, rows: np.ndarray) -> Optional[Tensor]:
        """Completed attributes for the given ``missing_global_ids`` rows.

        The sampled execution path: shape ``(len(rows), hidden)``.  The
        base implementation slices the full completion (correct but not
        memory-bounded); builders whose ops support ``forward_rows``
        override it.
        """
        completed = self.completed()
        if completed is None:
            return None
        return gather_rows(completed, np.asarray(rows, dtype=np.int64))

    def _view_missing(self, view: GraphView) -> tuple:
        """``(view_local_positions, missing_rows)`` of the view's V⁻ nodes.

        Keyed per dataset: two datasets can share a graph (e.g. the
        lowered-missing-rate protocol) yet disagree on which types are V⁻.
        """
        def build() -> tuple:
            lookup = self.dataset.missing_row_of_global()
            rows_all = lookup[view.node_ids]
            positions = np.flatnonzero(rows_all >= 0).astype(np.int64)
            return positions, rows_all[positions]
        return view.cached(("missing_rows", id(self.dataset)), build)

    def _projected(self, view: Optional[GraphView] = None) -> Tensor:
        """The projected-V⁺ block ``h0`` starts from (overridable hook)."""
        return self.projector(view)

    def forward(self, view: Optional[GraphView] = None) -> Tensor:
        if view is None:
            h0 = self._projected()
            completed = self.completed()
            if completed is not None and self.dataset.missing_global_ids.size:
                h0 = h0 + scatter_add(completed,
                                      self.dataset.missing_global_ids,
                                      self.dataset.graph.num_nodes)
            return h0
        h0 = self._projected(view)
        positions, rows = self._view_missing(view)
        if rows.size:
            completed = self.completed_rows(rows)
            if completed is not None:
                h0 = h0 + scatter_add(completed, positions, view.num_nodes)
        return h0


class HandcraftedFeatures(FeatureBuilder):
    """HGB default: missing attributes replaced by one-hot × linear."""

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__(dataset, hidden_dim)
        self.one_hot = OneHotCompletion(dataset, hidden_dim)

    def completed(self) -> Optional[Tensor]:
        if not self.dataset.missing_global_ids.size:
            return None
        return self.one_hot()

    def completed_rows(self, rows: np.ndarray) -> Optional[Tensor]:
        if not self.dataset.missing_global_ids.size:
            return None
        return self.one_hot.forward_rows(rows)


class SingleOpFeatures(FeatureBuilder):
    """Every V⁻ node completed by the same single operation (ablation)."""

    def __init__(self, dataset: HeteroDataset, hidden_dim: int, op_name: str,
                 space: Optional[SearchSpace] = None) -> None:
        super().__init__(dataset, hidden_dim)
        space = space or SearchSpace()
        if op_name not in list(space):
            raise KeyError(f"op {op_name!r} not in search space {list(space)}")
        ops = space.build_ops(dataset, hidden_dim)
        self.op = ops[space.index(op_name)]
        self.op_name = op_name

    def completed(self) -> Optional[Tensor]:
        if not self.dataset.missing_global_ids.size:
            return None
        return self.op()

    def completed_rows(self, rows: np.ndarray) -> Optional[Tensor]:
        if not self.dataset.missing_global_ids.size:
            return None
        return self.op.forward_rows(rows)


@dataclass
class CandidateCache:
    """Per-epoch snapshot of the search's completion candidates.

    ``projector`` is the projected-V⁺ block, ``ops`` the output of every
    candidate completion op, all captured at one parameter state.  The
    searcher owns the lifecycle: populate once per epoch, invalidate on
    every ``w`` update and cluster refresh.
    """

    projector: np.ndarray
    ops: List[np.ndarray]


class WeightedCompletionFeatures(FeatureBuilder):
    """Mix all candidate ops with per-node weights ``(num_missing, |O|)``.

    The weight matrix is supplied externally before each forward pass via
    :meth:`set_weights`; AutoAC's search sets either softmax-relaxed rows
    (continuous mode) or one-hot rows (discrete mode).  Ops whose total
    weight is exactly zero are skipped — this is the computational saving
    that the paper's discrete constraints buy (Table VIII).

    Candidate cache: within one search epoch the op outputs and the
    projected V⁺ block are identical across the upper step, the lower
    step and the validation pass (only the mixing weights differ), so
    :class:`~repro.core.search.AutoACSearcher` snapshots them via
    :meth:`refresh_candidates` and replays them in one of two modes set
    through :meth:`candidate_mode`:

    * ``"detached"`` — candidates enter the graph as constants.  Correct
      whenever gradients w.r.t. the completion/projection parameters are
      not consumed (the upper alpha step discards them; validation runs
      under ``no_grad``).
    * ``"rigged"`` — forward values are reused but each op/projector
      rigs its live backward, so the lower ``w`` step gets bit-identical
      gradients while skipping every candidate forward matmul.
    """

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 space: Optional[SearchSpace] = None) -> None:
        super().__init__(dataset, hidden_dim)
        self.space = space or SearchSpace()
        self.ops: ModuleList = self.space.build_ops(dataset, hidden_dim)
        self._weights: Optional[Tensor] = None
        self._candidates: Optional[CandidateCache] = None
        self._candidate_mode: Optional[str] = None

    def set_weights(self, weights: Tensor) -> None:
        """Set the per-node op weights used by the next forward pass."""
        expected = (self.dataset.missing_global_ids.shape[0], len(self.space))
        if tuple(weights.shape) != expected:
            raise ValueError(f"weights must have shape {expected}, "
                             f"got {tuple(weights.shape)}")
        self._weights = weights

    # ------------------------------------------------------------------
    # candidate cache (driven by the searcher)
    # ------------------------------------------------------------------
    def has_candidates(self) -> bool:
        """Whether a candidate snapshot is currently stored."""
        return self._candidates is not None

    def refresh_candidates(self) -> CandidateCache:
        """Snapshot projector + per-op outputs at the current parameters."""
        with no_grad():
            self._candidates = CandidateCache(
                projector=self.projector().data,
                ops=[op().data for op in self.ops])
        return self._candidates

    def invalidate_candidates(self) -> None:
        """Drop the snapshot (parameters or clusters changed)."""
        self._candidates = None

    @contextlib.contextmanager
    def candidate_mode(self, mode: Optional[str]):
        """Scoped replay mode: ``None`` (live), ``"detached"`` or ``"rigged"``."""
        if mode not in (None, "detached", "rigged"):
            raise ValueError(f"unknown candidate mode {mode!r}")
        previous = self._candidate_mode
        self._candidate_mode = mode
        try:
            yield
        finally:
            self._candidate_mode = previous

    def _op_output(self, op_index: int, op: CompletionOp) -> Tensor:
        cache = self._candidates
        mode = self._candidate_mode
        if cache is None or mode is None:
            return op()
        if mode == "detached":
            return Tensor(cache.ops[op_index])
        return op.forward_from_cache(cache.ops[op_index])

    def _projected(self, view: Optional[GraphView] = None) -> Tensor:
        if view is not None:  # the candidate cache is a full-graph construct
            return self.projector(view)
        cache = self._candidates
        mode = self._candidate_mode
        if cache is not None and mode == "detached":
            return Tensor(cache.projector)
        if cache is not None and mode == "rigged":
            return self.projector.forward_from_cache(cache.projector)
        return self.projector()

    def completed(self) -> Optional[Tensor]:
        if not self.dataset.missing_global_ids.size:
            return None
        if self._weights is None:
            raise RuntimeError("call set_weights() before forward()")
        total = None
        for op_index, op in enumerate(self.ops):
            column = self._weights[:, op_index].reshape(-1, 1)
            if not column.requires_grad and not np.any(column.data):
                continue  # inactive op under discrete constraints — skip
            term = column * self._op_output(op_index, op)
            total = term if total is None else total + term
        if total is None:  # all weights zero (cannot happen with one-hot rows)
            raise RuntimeError("no completion op active")
        return total

    def completed_rows(self, rows: np.ndarray) -> Optional[Tensor]:
        """Mix per-row op outputs for the sampled V⁻ rows only.

        Each active op contributes ``forward_rows(rows)``; weights are the
        matching rows of the externally supplied weight matrix.  Ops whose
        weight is zero on *these* rows are skipped, so discrete
        constraints save the same work per batch they save full-graph.
        """
        if not self.dataset.missing_global_ids.size:
            return None
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return None
        if self._weights is None:
            raise RuntimeError("call set_weights() before forward()")
        weight_rows = gather_rows(self._weights, rows)
        total = None
        for op_index, op in enumerate(self.ops):
            column = weight_rows[:, op_index].reshape(-1, 1)
            if not column.requires_grad and not np.any(column.data):
                continue
            term = column * op.forward_rows(rows)
            total = term if total is None else total + term
        if total is None:
            raise RuntimeError("no completion op active")
        return total


class FixedAssignmentFeatures(WeightedCompletionFeatures):
    """Completion driven by a frozen per-node op assignment.

    Used for (a) the random-completion ablation and (b) retraining from a
    searched assignment.
    """

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 assignment: np.ndarray,
                 space: Optional[SearchSpace] = None) -> None:
        super().__init__(dataset, hidden_dim, space=space)
        assignment = np.asarray(assignment, dtype=np.int64)
        if assignment.shape[0] != dataset.missing_global_ids.shape[0]:
            raise ValueError("assignment must cover every V⁻ node")
        if assignment.size and (assignment.min() < 0
                                or assignment.max() >= len(self.space)):
            raise ValueError("assignment indices out of range for the space")
        self.assignment = assignment
        weights = np.zeros((assignment.shape[0], len(self.space)))
        if assignment.size:
            weights[np.arange(assignment.shape[0]), assignment] = 1.0
        self.set_weights(Tensor(weights))

    @classmethod
    def random(cls, dataset: HeteroDataset, hidden_dim: int,
               rng: np.random.Generator,
               space: Optional[SearchSpace] = None) -> "FixedAssignmentFeatures":
        space = space or SearchSpace()
        assignment = rng.integers(0, len(space),
                                  size=dataset.missing_global_ids.shape[0])
        return cls(dataset, hidden_dim, assignment, space=space)


__all__ = [
    "AttributeProjector",
    "FeatureBuilder",
    "HandcraftedFeatures",
    "SingleOpFeatures",
    "WeightedCompletionFeatures",
    "FixedAssignmentFeatures",
]
