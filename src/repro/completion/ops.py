"""The four completion operations of the AutoAC search space (paper §IV-A).

* :class:`MeanCompletion`   — average of attributed 1-hop neighbors (GraphSage
  style), ``x_v = W · mean{x_u : u ∈ N_v⁺}``.
* :class:`GCNCompletion`    — renormalized spectral aggregation,
  ``x_v = Σ_u (deg v · deg u)^{-1/2} x_u W`` over attributed neighbors.
* :class:`PPNPCompletion`   — personalized-PageRank diffusion of the
  zero-filled attribute matrix (global, multi-hop).
* :class:`OneHotCompletion` — learnable per-node embedding (one-hot encoding
  followed by a linear projection, fused into an embedding table).

Every topology-dependent op factors as ``completed = (P X)[V⁻] @ W`` with a
*constant* propagation operator ``P``.  ``P`` is assembled on the sparse
fast path by default: the graph's LRU-cached CSR adjacency
(:meth:`repro.graph.HeteroGraph.normalized_adjacency`) is column-restricted
/ normalized with :class:`~repro.tensor.SparseTensor` transforms and the
product ``P X`` runs through compiled CSR×dense kernels.  Passing
``use_sparse=False`` (or flipping :data:`DENSE_FALLBACK`) materializes ``P``
densely instead — an O(N²) reference path kept for validation and
debugging; both paths produce the same values to machine precision.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from .. import graph as G
from ..datasets import HeteroDataset
from ..tensor import (Parameter, SparseTensor, Tensor, gather_rows,
                      get_default_dtype, init, is_grad_enabled)
from .base import CompletionOp

#: process-wide default for the ``use_sparse`` constructor flag; flip to
#: ``True`` to force every completion op onto the dense reference path.
DENSE_FALLBACK = False


def _attributed_mask(dataset: HeteroDataset) -> np.ndarray:
    """Boolean mask over global node ids marking attributed (V⁺) nodes."""
    mask = np.zeros(dataset.graph.num_nodes, dtype=bool)
    mask[dataset.attributed_global_ids] = True
    return mask


def _attributed_restricted_adjacency(dataset: HeteroDataset) -> SparseTensor:
    """Global adjacency with non-attributed columns dropped (CSR)."""
    return (dataset.graph.adjacency_sparse(symmetric=True)
            .restrict_columns(_attributed_mask(dataset)))


def _attributed_restriction(dataset: HeteroDataset) -> sp.csr_matrix:
    """Scipy view of :func:`_attributed_restricted_adjacency`."""
    return _attributed_restricted_adjacency(dataset).to_scipy()


def _resolve_sparse_flag(use_sparse: Optional[bool]) -> bool:
    return (not DENSE_FALLBACK) if use_sparse is None else bool(use_sparse)


def _propagate(operator: SparseTensor, features: np.ndarray,
               use_sparse: bool) -> np.ndarray:
    """``operator @ features`` on the CSR fast path or the dense fallback.

    The result is cast to the engine default dtype once here so op
    forwards never re-cast it (``Tensor(...)`` would copy otherwise).
    """
    if use_sparse:
        out = operator.matmul_data(features)
    else:
        out = operator.to_dense() @ features
    return out.astype(get_default_dtype(), copy=False)


class PropagatedCompletion(CompletionOp):
    """Shared machinery for ops of the form ``Tensor(_base) @ weight``.

    Subclasses precompute the constant propagated block ``self._base``
    (``(num_missing, raw_dim)``) in their constructor and register
    ``self.weight``.  Besides the plain forward this provides
    :meth:`forward_from_cache`, which reuses a captured output value and
    rigs only the backward (``dL/dW = base.T @ grad`` — the exact same
    BLAS call the live matmul backward issues), so the search loop can
    skip the forward matmul when the weights haven't changed.
    """

    _base: np.ndarray
    weight: Parameter

    def forward(self) -> Tensor:
        return Tensor(self._base) @ self.weight

    def forward_rows(self, rows: np.ndarray) -> Tensor:
        """``base[rows] @ W`` — per-row completion for the sampled path.

        The gathered base block is ``(len(rows), raw_dim)``, so neither
        the forward nor its backward (``dL/dW = base[rows].T @ grad``)
        ever touches a ``(num_missing, ·)`` activation.
        """
        rows = np.asarray(rows, dtype=np.int64)
        return Tensor(self._base[rows]) @ self.weight

    def forward_from_cache(self, value: Optional[np.ndarray]) -> Tensor:
        if value is None:
            return self.forward()
        weight = self.weight
        out = Tensor(value,
                     requires_grad=is_grad_enabled() and weight.requires_grad)
        if out.requires_grad:
            base = self._base
            def backward(grad: np.ndarray) -> None:
                weight.accumulate_grad(np.matmul(base.T, grad))
            out._rig((weight,), backward)
        return out


class MeanCompletion(PropagatedCompletion):
    """Mean over attributed 1-hop neighbors, then a learnable transform.

    ``P = D⁺^{-1} A⁺`` where ``A⁺`` is the adjacency restricted to
    attributed columns and ``D⁺`` counts attributed neighbors only.
    """

    name = "mean"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 use_sparse: Optional[bool] = None) -> None:
        super().__init__(dataset, hidden_dim)
        self.use_sparse = _resolve_sparse_flag(use_sparse)
        raw = dataset.feature_matrix_zero_filled()
        operator = _attributed_restricted_adjacency(dataset).row_normalize()
        self._base = _propagate(operator, raw, self.use_sparse)[self.missing_ids]
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")


class GCNCompletion(PropagatedCompletion):
    """Symmetric-renormalized aggregation of attributed neighbors (Eq. 3).

    ``P`` is the full-graph GCN operator ``D^{-1/2} A D^{-1/2}`` with its
    columns restricted to attributed nodes *after* normalization, so the
    spectral weights still reflect true degrees.
    """

    name = "gcn"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 use_sparse: Optional[bool] = None) -> None:
        super().__init__(dataset, hidden_dim)
        self.use_sparse = _resolve_sparse_flag(use_sparse)
        raw = dataset.feature_matrix_zero_filled()
        operator = (dataset.graph
                    .normalized_adjacency(mode="sym", self_loops=False)
                    .restrict_columns(_attributed_mask(dataset)))
        self._base = _propagate(operator, raw, self.use_sparse)[self.missing_ids]
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")


class PPNPCompletion(PropagatedCompletion):
    """Personalized-PageRank diffusion of the zero-filled attributes (Eq. 4).

    Uses the APPNP power iteration, which converges geometrically to the
    closed form ``alpha (I - (1-alpha) Â)^{-1} X`` without a dense inverse.
    The normalized operator ``Â`` comes from the graph's LRU cache, so the
    many PPNP ops built during a search share one CSR matrix.
    """

    name = "ppnp"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 alpha: float = 0.1, iterations: int = 10,
                 use_sparse: Optional[bool] = None) -> None:
        super().__init__(dataset, hidden_dim)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"restart probability must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.use_sparse = _resolve_sparse_flag(use_sparse)
        raw = dataset.feature_matrix_zero_filled()
        a_hat = dataset.graph.normalized_adjacency(mode="sym", self_loops=True)
        operator = a_hat if self.use_sparse else a_hat.to_dense()
        diffused = G.appnp_propagate(None, raw, alpha=alpha,
                                     iterations=iterations, a_hat=operator)
        self._base = diffused[self.missing_ids].astype(get_default_dtype(),
                                                       copy=False)
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")


class OneHotCompletion(CompletionOp):
    """Topology-independent completion: a learnable embedding per V⁻ node."""

    name = "one_hot"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__(dataset, hidden_dim)
        self.table = Parameter(init.normal((self.num_missing, hidden_dim), std=0.1),
                               name="table")

    def forward(self) -> Tensor:
        return self.table

    def forward_rows(self, rows: np.ndarray) -> Tensor:
        """Embedding lookup for the sampled rows only."""
        return gather_rows(self.table, np.asarray(rows, dtype=np.int64))


__all__ = [
    "DENSE_FALLBACK",
    "PropagatedCompletion",
    "MeanCompletion",
    "GCNCompletion",
    "PPNPCompletion",
    "OneHotCompletion",
]
