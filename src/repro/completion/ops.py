"""The four completion operations of the AutoAC search space (paper §IV-A).

* :class:`MeanCompletion`   — average of attributed 1-hop neighbors (GraphSage
  style), ``x_v = W · mean{x_u : u ∈ N_v⁺}``.
* :class:`GCNCompletion`    — renormalized spectral aggregation,
  ``x_v = Σ_u (deg v · deg u)^{-1/2} x_u W`` over attributed neighbors.
* :class:`PPNPCompletion`   — personalized-PageRank diffusion of the
  zero-filled attribute matrix (global, multi-hop).
* :class:`OneHotCompletion` — learnable per-node embedding (one-hot encoding
  followed by a linear projection, fused into an embedding table).
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from .. import graph as G
from ..datasets import HeteroDataset
from ..tensor import Parameter, Tensor, init
from .base import CompletionOp


def _attributed_restriction(dataset: HeteroDataset) -> sp.csr_matrix:
    """Adjacency columns restricted to attributed nodes (others zeroed)."""
    mask = np.zeros(dataset.graph.num_nodes, dtype=bool)
    mask[dataset.attributed_global_ids] = True
    adj = dataset.graph.adjacency(symmetric=True).tocoo()
    keep_entries = mask[adj.col]
    restricted = sp.coo_matrix(
        (adj.data[keep_entries], (adj.row[keep_entries], adj.col[keep_entries])),
        shape=adj.shape,
    )
    return restricted.tocsr()


class MeanCompletion(CompletionOp):
    """Mean over attributed 1-hop neighbors, then a learnable transform."""

    name = "mean"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__(dataset, hidden_dim)
        raw = dataset.feature_matrix_zero_filled()
        restricted = _attributed_restriction(dataset)
        counts = np.asarray(restricted.sum(axis=1)).ravel()
        scale = np.zeros_like(counts)
        nonzero = counts > 0
        scale[nonzero] = 1.0 / counts[nonzero]
        mean_all = sp.diags(scale) @ restricted @ raw
        self._base = mean_all[self.missing_ids]  # constant (num_missing, d_raw)
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")

    def forward(self) -> Tensor:
        return Tensor(self._base) @ self.weight


class GCNCompletion(CompletionOp):
    """Symmetric-renormalized aggregation of attributed neighbors (Eq. 3)."""

    name = "gcn"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__(dataset, hidden_dim)
        raw = dataset.feature_matrix_zero_filled()
        adj = dataset.graph.adjacency(symmetric=True)
        degree = np.asarray(adj.sum(axis=1)).ravel()
        inv_sqrt = np.zeros_like(degree)
        nonzero = degree > 0
        inv_sqrt[nonzero] = degree[nonzero] ** -0.5
        norm = sp.diags(inv_sqrt) @ adj @ sp.diags(inv_sqrt)
        # restrict to attributed columns so only real attributes are mixed in
        norm = norm.tocoo()
        mask = np.zeros(dataset.graph.num_nodes, dtype=bool)
        mask[dataset.attributed_global_ids] = True
        keep = mask[norm.col]
        norm = sp.coo_matrix((norm.data[keep], (norm.row[keep], norm.col[keep])),
                             shape=norm.shape).tocsr()
        gcn_all = norm @ raw
        self._base = gcn_all[self.missing_ids]
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")

    def forward(self) -> Tensor:
        return Tensor(self._base) @ self.weight


class PPNPCompletion(CompletionOp):
    """Personalized-PageRank diffusion of the zero-filled attributes (Eq. 4).

    Uses the APPNP power iteration, which converges geometrically to the
    closed form ``alpha (I - (1-alpha) Â)^{-1} X`` without a dense inverse.
    """

    name = "ppnp"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 alpha: float = 0.1, iterations: int = 10) -> None:
        super().__init__(dataset, hidden_dim)
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"restart probability must be in (0, 1], got {alpha}")
        self.alpha = alpha
        raw = dataset.feature_matrix_zero_filled()
        adj = dataset.graph.adjacency(symmetric=True)
        diffused = G.appnp_propagate(adj, raw, alpha=alpha, iterations=iterations)
        self._base = diffused[self.missing_ids]
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")

    def forward(self) -> Tensor:
        return Tensor(self._base) @ self.weight


class OneHotCompletion(CompletionOp):
    """Topology-independent completion: a learnable embedding per V⁻ node."""

    name = "one_hot"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__(dataset, hidden_dim)
        self.table = Parameter(init.normal((self.num_missing, hidden_dim), std=0.1),
                               name="table")

    def forward(self) -> Tensor:
        return self.table


__all__ = [
    "MeanCompletion",
    "GCNCompletion",
    "PPNPCompletion",
    "OneHotCompletion",
]
