"""Abstract interfaces of the completion-operation search space.

A :class:`CompletionOp` produces completed attributes (in the shared hidden
dimension) for every node in V⁻.  The topology-dependent operations of the
paper (mean / GCN / PPNP) all factor as

    ``completed = (P X)[V⁻] @ W``

where ``P`` is a fixed propagation operator over the graph, ``X`` the
zero-filled raw attribute matrix and ``W`` a learnable transform — so each
op precomputes the constant ``(P X)[V⁻]`` block once and training touches
only ``W``.  The topology-independent one-hot op is a learnable embedding
per no-attribute node (one-hot × linear ≡ embedding lookup).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..datasets import HeteroDataset
from ..tensor import Module, Tensor


class CompletionOp(Module):
    """Base class: completes attributes for all V⁻ nodes of a dataset."""

    #: registry key; subclasses must override
    name: str = "abstract"

    def __init__(self, dataset: HeteroDataset, hidden_dim: int) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.missing_ids = dataset.missing_global_ids
        self.num_missing = int(self.missing_ids.shape[0])

    def forward(self) -> Tensor:
        """Return completed attributes, shape ``(num_missing, hidden_dim)``.

        Row order follows ``dataset.missing_global_ids``.
        """
        raise NotImplementedError

    def forward_rows(self, rows: np.ndarray) -> Tensor:
        """Complete only the given rows of ``missing_global_ids``.

        The mini-batch execution path: a sampled view touches a handful of
        V⁻ nodes, and ops that can should produce exactly those rows —
        shape ``(len(rows), hidden_dim)`` — without materializing the full
        ``(num_missing, hidden_dim)`` block.  The base implementation
        falls back to slicing the full forward (correct, not bounded);
        every op in the shipped search space overrides it.
        """
        from ..tensor import gather_rows

        return gather_rows(self.forward(), np.asarray(rows, dtype=np.int64))

    def forward_from_cache(self, value: Optional[np.ndarray]) -> Tensor:
        """Forward pass that may reuse a previously computed output value.

        ``value`` is this op's forward output captured earlier in the
        same parameter state (the search loop's per-epoch candidate
        cache).  Implementations must return a tensor with the *live*
        autograd rigging — reusing ``value`` only skips the forward
        arithmetic, never changes gradients.  The base implementation
        ignores the cache and recomputes.
        """
        return self.forward()

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nodes={self.num_missing}, dim={self.hidden_dim})"


__all__ = ["CompletionOp"]
