"""Search-space registry for completion operations.

The paper's space ``O`` is {mean, gcn, ppnp, one_hot}; the registry is
extensible so downstream users can add their own aggregators (see
``examples/custom_completion_op.py``) — the paper explicitly frames the
space as "general and scalable" (§IV-A).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Type

from ..datasets import HeteroDataset
from ..tensor import ModuleList
from .base import CompletionOp
from .ops import GCNCompletion, MeanCompletion, OneHotCompletion, PPNPCompletion

_REGISTRY: Dict[str, Callable[..., CompletionOp]] = {}


def register_op(name: str, factory: Callable[..., CompletionOp],
                overwrite: bool = False) -> None:
    """Register a completion-op factory under ``name``.

    ``factory(dataset, hidden_dim) -> CompletionOp``.
    """
    if name in _REGISTRY and not overwrite:
        raise KeyError(f"completion op {name!r} already registered")
    _REGISTRY[name] = factory


def available_ops() -> List[str]:
    return sorted(_REGISTRY)


def build_op(name: str, dataset: HeteroDataset, hidden_dim: int) -> CompletionOp:
    """Instantiate a single registered op (used by online onboarding)."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown completion op {name!r}; "
                       f"registered: {available_ops()}")
    return _REGISTRY[name](dataset, hidden_dim)


register_op(MeanCompletion.name, MeanCompletion)
register_op(GCNCompletion.name, GCNCompletion)
register_op(PPNPCompletion.name, PPNPCompletion)
register_op(OneHotCompletion.name, OneHotCompletion)

#: the paper's search space, in the order used for reporting distributions
DEFAULT_SPACE: List[str] = ["mean", "gcn", "ppnp", "one_hot"]


class SearchSpace:
    """An ordered set of candidate completion operations."""

    def __init__(self, op_names: Sequence[str] = tuple(DEFAULT_SPACE)) -> None:
        unknown = [name for name in op_names if name not in _REGISTRY]
        if unknown:
            raise KeyError(f"unknown completion ops {unknown}; "
                           f"registered: {available_ops()}")
        if len(set(op_names)) != len(op_names):
            raise ValueError("duplicate op names in search space")
        if not op_names:
            raise ValueError("search space must not be empty")
        self.op_names: List[str] = list(op_names)

    def __len__(self) -> int:
        return len(self.op_names)

    def __iter__(self):
        return iter(self.op_names)

    def index(self, name: str) -> int:
        return self.op_names.index(name)

    def build_ops(self, dataset: HeteroDataset, hidden_dim: int) -> ModuleList:
        """Instantiate every candidate op against a dataset."""
        return ModuleList([
            _REGISTRY[name](dataset, hidden_dim) for name in self.op_names
        ])

    def __repr__(self) -> str:
        return f"SearchSpace({self.op_names})"


__all__ = ["SearchSpace", "register_op", "available_ops", "build_op",
           "DEFAULT_SPACE"]
