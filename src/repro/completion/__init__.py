"""``repro.completion`` — attribute-completion operations and feature builders."""

from .base import CompletionOp
from .mixture import (
    AttributeProjector,
    CandidateCache,
    FeatureBuilder,
    FixedAssignmentFeatures,
    HandcraftedFeatures,
    SingleOpFeatures,
    WeightedCompletionFeatures,
)
from .ops import (
    GCNCompletion,
    MeanCompletion,
    OneHotCompletion,
    PPNPCompletion,
    PropagatedCompletion,
)
from .space import (
    DEFAULT_SPACE,
    SearchSpace,
    available_ops,
    build_op,
    register_op,
)

__all__ = [
    "CompletionOp",
    "MeanCompletion",
    "GCNCompletion",
    "PPNPCompletion",
    "OneHotCompletion",
    "SearchSpace",
    "register_op",
    "available_ops",
    "build_op",
    "DEFAULT_SPACE",
    "AttributeProjector",
    "CandidateCache",
    "PropagatedCompletion",
    "FeatureBuilder",
    "HandcraftedFeatures",
    "SingleOpFeatures",
    "WeightedCompletionFeatures",
    "FixedAssignmentFeatures",
]
