"""repro — a from-scratch reproduction of AutoAC (ICDE 2023).

AutoAC: Towards Automated Attribute Completion for Heterogeneous Graph
Neural Network.  The package builds every layer of the system in pure
numpy/scipy:

* :mod:`repro.tensor`      — reverse-mode autodiff engine (replaces PyTorch)
* :mod:`repro.graph`       — heterogeneous graph container (replaces DGL)
* :mod:`repro.datasets`    — schema-faithful synthetic HGB datasets
* :mod:`repro.completion`  — the completion-operation search space
* :mod:`repro.models`      — GNN zoo (SimpleHGN, MAGNN, HAN, HGT, ...)
* :mod:`repro.training`    — node-classification / link-prediction harness
* :mod:`repro.core`        — the AutoAC bi-level proximal search
* :mod:`repro.baselines`   — HGNN-AC + metapath2vec, single-op completion
* :mod:`repro.experiments` — drivers for every paper table and figure
* :mod:`repro.serving`     — model bundles, batched inference, onboarding
* :mod:`repro.perf`        — runtime profiles (float32 fast mode, fused
  kernels) and the op-level profiler
* :mod:`repro.autotune`    — trial-based search strategies (random,
  evolution, ASHA, one-shot) on a parallel, resumable trial scheduler

Quickstart::

    from repro.datasets import get_dataset
    from repro.core import run_autoac

    dataset = get_dataset("imdb", scale="small")
    result = run_autoac(dataset, "simple_hgn")
    print(result.final.macro_f1, result.search.op_distribution())
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    autotune,
    baselines,
    completion,
    core,
    datasets,
    experiments,
    graph,
    models,
    perf,
    serving,
    tensor,
    training,
)

__all__ = [
    "__version__",
    "tensor",
    "graph",
    "datasets",
    "completion",
    "models",
    "training",
    "core",
    "baselines",
    "experiments",
    "serving",
    "perf",
    "autotune",
]
