"""Static HTML search reports — one self-contained file per run.

:func:`render_report` turns any trial journal (old or new format) into a
dependency-free HTML page: strategy/task summary, leaderboard, the ASHA
rung ladder, per-trial metric curves as **inline SVG**, and the run
accounting footer (worker deaths, stopper verdict).  No JavaScript, no
external assets, no plotting stack — the file opens anywhere, forever,
which is the point of an observability artifact.

Rendering is a pure function of the journal bytes: iteration orders are
sorted, floats are formatted through fixed-width helpers and nothing
reads the clock — the golden-file test asserts byte-identical output
across runs.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .registry import RunRecord
from .timeline import MetricTimeline

#: fixed categorical palette, cycled by series index (determinism: the
#: color of a series depends only on its sorted position)
PALETTE = [
    "#2563eb", "#dc2626", "#059669", "#d97706", "#7c3aed",
    "#0891b2", "#be185d", "#4d7c0f", "#475569", "#9333ea",
    "#ea580c", "#0d9488",
]

#: most curves plotted per metric (top leaderboard trials first); the
#: cap is stated in the report so truncation is never silent
MAX_CURVES = 12

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1f2937; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #e5e7eb;
     padding-bottom: .4rem; }
h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .85rem; }
th, td { border: 1px solid #e5e7eb; padding: .25rem .6rem;
         text-align: right; }
th { background: #f9fafb; }
td.l, th.l { text-align: left; }
.best { background: #ecfdf5; font-weight: 600; }
.muted { color: #6b7280; font-size: .85rem; }
.legend span { margin-right: 1rem; font-size: .8rem; }
.swatch { display: inline-block; width: .7rem; height: .7rem;
          margin-right: .3rem; border-radius: 2px; }
svg { background: #fafafa; border: 1px solid #e5e7eb; }
code { background: #f3f4f6; padding: 0 .25rem; }
"""


def _fmt(value: Any, digits: int = 4) -> str:
    """Deterministic cell formatting (None → em dash)."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
           left_cols: int = 1,
           highlight_first_row: bool = False) -> List[str]:
    left = ' class="l"'
    out = ["<table>", "<tr>" + "".join(
        f"<th{left if i < left_cols else ''}>{_esc(h)}</th>"
        for i, h in enumerate(headers)) + "</tr>"]
    for index, row in enumerate(rows):
        klass = ' class="best"' if highlight_first_row and index == 0 \
            else ""
        cells = "".join(
            f"<td{left if i < left_cols else ''}>"
            f"{_esc(_fmt(cell))}</td>"
            for i, cell in enumerate(row))
        out.append(f"<tr{klass}>{cells}</tr>")
    out.append("</table>")
    return out


# ----------------------------------------------------------------------
# inline SVG line charts
# ----------------------------------------------------------------------

def _svg_chart(series: List[Tuple[str, List[float]]],
               width: int = 640, height: int = 220) -> List[str]:
    """One inline SVG overlaying the given ``(label, curve)`` series.

    Minimal on purpose: a plot area, min/max tick labels on both axes,
    one ``<polyline>`` per series, and an HTML legend underneath (text
    in SVG is brittle across viewers; the legend is plain markup).
    """
    pad_l, pad_r, pad_t, pad_b = 46.0, 10.0, 10.0, 22.0
    plot_w = width - pad_l - pad_r
    plot_h = height - pad_t - pad_b
    points = [v for _, curve in series for v in curve]
    if not points:
        return ["<p class=\"muted\">no data</p>"]
    lo, hi = min(points), max(points)
    if hi - lo < 1e-12:
        lo, hi = lo - 0.5, hi + 0.5  # flat curve: center it
    max_len = max(len(curve) for _, curve in series)
    span_x = max(max_len - 1, 1)

    def x_of(i: int) -> float:
        return pad_l + plot_w * (i / span_x)

    def y_of(v: float) -> float:
        return pad_t + plot_h * (1.0 - (v - lo) / (hi - lo))

    out = [f"<svg viewBox=\"0 0 {width} {height}\" width=\"{width}\" "
           f"height=\"{height}\" xmlns=\"http://www.w3.org/2000/svg\">"]
    # frame + axis extremes
    out.append(f"<rect x=\"{pad_l}\" y=\"{pad_t}\" width=\"{plot_w}\" "
               f"height=\"{plot_h}\" fill=\"#ffffff\" stroke=\"#d1d5db\"/>")
    out.append(f"<text x=\"{pad_l - 6}\" y=\"{pad_t + 10}\" "
               f"text-anchor=\"end\" font-size=\"11\" fill=\"#6b7280\">"
               f"{_fmt(hi)}</text>")
    out.append(f"<text x=\"{pad_l - 6}\" y=\"{pad_t + plot_h}\" "
               f"text-anchor=\"end\" font-size=\"11\" fill=\"#6b7280\">"
               f"{_fmt(lo)}</text>")
    out.append(f"<text x=\"{pad_l}\" y=\"{height - 6}\" font-size=\"11\" "
               f"fill=\"#6b7280\">epoch 1</text>")
    out.append(f"<text x=\"{width - pad_r}\" y=\"{height - 6}\" "
               f"text-anchor=\"end\" font-size=\"11\" fill=\"#6b7280\">"
               f"{max_len}</text>")
    for index, (_, curve) in enumerate(series):
        color = PALETTE[index % len(PALETTE)]
        if len(curve) == 1:
            out.append(f"<circle cx=\"{x_of(0):.2f}\" "
                       f"cy=\"{y_of(curve[0]):.2f}\" r=\"3\" "
                       f"fill=\"{color}\"/>")
            continue
        coords = " ".join(f"{x_of(i):.2f},{y_of(v):.2f}"
                          for i, v in enumerate(curve))
        out.append(f"<polyline points=\"{coords}\" fill=\"none\" "
                   f"stroke=\"{color}\" stroke-width=\"1.6\"/>")
    out.append("</svg>")
    legend = "".join(
        f"<span><span class=\"swatch\" style=\"background:"
        f"{PALETTE[i % len(PALETTE)]}\"></span>{_esc(label)}</span>"
        for i, (label, _) in enumerate(series))
    out.append(f"<div class=\"legend\">{legend}</div>")
    return out


# ----------------------------------------------------------------------
# report sections
# ----------------------------------------------------------------------

def _summary_rows(fingerprint: Dict[str, Any]) -> List[Tuple[str, str]]:
    """Flatten the strategy/stopper/task identity into label→value rows."""
    rows: List[Tuple[str, str]] = []
    task = fingerprint.get("task") or {}
    dataset = task.get("dataset") or {}
    if dataset:
        rows.append(("dataset", f"{dataset.get('name')} "
                                f"({dataset.get('scale')}, "
                                f"seed {dataset.get('seed')})"))
    for key in ("model_name", "num_slots", "max_budget", "hidden_dim"):
        if key in task:
            rows.append((key, _fmt(task[key])))
    strategy = fingerprint.get("strategy") or {}
    for key in sorted(strategy):
        rows.append((f"strategy.{key}", json.dumps(strategy[key])
                     if isinstance(strategy[key], (dict, list))
                     else _fmt(strategy[key])))
    stopper = fingerprint.get("stopper")
    if stopper:
        rows.append(("stopper", json.dumps(stopper, sort_keys=True)))
    return rows


def _leaderboard_section(record: RunRecord, top: int) -> List[str]:
    ranked = record.leaderboard()
    out = [f"<h2>Leaderboard (top {min(top, len(ranked))} of "
           f"{len(ranked)} completed)</h2>"]
    if not ranked:
        out.append("<p class=\"muted\">no completed trials</p>")
        return out
    rows = [(rank, r.trial_id, r.rung, r.budget_used,
             float(r.score), r.macro_f1, r.micro_f1)
            for rank, r in enumerate(ranked[:top], start=1)]
    out.extend(_table(
        ("rank", "trial", "rung", "epochs", "val macro-F1",
         "test macro-F1", "test micro-F1"),
        rows, left_cols=0, highlight_first_row=True))
    return out


def _rung_section(record: RunRecord) -> List[str]:
    """The successive-halving ladder, from trial records + rung events."""
    results = record.results()
    if not any(r.rung > 0 for r in results):
        return []
    by_rung: Dict[int, List] = {}
    for result in results:
        by_rung.setdefault(int(result.rung), []).append(result)
    out = ["<h2>Rung decisions</h2>"]
    rows = []
    for rung in sorted(by_rung):
        members = sorted(by_rung[rung], key=lambda r: r.trial_id)
        budgets = sorted({r.budget_used for r in members})
        survivors = [r.trial_id for r in members if not r.failed]
        parents = sorted({
            event.get("parent_id")
            for r in members
            for event in ((record.timeline(r.trial_id) or
                           MetricTimeline(r.trial_id)).events)
            if event.get("kind") == "rung"
            and event.get("parent_id") is not None})
        rows.append((rung, len(members),
                     "/".join(str(b) for b in budgets),
                     ", ".join(str(t) for t in survivors) or "—",
                     ", ".join(str(p) for p in parents) or "—"))
    out.extend(_table(("rung", "trials", "epochs run", "trial ids",
                       "promoted from"), rows, left_cols=0))
    return out


def _curves_section(record: RunRecord, top: int) -> List[str]:
    timelines = {trial_id: MetricTimeline.from_dict(payload)
                 for trial_id, payload in record.contents.timelines.items()}
    out = ["<h2>Per-trial metric curves</h2>"]
    if not timelines:
        out.append("<p class=\"muted\">this journal carries no timeline "
                   "records (written by a pre-timeline run) — re-run the "
                   "search to capture per-epoch curves</p>")
        return out
    # plot the leaderboard's top trials first; never silently truncate
    ranked_ids = [r.trial_id for r in record.leaderboard()]
    ranked_ids += [t for t in sorted(timelines) if t not in ranked_ids]
    chosen = [t for t in ranked_ids if t in timelines][:MAX_CURVES]
    if len(timelines) > len(chosen):
        out.append(f"<p class=\"muted\">showing the top {len(chosen)} "
                   f"leaderboard trials of {len(timelines)} with "
                   f"timelines</p>")
    metrics = sorted({name for t in timelines.values() for name in t.curves})
    for metric in metrics:
        series = [(f"trial {trial_id}", timelines[trial_id].curves[metric])
                  for trial_id in chosen
                  if metric in timelines[trial_id].curves]
        if not series:
            continue
        out.append(f"<h3><code>{_esc(metric)}</code></h3>")
        out.extend(_svg_chart(series))
    return out


def _footer_section(record: RunRecord) -> List[str]:
    footer = record.footer
    out = ["<h2>Run accounting</h2>"]
    if not footer:
        out.append("<p class=\"muted\">no footer record (run predates "
                   "footers, or the scheduler was killed before closing "
                   "the journal)</p>")
        return out
    stats = footer.get("stats") or {}
    rows = [(key, _fmt(stats[key])) for key in sorted(stats)]
    out.extend(_table(("counter", "value"), rows, left_cols=1))
    stopped = footer.get("stopped")
    if stopped:
        out.append(f"<p>stopped by <strong>{_esc(stopped.get('stopper'))}"
                   f"</strong> at trial {_esc(stopped.get('trial_id'))}: "
                   f"{_esc(stopped.get('reason'))}</p>")
    else:
        out.append("<p class=\"muted\">ran to strategy completion "
                   "(no stopper verdict)</p>")
    return out


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def render_report(source, top: int = 10) -> str:
    """Render one run journal (path or :class:`RunRecord`) to HTML."""
    record = source if isinstance(source, RunRecord) \
        else RunRecord.load(source)
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html lang=\"en\"><head><meta charset=\"utf-8\"/>",
        f"<title>repro run report — {_esc(record.name)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>Run report: {_esc(record.name)}</h1>",
        f"<p class=\"muted\">strategy <strong>"
        f"{_esc(record.strategy_name)}</strong> · fingerprint "
        f"<code>{_esc(record.run_id)}</code> · "
        f"{len(record.contents.trials)} journaled trials</p>",
        "<h2>Run setup</h2>",
    ]
    parts.extend(_table(("field", "value"),
                        _summary_rows(record.fingerprint), left_cols=1))
    parts.extend(_leaderboard_section(record, top))
    parts.extend(_rung_section(record))
    parts.extend(_curves_section(record, top))
    parts.extend(_footer_section(record))
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_report(source, out=None, top: int = 10) -> Path:
    """Render and write the report; default output sits next to the journal.

    ``repro report TUNE_journal.jsonl`` → ``TUNE_journal.html``.
    """
    record = source if isinstance(source, RunRecord) \
        else RunRecord.load(source)
    if out is None:
        out = record.path.with_suffix(".html")
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_report(record, top=top), encoding="utf-8")
    return out


__all__ = ["render_report", "write_report", "PALETTE", "MAX_CURVES"]
