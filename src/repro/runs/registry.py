"""The run registry — completed searches as first-class, comparable objects.

A *run* is one trial journal: header fingerprint, trial results,
per-trial timelines and the closing footer.  The registry keeps runs
under one directory (``runs/`` by default, one ``<name>.jsonl`` each),
fingerprints them, and answers the questions a finished search leaves
behind:

* *what runs do I have?* — :meth:`RunRegistry.index`;
* *how do two searches compare?* — :meth:`RunRegistry.compare`
  (leaderboard deltas, shared-trial score deltas, best-trial curve
  overlays);
* *what changed between their configs?* — :meth:`RunRegistry.diff`
  (recursive fingerprint diff, the "why are these different" answer).

Everything is plain stdlib + the journal reader: no run can become
uncomparable because a plotting stack is missing.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

# import autotune *submodules* only: this module is (indirectly) imported
# while ``repro.autotune.__init__`` is still executing, so the package
# attributes do not exist yet — the completed submodules do
from ..autotune.journal import JournalContents, TrialJournal
from ..autotune.trial import TrialResult, leaderboard_key
from .timeline import MetricTimeline


def run_fingerprint_id(fingerprint: Optional[Dict[str, Any]]) -> str:
    """Short, stable content id of a run setup (task+strategy+stopper)."""
    digest = hashlib.sha256(
        json.dumps(fingerprint or {}, sort_keys=True).encode("utf-8"))
    return digest.hexdigest()[:12]


@dataclass
class RunRecord:
    """One parsed run: identity, results, timelines, accounting."""

    name: str
    path: Path
    contents: JournalContents

    @classmethod
    def load(cls, path, name: Optional[str] = None) -> "RunRecord":
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no run journal at {path}")
        return cls(name=name or path.stem, path=path,
                   contents=TrialJournal.read_all(path))

    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> Dict[str, Any]:
        header = self.contents.header or {}
        return header.get("fingerprint") or {}

    @property
    def run_id(self) -> str:
        return run_fingerprint_id(self.fingerprint)

    @property
    def strategy_name(self) -> str:
        return str((self.fingerprint.get("strategy") or {})
                   .get("strategy", "?"))

    @property
    def footer(self) -> Dict[str, Any]:
        return self.contents.footer or {}

    def results(self) -> List[TrialResult]:
        return [TrialResult.from_dict(entry["result"])
                for entry in self.contents.trials]

    def leaderboard(self, k: Optional[int] = None) -> List[TrialResult]:
        ranked = sorted((r for r in self.results() if not r.failed),
                        key=leaderboard_key)
        return ranked if k is None else ranked[:k]

    @property
    def best(self) -> Optional[TrialResult]:
        ranked = self.leaderboard(1)
        return ranked[0] if ranked else None

    def timeline(self, trial_id: int) -> Optional[MetricTimeline]:
        payload = self.contents.timelines.get(int(trial_id))
        return None if payload is None else MetricTimeline.from_dict(payload)

    def summary(self) -> Dict[str, Any]:
        """One index row: what `repro runs list` prints per run."""
        results = self.results()
        best = self.best
        stats = self.footer.get("stats") or {}
        stopped = self.footer.get("stopped")
        return {
            "name": self.name,
            "run_id": self.run_id,
            "strategy": self.strategy_name,
            "trials": len(results),
            "failed": sum(1 for r in results if r.failed),
            "best_score": None if best is None else float(best.score),
            "best_trial": None if best is None else int(best.trial_id),
            "timelines": len(self.contents.timelines),
            "worker_deaths": int(stats.get("worker_deaths", 0)),
            "stopped": (None if not stopped
                        else f"{stopped.get('stopper')}: "
                             f"{stopped.get('reason')}"),
        }


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------

def fingerprint_diff(a: Any, b: Any, prefix: str = "") -> List[Dict[str, Any]]:
    """Recursive structural diff of two JSON-able fingerprints.

    Returns one row per differing leaf: ``{"path", "a", "b"}`` with
    dotted paths (``task.max_budget``); a missing side reads ``None``.
    Rows come back sorted by path, so the diff itself is deterministic.
    """
    rows: List[Dict[str, Any]] = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            rows.extend(fingerprint_diff(a.get(key), b.get(key), path))
    elif a != b:
        rows.append({"path": prefix or "<root>", "a": a, "b": b})
    return rows


@dataclass
class RunDiff:
    """Everything :meth:`RunRegistry.compare` derives from two runs."""

    a: RunRecord
    b: RunRecord
    #: dotted-path config differences (empty → identical setups)
    config: List[Dict[str, Any]] = field(default_factory=list)
    #: ``best_score(b) - best_score(a)`` (None when either has no winner)
    best_delta: Optional[float] = None
    #: per shared trial id: ``{"trial_id", "a", "b", "delta"}``
    shared_trials: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def same_setup(self) -> bool:
        return not self.config

    def curve_overlay(self, metric: str) -> Dict[str, List[float]]:
        """The two winners' journaled curves for one metric, keyed by run.

        The programmatic form of a report's overlay plot: compare how
        the best trial of each run *got* to its score, not just where
        it ended.  Runs whose journal predates timelines contribute
        nothing (empty dict values are omitted).
        """
        overlay: Dict[str, List[float]] = {}
        for record in (self.a, self.b):
            best = record.best
            if best is None:
                continue
            timeline = record.timeline(best.trial_id)
            if timeline is not None and metric in timeline.curves:
                overlay[record.name] = list(timeline.curves[metric])
        return overlay


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

class RunRegistry:
    """A directory of run journals, indexed and comparable by name."""

    def __init__(self, root="runs") -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    def names(self) -> List[str]:
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.jsonl"))

    def path_for(self, name: str) -> Path:
        return self.root / f"{name}.jsonl"

    def load(self, name) -> RunRecord:
        """Load a registered run by name — or any journal by path."""
        as_path = Path(str(name))
        if as_path.suffix == ".jsonl" and as_path.exists():
            return RunRecord.load(as_path)
        path = self.path_for(str(name))
        if not path.exists():
            raise FileNotFoundError(
                f"no run named {name!r} under {self.root} "
                f"(registered: {self.names() or 'none'})")
        return RunRecord.load(path, name=str(name))

    def records(self) -> List[RunRecord]:
        return [self.load(name) for name in self.names()]

    def index(self) -> List[Dict[str, Any]]:
        """Summary rows for every registered run (name-sorted)."""
        return [record.summary() for record in self.records()]

    # ------------------------------------------------------------------
    def ingest(self, journal_path, name: Optional[str] = None,
               overwrite: bool = False) -> RunRecord:
        """Copy a finished journal into the registry under ``name``.

        The journal is validated first (it must parse and carry a
        header); the default name is the journal's file stem suffixed
        with the run fingerprint id, so re-ingesting the same setup is
        idempotent while two different setups never collide.
        """
        source = Path(journal_path)
        contents = TrialJournal.read_all(source)  # raises on non-journals
        if contents.header is None:
            raise ValueError(f"{source} has no journal header — refusing "
                             f"to register an unidentifiable run")
        if name is None:
            fingerprint = contents.header.get("fingerprint") or {}
            name = f"{source.stem}-{run_fingerprint_id(fingerprint)}"
        destination = self.path_for(name)
        if destination.exists() and not overwrite \
                and destination.resolve() != source.resolve():
            raise FileExistsError(
                f"run {name!r} already registered at {destination}; "
                f"pass overwrite=True to replace it")
        self.root.mkdir(parents=True, exist_ok=True)
        if destination.resolve() != source.resolve():
            shutil.copyfile(source, destination)
        return RunRecord(name=name, path=destination, contents=contents)

    # ------------------------------------------------------------------
    def diff(self, a, b) -> List[Dict[str, Any]]:
        """Config-only diff of two runs (see :func:`fingerprint_diff`)."""
        record_a, record_b = self.load(a), self.load(b)
        return fingerprint_diff(record_a.fingerprint, record_b.fingerprint)

    def compare(self, a, b) -> RunDiff:
        """Full comparison: config diff + leaderboard and trial deltas."""
        record_a, record_b = self.load(a), self.load(b)
        diff = RunDiff(a=record_a, b=record_b,
                       config=fingerprint_diff(record_a.fingerprint,
                                               record_b.fingerprint))
        best_a, best_b = record_a.best, record_b.best
        if best_a is not None and best_b is not None:
            diff.best_delta = float(best_b.score) - float(best_a.score)
        scores_a = {r.trial_id: float(r.score)
                    for r in record_a.results() if not r.failed}
        scores_b = {r.trial_id: float(r.score)
                    for r in record_b.results() if not r.failed}
        for trial_id in sorted(set(scores_a) & set(scores_b)):
            diff.shared_trials.append({
                "trial_id": int(trial_id),
                "a": scores_a[trial_id],
                "b": scores_b[trial_id],
                "delta": scores_b[trial_id] - scores_a[trial_id],
            })
        return diff


__all__ = ["RunRecord", "RunRegistry", "RunDiff", "fingerprint_diff",
           "run_fingerprint_id"]
