"""``repro.runs`` — the observability layer over tuning runs.

The autotune scheduler journals every completed trial; this package is
everything that happens *after* (or alongside) that journaling:

* :class:`MetricTimeline` — per-trial metric curves (per-epoch loss /
  validation macro-F1, bi-level search traces, darts alpha entropy) plus
  discrete events (ASHA rung decisions, stopper verdicts), journaled
  line-by-line next to each trial under the same fsync'd JSONL
  discipline;
* :class:`RunRegistry` — fingerprints and indexes completed run journals
  under a runs directory, with programmatic :meth:`RunRegistry.compare`
  / :meth:`RunRegistry.diff` across searches (leaderboard deltas,
  per-trial curve overlays, config diffs);
* :func:`render_report` / :func:`write_report` — a static,
  dependency-free HTML report (inline SVG curves, leaderboard, strategy
  summary, run accounting) renderable from any trial journal, including
  ones written before timelines existed.

See ``docs/OBSERVABILITY.md`` for the journal layout, registry
directory structure and report walkthrough.
"""

from .registry import RunDiff, RunRecord, RunRegistry, fingerprint_diff
from .report import render_report, write_report
from .timeline import (
    MetricTimeline,
    timeline_from_evaluation,
)

__all__ = [
    "MetricTimeline",
    "timeline_from_evaluation",
    "RunRecord",
    "RunRegistry",
    "RunDiff",
    "fingerprint_diff",
    "render_report",
    "write_report",
]
