"""Per-trial metric timelines — the trajectory a final score came from.

A :class:`MetricTimeline` carries what a :class:`~repro.autotune.
TrialResult` deliberately drops: the *per-epoch* curves behind one
evaluation (retrain loss, validation macro-F1, the bi-level search's
train/val traces and alpha entropy for one-shot trials) plus discrete
events (the ASHA rung a trial ran at, scheduler stopper verdicts).
Those curves are exactly what AutoAC's empirical figures are made of —
convergence (Fig. 4) and sensitivity trajectories (Figs. 8–11) — so
journaling them per trial makes every such plot regenerable from a
finished run instead of requiring a rerun.

Timelines ride in the trial journal as their own ``kind="timeline"``
JSONL records (written right after the trial's result line, same
flush+fsync discipline).  They are *derived* data: resume never replays
them into a strategy, old journals without them stay readable, and a
torn timeline line costs one trial's curves, never the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..training.metrics import alpha_entropy


@dataclass
class MetricTimeline:
    """The per-epoch curves and discrete events of one trial.

    ``curves`` maps metric name → list of per-epoch floats (curves may
    have different lengths: validation is only sampled every
    ``eval_every`` epochs).  ``events`` is an ordered list of JSON-able
    dicts, each with at least a ``"kind"`` key — e.g. the rung a trial
    executed at or the stopper verdict that ended the run.
    """

    trial_id: int
    curves: Dict[str, List[float]] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)

    def add_curve(self, name: str, values) -> None:
        """Record one metric curve (silently skips empty ones)."""
        points = [float(v) for v in values]
        if points:
            self.curves[str(name)] = points

    def add_event(self, kind: str, **payload: Any) -> None:
        self.events.append({"kind": str(kind), **payload})

    @property
    def epochs(self) -> int:
        """Length of the longest curve (0 for an event-only timeline)."""
        return max((len(c) for c in self.curves.values()), default=0)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "trial_id": int(self.trial_id),
            "curves": {name: [float(v) for v in values]
                       for name, values in sorted(self.curves.items())},
            "events": list(self.events),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricTimeline":
        return cls(
            trial_id=int(payload["trial_id"]),
            curves={str(name): [float(v) for v in values]
                    for name, values in (payload.get("curves") or {}).items()},
            events=list(payload.get("events") or []),
        )


def timeline_from_evaluation(trial, evaluation) -> MetricTimeline:
    """Build a trial's timeline from an :class:`ArchitectureEvaluation`.

    Retrain curves are always present (``retrain/train_loss``,
    ``retrain/val_macro_f1``); one-shot trials additionally carry the
    bi-level search's traces (``search/...`` including the per-epoch
    ``search/alpha_entropy``).  The rung event mirrors what ASHA decided
    for this trial — budget, rung index and the promotion parent — so a
    report can show the halving ladder without re-deriving it.
    """
    timeline = MetricTimeline(trial_id=int(trial.trial_id))
    for name, values in (evaluation.history or {}).items():
        timeline.add_curve(f"retrain/{name}", values)
    if evaluation.search is not None:
        for name, values in (evaluation.search.history or {}).items():
            timeline.add_curve(f"search/{name}", values)
    timeline.add_event(
        "rung",
        rung=int(trial.rung),
        budget=None if trial.budget is None else int(trial.budget),
        budget_used=int(evaluation.epochs_run),
        parent_id=(None if trial.parent_id is None
                   else int(trial.parent_id)),
    )
    return timeline


__all__ = ["MetricTimeline", "alpha_entropy", "timeline_from_evaluation"]
