"""A stdlib-only JSON HTTP front end for the inference engine.

No web framework — ``http.server.ThreadingHTTPServer`` is enough to make
the engine drivable as a real service (and testable end to end).  The
engine serializes access internally, so the threaded server is safe.

Endpoints
---------
``GET  /healthz``  liveness + bundle identity
``GET  /stats``    engine counters (:meth:`InferenceEngine.stats`)
``POST /predict``  ``{"node_ids": [..]}`` → predictions + label names
``POST /onboard``  ``{"node_type": .., "edges": {"src:name:dst": [..]},
                     "features": [..]?}`` → the new node's serving result
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from .engine import InferenceEngine


def _json_default(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    raise TypeError(f"not serializable: {type(obj)}")


def make_handler(engine: InferenceEngine):
    """Build a request-handler class bound to one engine instance."""

    class ServingHandler(BaseHTTPRequestHandler):
        server_version = "repro-serving/1"

        # silence per-request stderr logging (tests and benchmarks)
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, default=_json_default).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length == 0:
                return {}
            payload = json.loads(self.rfile.read(length).decode())
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        # ------------------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path == "/healthz":
                self._reply(200, {
                    "status": "ok",
                    "dataset": engine.bundle.dataset.name,
                    "model": engine.bundle.model_name,
                    "target_type": engine.bundle.target_type,
                })
            elif self.path == "/stats":
                self._reply(200, engine.stats())
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            try:
                payload = self._read_json()
                if self.path == "/predict":
                    node_ids = payload.get("node_ids")
                    if node_ids is None:
                        raise ValueError("missing 'node_ids'")
                    results = engine.predict_batch(node_ids)
                    self._reply(200, {
                        "node_ids": [entry["node_id"] for entry in results],
                        "predictions": [entry["prediction"]
                                        for entry in results],
                        "labels": [entry["label"] for entry in results],
                    })
                elif self.path == "/onboard":
                    node_type = payload.get("node_type")
                    if node_type is None:
                        raise ValueError("missing 'node_type'")
                    result = engine.onboard(
                        node_type, payload.get("edges") or {},
                        raw_features=payload.get("features"))
                    self._reply(200, result.to_json())
                else:
                    self._reply(404, {"error": f"unknown path {self.path!r}"})
            except (ValueError, KeyError, json.JSONDecodeError) as error:
                self._reply(400, {"error": str(error)})
            except RuntimeError as error:
                # e.g. a backbone that cannot be rebuilt inductively during
                # onboarding — the engine's state was rolled back, report it
                self._reply(500, {"error": str(error)})

    return ServingHandler


class ServingServer:
    """Owns a ``ThreadingHTTPServer`` around one engine.

    ``port=0`` binds an ephemeral port (tests); :meth:`start_background`
    runs the accept loop in a daemon thread and returns the bound address.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 8080) -> None:
        self.engine = engine
        self.httpd = ThreadingHTTPServer((host, port), make_handler(engine))
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C)."""
        self.httpd.serve_forever()

    def start_background(self) -> "ServingServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


__all__ = ["ServingServer", "make_handler"]
