"""A stdlib-only JSON HTTP front end for the inference engine.

No web framework — ``http.server.ThreadingHTTPServer`` is enough to make
the engine drivable as a real service (and testable end to end).  The
engine serializes access internally, so the threaded server is safe.

Endpoints
---------
``GET  /healthz``  **liveness**: the process is up and owns a bundle
``GET  /readyz``   **readiness**: willing to take traffic (503 while
                   draining — :meth:`ServingServer.set_ready`)
``GET  /stats``    engine counters (:meth:`InferenceEngine.stats`)
``GET  /metrics``  Prometheus text exposition — the engine's private
                   registry merged with the process-global one, so
                   trainer/tuner/profiler instruments ride along
``POST /predict``  ``{"node_ids": [..]}`` → predictions + label names
``POST /onboard``  ``{"node_type": .., "edges": {"src:name:dst": [..]},
                     "features": [..]?}`` → the new node's serving result

Every request is measured into ``http_requests_total{method,path,status}``
and ``http_request_seconds{path}`` (unknown paths collapse to
``path="<other>"`` to keep label cardinality bounded).  When the
engine's tracer is enabled, each request runs under an ``http_request``
root span — engine batch/forward spans nest beneath it, and the
response carries the trace id in ``X-Trace-Id``.  Structured access
logging (method, path, status, duration, trace id) is off by default
(``log_message`` stays silenced) and goes through a telemetry
:class:`~repro.telemetry.EventSink` when one is passed
(``repro serve --access-log``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..telemetry import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    EventSink,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from .engine import InferenceEngine

#: paths kept verbatim as metric label values; everything else becomes
#: "<other>" so a scanner probing random URLs cannot explode cardinality
_KNOWN_PATHS = ("/healthz", "/readyz", "/stats", "/metrics",
                "/predict", "/onboard")


def _json_default(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    raise TypeError(f"not serializable: {type(obj)}")


def make_handler(engine: InferenceEngine,
                 access_sink: Optional[EventSink] = None,
                 ready: Optional[threading.Event] = None):
    """Build a request-handler class bound to one engine instance."""
    metrics = engine.metrics
    http_requests = metrics.counter(
        "http_requests_total", "HTTP requests served",
        labels=("method", "path", "status"))
    http_seconds = metrics.histogram(
        "http_request_seconds", "HTTP request wall time", labels=("path",))

    class ServingHandler(BaseHTTPRequestHandler):
        server_version = "repro-serving/1"

        # silence per-request stderr logging — structured access logging
        # goes through the telemetry event sink instead (off by default)
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _reply(self, status: int, payload: dict) -> None:
            body = json.dumps(payload, default=_json_default).encode()
            self._send(status, body, "application/json")

        def _send(self, status: int, body: bytes,
                  content_type: str) -> None:
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if self._trace_id:
                self.send_header("X-Trace-Id", self._trace_id)
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            if length == 0:
                return {}
            payload = json.loads(self.rfile.read(length).decode())
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def _metrics_text(self) -> bytes:
            snapshots = [metrics.snapshot()]
            process_registry = get_registry()
            if process_registry is not metrics:
                snapshots.append(process_registry.snapshot())
            return render_prometheus(merge_snapshots(snapshots)).encode()

        # ------------------------------------------------------------------
        def _dispatch_get(self) -> None:
            if self.path == "/healthz":
                # liveness: the process is up and holds a bundle —
                # never gated on readiness, so an orchestrator can tell
                # "restart me" apart from "stop routing to me"
                self._reply(200, {
                    "status": "ok",
                    "check": "liveness",
                    "dataset": engine.bundle.dataset.name,
                    "model": engine.bundle.model_name,
                    "target_type": engine.bundle.target_type,
                })
            elif self.path == "/readyz":
                if ready is None or ready.is_set():
                    self._reply(200, {"status": "ready",
                                      "check": "readiness",
                                      "pending": len(engine._pending),
                                      "onboarded": engine.num_onboarded})
                else:
                    self._reply(503, {"status": "unready",
                                      "check": "readiness"})
            elif self.path == "/stats":
                self._reply(200, engine.stats())
            elif self.path == "/metrics":
                self._send(200, self._metrics_text(), METRICS_CONTENT_TYPE)
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _dispatch_post(self) -> None:
            try:
                payload = self._read_json()
                if self.path == "/predict":
                    node_ids = payload.get("node_ids")
                    if node_ids is None:
                        raise ValueError("missing 'node_ids'")
                    results = engine.predict_batch(node_ids)
                    self._reply(200, {
                        "node_ids": [entry["node_id"] for entry in results],
                        "predictions": [entry["prediction"]
                                        for entry in results],
                        "labels": [entry["label"] for entry in results],
                    })
                elif self.path == "/onboard":
                    node_type = payload.get("node_type")
                    if node_type is None:
                        raise ValueError("missing 'node_type'")
                    result = engine.onboard(
                        node_type, payload.get("edges") or {},
                        raw_features=payload.get("features"))
                    self._reply(200, result.to_json())
                else:
                    self._reply(404, {"error": f"unknown path {self.path!r}"})
            except (ValueError, KeyError, json.JSONDecodeError) as error:
                self._reply(400, {"error": str(error)})
            except RuntimeError as error:
                # e.g. a backbone that cannot be rebuilt inductively during
                # onboarding — the engine's state was rolled back, report it
                self._reply(500, {"error": str(error)})

        def _handle(self, method: str) -> None:
            start = time.perf_counter()
            self._status = 500
            self._trace_id = None
            path_label = (self.path if self.path in _KNOWN_PATHS
                          else "<other>")
            with engine.tracer.span("http_request", method=method,
                                    path=self.path) as span:
                self._trace_id = span.trace_id
                try:
                    if method == "GET":
                        self._dispatch_get()
                    else:
                        self._dispatch_post()
                finally:
                    span.set(status=self._status)
            duration = time.perf_counter() - start
            http_requests.inc(method=method, path=path_label,
                              status=str(self._status))
            http_seconds.observe(duration, path=path_label)
            if access_sink is not None:
                access_sink.emit({
                    "kind": "access", "unix_ms": time.time() * 1e3,
                    "method": method, "path": self.path,
                    "status": self._status,
                    "duration_ms": duration * 1e3,
                    "trace_id": self._trace_id,
                })

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            self._handle("POST")

    return ServingHandler


class ServingServer:
    """Owns a ``ThreadingHTTPServer`` around one engine.

    ``port=0`` binds an ephemeral port (tests); :meth:`start_background`
    runs the accept loop in a daemon thread and returns the bound
    address.  ``access_sink`` enables structured access logging.
    Readiness starts ``True``; :meth:`set_ready` flips ``/readyz``
    (liveness is unaffected), and :meth:`shutdown` drains by going
    unready before closing the socket.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 8080,
                 access_sink: Optional[EventSink] = None) -> None:
        self.engine = engine
        self._ready = threading.Event()
        self._ready.set()
        self.httpd = ThreadingHTTPServer(
            (host, port),
            make_handler(engine, access_sink=access_sink,
                         ready=self._ready))
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def set_ready(self, ready: bool) -> None:
        """Flip readiness (load-balancer drain) without touching liveness."""
        if ready:
            self._ready.set()
        else:
            self._ready.clear()

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C)."""
        self.httpd.serve_forever()

    def start_background(self) -> "ServingServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.set_ready(False)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


__all__ = ["ServingServer", "make_handler"]
