"""A stdlib-only JSON HTTP front end for the inference engine.

No web framework — ``http.server.ThreadingHTTPServer`` is enough to make
the engine drivable as a real service (and testable end to end).  The
engine serializes access internally, so the threaded server is safe.

Endpoints
---------
``GET  /healthz``  **liveness**: the process is up and owns a bundle
``GET  /readyz``   **readiness**: willing to take traffic (503 while
                   draining — :meth:`ServingServer.set_ready`)
``GET  /stats``    engine counters (:meth:`InferenceEngine.stats`)
``GET  /metrics``  Prometheus text exposition — the engine's private
                   registry merged with the process-global one, so
                   trainer/tuner/profiler instruments ride along
``POST /predict``  ``{"node_ids": [..]}`` → predictions + label names
``POST /onboard``  ``{"node_type": .., "edges": {"src:name:dst": [..]},
                     "features": [..]?}`` → the new node's serving result

Every request is measured into ``http_requests_total{method,path,status}``
and ``http_request_seconds{path}`` (unknown paths collapse to
``path="<other>"`` to keep label cardinality bounded).  When the
engine's tracer is enabled, each request runs under an ``http_request``
root span — engine batch/forward spans nest beneath it, and the
response carries the trace id in ``X-Trace-Id``.  Structured access
logging (method, path, status, duration, trace id) is off by default
(``log_message`` stays silenced) and goes through a telemetry
:class:`~repro.telemetry.EventSink` when one is passed
(``repro serve --access-log``).
"""

from __future__ import annotations

import json
import signal
import threading
import time
import warnings
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..telemetry import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    EventSink,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from .admission import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    ShedError,
    deadline_scope,
)
from .engine import InferenceEngine

#: paths kept verbatim as metric label values; everything else becomes
#: "<other>" so a scanner probing random URLs cannot explode cardinality
_KNOWN_PATHS = ("/healthz", "/readyz", "/stats", "/metrics",
                "/predict", "/onboard")


@dataclass
class ServerConfig:
    """Robustness knobs for the HTTP front end.

    ``deadline_ms`` is the per-POST time budget (None disables it);
    expiry answers **504** from the next engine checkpoint.  Admission
    bounds apply to POSTs only — health/metrics stay answerable under
    overload, which is exactly when an orchestrator needs them.
    ``max_body_bytes`` rejects oversized payloads with **413** before a
    byte of the body is read.  The breaker settings guard ``/onboard``
    (the state-mutating path): after ``breaker_failures`` consecutive
    onboard errors the endpoint fails fast with **503** until a
    ``breaker_cooldown_s`` probe succeeds.
    """

    deadline_ms: Optional[float] = None
    max_inflight: int = 8
    max_queue: int = 32
    max_body_bytes: int = 8 * 1024 * 1024
    breaker_failures: int = 3
    breaker_cooldown_s: float = 5.0
    drain_timeout_s: float = 10.0

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")
        if self.drain_timeout_s < 0:
            raise ValueError("drain_timeout_s must be >= 0")


class _PayloadTooLarge(ValueError):
    """Request body exceeds ``ServerConfig.max_body_bytes`` (HTTP 413)."""


def _json_default(obj):
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.floating, np.integer)):
        return obj.item()
    raise TypeError(f"not serializable: {type(obj)}")


def make_handler(engine: InferenceEngine,
                 access_sink: Optional[EventSink] = None,
                 ready: Optional[threading.Event] = None,
                 config: Optional[ServerConfig] = None,
                 admission: Optional[AdmissionController] = None,
                 breaker: Optional[CircuitBreaker] = None):
    """Build a request-handler class bound to one engine instance."""
    config = config or ServerConfig()
    metrics = engine.metrics
    http_requests = metrics.counter(
        "http_requests_total", "HTTP requests served",
        labels=("method", "path", "status"))
    http_seconds = metrics.histogram(
        "http_request_seconds", "HTTP request wall time", labels=("path",))
    http_shed = metrics.counter(
        "http_requests_shed_total", "Requests refused admission",
        labels=("reason",))
    http_deadline = metrics.counter(
        "http_deadline_exceeded_total", "Requests that ran out of budget")
    http_errors = metrics.counter(
        "http_internal_errors_total",
        "Unexpected handler exceptions answered with 500")

    class ServingHandler(BaseHTTPRequestHandler):
        server_version = "repro-serving/1"

        # silence per-request stderr logging — structured access logging
        # goes through the telemetry event sink instead (off by default)
        def log_message(self, format, *args):  # noqa: A002
            pass

        def _reply(self, status: int, payload: dict,
                   extra_headers: Optional[dict] = None) -> None:
            body = json.dumps(payload, default=_json_default).encode()
            self._send(status, body, "application/json",
                       extra_headers=extra_headers)

        def _send(self, status: int, body: bytes, content_type: str,
                  extra_headers: Optional[dict] = None) -> None:
            self._status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if self._trace_id:
                self.send_header("X-Trace-Id", self._trace_id)
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except (TypeError, ValueError):
                raise ValueError("Content-Length must be an integer")
            if length > config.max_body_bytes:
                # refused before a byte of the body is read: the
                # connection is closed after the reply, so an attacker
                # cannot make the server buffer the oversized payload
                raise _PayloadTooLarge(
                    f"request body of {length} bytes exceeds the "
                    f"{config.max_body_bytes}-byte limit")
            if length <= 0:
                return {}
            body = self.rfile.read(length)
            if len(body) < length:
                raise ValueError(
                    f"request body truncated ({len(body)} of "
                    f"{length} bytes)")
            payload = json.loads(body.decode())
            if not isinstance(payload, dict):
                raise ValueError("request body must be a JSON object")
            return payload

        def _metrics_text(self) -> bytes:
            snapshots = [metrics.snapshot()]
            process_registry = get_registry()
            if process_registry is not metrics:
                snapshots.append(process_registry.snapshot())
            return render_prometheus(merge_snapshots(snapshots)).encode()

        # ------------------------------------------------------------------
        def _dispatch_get(self) -> None:
            if self.path == "/healthz":
                # liveness: the process is up and holds a bundle —
                # never gated on readiness, so an orchestrator can tell
                # "restart me" apart from "stop routing to me"
                self._reply(200, {
                    "status": "ok",
                    "check": "liveness",
                    "dataset": engine.bundle.dataset.name,
                    "model": engine.bundle.model_name,
                    "target_type": engine.bundle.target_type,
                })
            elif self.path == "/readyz":
                if ready is None or ready.is_set():
                    self._reply(200, {"status": "ready",
                                      "check": "readiness",
                                      "pending": len(engine._pending),
                                      "onboarded": engine.num_onboarded})
                else:
                    self._reply(503, {"status": "unready",
                                      "check": "readiness"})
            elif self.path == "/stats":
                self._reply(200, engine.stats())
            elif self.path == "/metrics":
                self._send(200, self._metrics_text(), METRICS_CONTENT_TYPE)
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _dispatch_post(self) -> None:
            deadline = (None if config.deadline_ms is None
                        else Deadline.after_ms(config.deadline_ms))
            try:
                # admission before the body is read: a shed request
                # costs the server one header parse, nothing more
                queue_budget = (None if deadline is None
                                else max(deadline.remaining_s(), 0.0))
                with admission.admit(timeout_s=queue_budget), \
                        deadline_scope(deadline):
                    self._dispatch_post_admitted()
            except _PayloadTooLarge as error:
                self.close_connection = True
                self._reply(413, {"error": str(error)})
            except DeadlineExceeded as error:
                http_deadline.inc()
                self._reply(504, {"error": str(error)})
            except ShedError as error:  # includes CircuitOpenError
                http_shed.inc(reason=error.reason)
                self._reply(503, {"error": str(error)},
                            extra_headers={"Retry-After": str(max(
                                int(round(error.retry_after_s)), 1))})
            except (ValueError, KeyError, json.JSONDecodeError) as error:
                self._reply(400, {"error": str(error)})
            except RuntimeError as error:
                # e.g. a backbone that cannot be rebuilt inductively during
                # onboarding — the engine's state was rolled back, report it
                self._reply(500, {"error": str(error)})

        def _dispatch_post_admitted(self) -> None:
            payload = self._read_json()
            if self.path == "/predict":
                node_ids = payload.get("node_ids")
                if node_ids is None:
                    raise ValueError("missing 'node_ids'")
                results = engine.predict_batch(node_ids)
                self._reply(200, {
                    "node_ids": [entry["node_id"] for entry in results],
                    "predictions": [entry["prediction"]
                                    for entry in results],
                    "labels": [entry["label"] for entry in results],
                })
            elif self.path == "/onboard":
                node_type = payload.get("node_type")
                if node_type is None:
                    raise ValueError("missing 'node_type'")
                # breaker around the one state-mutating endpoint: once
                # onboarding writes are known-broken, fail fast instead
                # of grinding every request through the same error
                with breaker.guard():
                    result = engine.onboard(
                        node_type, payload.get("edges") or {},
                        raw_features=payload.get("features"))
                self._reply(200, result.to_json())
            else:
                self._reply(404, {"error": f"unknown path {self.path!r}"})

        def _handle(self, method: str) -> None:
            start = time.perf_counter()
            self._status = 500
            self._trace_id = None
            path_label = (self.path if self.path in _KNOWN_PATHS
                          else "<other>")
            with engine.tracer.span("http_request", method=method,
                                    path=self.path) as span:
                self._trace_id = span.trace_id
                try:
                    if method == "GET":
                        self._dispatch_get()
                    else:
                        self._dispatch_post()
                except (BrokenPipeError, ConnectionResetError):
                    # the client hung up mid-request; nothing to answer,
                    # and one dead socket must not take the thread down
                    self.close_connection = True
                except Exception as error:  # noqa: BLE001 — the backstop
                    # whatever escaped the typed handlers (including an
                    # injected fault) becomes a clean 500: a request may
                    # fail, the serving thread pool must not
                    http_errors.inc()
                    try:
                        self._reply(500, {
                            "error": f"internal error: "
                                     f"{type(error).__name__}: {error}"})
                    except OSError:
                        self.close_connection = True
                finally:
                    span.set(status=self._status)
            duration = time.perf_counter() - start
            http_requests.inc(method=method, path=path_label,
                              status=str(self._status))
            http_seconds.observe(duration, path=path_label)
            if access_sink is not None:
                access_sink.emit({
                    "kind": "access", "unix_ms": time.time() * 1e3,
                    "method": method, "path": self.path,
                    "status": self._status,
                    "duration_ms": duration * 1e3,
                    "trace_id": self._trace_id,
                })

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            self._handle("GET")

        def do_POST(self) -> None:  # noqa: N802 (http.server API)
            self._handle("POST")

    return ServingHandler


class ServingServer:
    """Owns a ``ThreadingHTTPServer`` around one engine.

    ``port=0`` binds an ephemeral port (tests); :meth:`start_background`
    runs the accept loop in a daemon thread and returns the bound
    address.  ``access_sink`` enables structured access logging;
    ``config`` carries the robustness knobs (deadlines, admission
    bounds, body limit, breaker).  Readiness starts ``True``;
    :meth:`set_ready` flips ``/readyz`` (liveness is unaffected), and
    :meth:`shutdown` drains in order: stop accepting new POSTs (shed
    with 503), let in-flight requests finish (bounded by
    ``drain_timeout_s``), then close the socket.
    """

    def __init__(self, engine: InferenceEngine, host: str = "127.0.0.1",
                 port: int = 8080,
                 access_sink: Optional[EventSink] = None,
                 config: Optional[ServerConfig] = None) -> None:
        self.engine = engine
        self.config = config or ServerConfig()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            cooldown_s=self.config.breaker_cooldown_s)
        self._ready = threading.Event()
        self._ready.set()
        self.httpd = ThreadingHTTPServer(
            (host, port),
            make_handler(engine, access_sink=access_sink,
                         ready=self._ready, config=self.config,
                         admission=self.admission, breaker=self.breaker))
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    @property
    def ready(self) -> bool:
        return self._ready.is_set()

    def set_ready(self, ready: bool) -> None:
        """Flip readiness (load-balancer drain) without touching liveness."""
        if ready:
            self._ready.set()
        else:
            self._ready.clear()

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or Ctrl-C)."""
        self.httpd.serve_forever()

    def start_background(self) -> "ServingServer":
        self._thread = threading.Thread(target=self.httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful stop: drain, flush in-flight work, close, verify.

        Order matters — readiness flips first (load balancers stop
        routing), admission drains (new POSTs shed with 503 while
        in-flight ones finish, bounded by ``drain_timeout_s``), the
        accept loop stops, and only then does the socket close.  A
        serve thread still alive after its join window is a leak, not a
        detail: it holds the port and the engine — so it raises.
        """
        self.set_ready(False)
        self.admission.drain()
        drained = self.admission.wait_idle(
            timeout_s=self.config.drain_timeout_s)
        if not drained:
            warnings.warn(
                f"shutdown proceeded with {self.admission.inflight} "
                f"request(s) still in flight after "
                f"{self.config.drain_timeout_s}s drain window",
                RuntimeWarning, stacklevel=2)
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            if self._thread.is_alive():
                raise RuntimeError(
                    "serving thread is still alive 5s after shutdown — "
                    "the accept loop did not exit; the port and engine "
                    "are leaked")
            self._thread = None

    def register_sigterm_drain(self) -> None:
        """Install a SIGTERM handler that drains and exits cleanly.

        ``httpd.shutdown`` deadlocks when called from the thread running
        ``serve_forever`` — a signal handler runs on the main thread,
        which in the foreground CLI *is* that thread — so the handler
        only spawns a drainer thread and returns; ``serve_forever``
        unblocks once the drainer calls shutdown.  Only callable from
        the main thread (a Python signal.signal constraint).
        """
        def _drain(signum, frame):  # noqa: ARG001 (signal API)
            threading.Thread(target=self.shutdown,
                             name="sigterm-drain", daemon=True).start()

        signal.signal(signal.SIGTERM, _drain)


__all__ = ["ServerConfig", "ServingServer", "make_handler"]
