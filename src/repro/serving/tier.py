"""Preforked multi-worker serving tier over one shared bundle.

``ServingTier`` scales :class:`~repro.serving.InferenceEngine` across N
worker *processes* while keeping exactly one physical copy of the
expensive state:

* the parent loads the bundle **mmap-backed**
  (:meth:`ModelBundle.load(mmap_mode="r") <repro.serving.ModelBundle.
  load>`) and builds one template engine — model weights, completed
  attributes, and the frozen ``h0`` live in page-cache/copy-on-write
  memory;
* workers are **forked** from that template, so they share the parent's
  read-only pages instead of re-loading or re-computing anything (a
  worker is serving its first request milliseconds after the fork);
* each worker owns a private result cache and a private
  :class:`~repro.telemetry.MetricsRegistry`; snapshots ship to the
  front over the worker pipe and aggregate via
  :func:`~repro.telemetry.merge_snapshots` at ``/metrics``.

Writes stay **single-writer**: worker 0 applies every ``/onboard``
(WAL first, exactly like the single-process engine), then the front
broadcasts the compact overlay delta (:meth:`OnboardResult.to_wire`)
to the reader workers, which install it without recomputing
(:meth:`InferenceEngine.install_overlay`).  Readers therefore never
block reads on writes, and existing predictions never change.

Failure semantics (docs/ROBUSTNESS.md): a worker killed mid-request is
detected by the front (EOF on its pipe), its in-flight batch is
requeued for a sibling, and a replacement is forked from the pristine
parent template; the replacement inherits the current overlay by
replaying the WAL (or the in-memory onboard log when no WAL is
configured) before it accepts traffic.  Fault sites ``tier.fork``,
``tier.broadcast``, ``tier.worker.boot`` and ``tier.worker.loop`` make
all of this reachable from :mod:`repro.faults` plans — including
``chaos_smoke``'s tier scenario.

The HTTP edge lives in :mod:`repro.serving.frontend` (an asyncio accept
loop that coalesces concurrent in-flight requests into per-worker
micro-batches); this module owns the processes and the wire protocol —
newline-delimited JSON over a pre-fork ``socketpair``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..faults import fault_site
from ..telemetry import MetricsRegistry, get_registry, merge_snapshots
from .artifact import ModelBundle
from .engine import EngineConfig, InferenceEngine
from .frontend import FrontendConfig, TierFrontend
from .onboarding import OnboardResult
from .wal import OnboardWAL

#: wire protocol version, embedded in the ready handshake
TIER_PROTOCOL_VERSION = 1


@dataclass
class TierConfig:
    """Process-level knobs of the serving tier."""

    #: worker processes; worker 0 is the single onboarding writer
    workers: int = 2
    #: serve the bundle through the mmap sidecar cache so workers share
    #: one physical copy of the arrays (set False to debug eager loads)
    mmap: bool = True
    #: onboarding WAL path — shared by the writer (appends) and by
    #: respawned workers (replay); None keeps the log in tier memory
    wal_path: Optional[os.PathLike] = None
    #: fork a replacement when a worker dies mid-service
    respawn: bool = True
    #: lifetime cap on respawns (a crash-looping worker should surface
    #: as degraded capacity, not an endless fork storm)
    max_respawns: int = 16
    #: patience for worker process join before escalating to terminate
    shutdown_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        if self.workers <= 0:
            raise ValueError("workers must be positive")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")


@dataclass
class WorkerHandle:
    """Parent-side view of one forked worker."""

    index: int
    role: str                      # "writer" | "reader"
    process: Any                   # multiprocessing.Process
    sock: Optional[socket.socket]  # parent end until asyncio adopts it
    pid: Optional[int]
    generation: int = 0
    dead: bool = False
    # set by the frontend once the pipe is wrapped in asyncio streams
    reader: Any = None
    writer: Any = None
    lock: Any = None               # asyncio.Lock — one call in flight
    seq: int = field(default=0)

    @property
    def alive(self) -> bool:
        return not self.dead and self.process.is_alive()


# ---------------------------------------------------------------------------
# Worker process side (runs in the forked child)
# ---------------------------------------------------------------------------
def _send(wfile, payload: Dict) -> None:
    wfile.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
    wfile.flush()


def _predict_entries(engine: InferenceEngine,
                     entries: List[List[int]]) -> List[Dict]:
    """Answer a coalesced micro-batch: ONE engine batch for all entries.

    A full-graph forward answers however many queries share it, so the
    whole wire batch goes through ``predict_batch`` at once; only when
    some entry carries out-of-range ids does the slow path isolate the
    offender per entry (everyone else still gets answers).
    """
    flat = [int(node_id) for entry in entries for node_id in entry]
    try:
        answered = engine.predict_batch(flat)
    except ValueError:
        results = []
        for entry in entries:
            try:
                results.append({"ok": True,
                                "rows": engine.predict_batch(entry)})
            except ValueError as error:
                results.append({"ok": False, "error": str(error)})
        return results
    rows_by_id = {row["node_id"]: row for row in answered}
    return [{"ok": True, "rows": [rows_by_id[int(node_id)]
                                  for node_id in entry]}
            for entry in entries]


def _worker_catch_up(engine: InferenceEngine, role: str,
                     wal_path: Optional[str], deltas: List[Dict],
                     requests: List[Dict]) -> None:
    """Bring a freshly forked worker up to the current overlay.

    With a WAL: the writer attaches it (replay + open for append);
    readers replay the same records *without* opening the log, so only
    the writer ever appends.  Without a WAL: the writer re-applies the
    logged onboard requests (onboarding is deterministic, so results
    are identical), readers install the logged wire deltas.
    """
    if wal_path is not None:
        if role == "writer":
            engine.attach_wal(wal_path)
        else:
            for record in OnboardWAL(wal_path).records():
                engine.onboard(record["node_type"],
                               record.get("edges") or {},
                               raw_features=record.get("raw_features"))
    elif role == "writer":
        for request in requests:
            engine.onboard(request["node_type"],
                           request.get("edges") or {},
                           raw_features=request.get("raw_features"))
    else:
        for delta in deltas:
            engine.install_overlay(OnboardResult.from_wire(delta))


def _worker_main(child_sock: socket.socket, engine: InferenceEngine,
                 role: str, wal_path: Optional[str], deltas: List[Dict],
                 requests: List[Dict],
                 inherited: List[socket.socket]) -> None:
    """The forked worker's serve loop (newline-delimited JSON)."""
    for other in inherited:  # siblings' pipe ends copied in by fork
        try:
            other.close()
        except OSError:
            pass
    rfile = child_sock.makefile("rb")
    wfile = child_sock.makefile("wb")
    try:
        fault_site("tier.worker.boot", key=role)
        _worker_catch_up(engine, role, wal_path, deltas, requests)
        _send(wfile, {"id": 0, "op": "ready", "ok": True,
                      "pid": os.getpid(), "role": role,
                      "protocol": TIER_PROTOCOL_VERSION,
                      "onboarded": engine.num_onboarded})
        while True:
            line = rfile.readline()
            if not line:  # parent went away; nothing left to serve
                break
            message = json.loads(line)
            op = message.get("op")
            reply_id = message.get("id")
            try:
                fault_site("tier.worker.loop", key=str(op))
                if op == "predict":
                    reply = {"results": _predict_entries(
                        engine, message["entries"])}
                elif op == "onboard":
                    result = engine.onboard(
                        message["node_type"], message.get("edges") or {},
                        raw_features=message.get("raw_features"))
                    reply = {"result": result.to_json(),
                             "delta": result.to_wire()}
                elif op == "overlay":
                    engine.install_overlay(
                        OnboardResult.from_wire(message["delta"]))
                    reply = {"onboarded": engine.num_onboarded}
                elif op == "snapshot":
                    reply = {"snapshot": merge_snapshots(
                        [engine.metrics.snapshot(),
                         get_registry().snapshot()])}
                elif op == "stats":
                    stats = engine.stats()
                    stats["pid"] = os.getpid()
                    stats["role"] = role
                    reply = {"stats": stats}
                elif op == "ping":
                    reply = {"pid": os.getpid()}
                elif op == "shutdown":
                    _send(wfile, {"id": reply_id, "ok": True})
                    break
                else:
                    raise ValueError(f"unknown tier op {op!r}")
                _send(wfile, {"id": reply_id, "ok": True, **reply})
            except ValueError as error:
                _send(wfile, {"id": reply_id, "ok": False,
                              "kind": "value", "error": str(error)})
            except Exception as error:  # injected faults keep serving
                _send(wfile, {"id": reply_id, "ok": False,
                              "kind": "internal",
                              "error": f"{type(error).__name__}: {error}"})
    except (BrokenPipeError, ConnectionResetError, OSError,
            json.JSONDecodeError):
        pass  # a torn pipe means the parent is gone — exit quietly
    finally:
        engine.close()
        try:
            child_sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------
class ServingTier:
    """N preforked engine workers behind one coalescing async front.

    ::

        tier = ServingTier("bundle.npz",
                           TierConfig(workers=4, wal_path="onboard.wal"),
                           port=8000).start_background()
        ...
        tier.shutdown()

    The constructor does the expensive work once — mmap-load the bundle,
    instantiate the template engine (one ``h0`` forward) — and every
    fork afterwards is cheap.  ``serve_forever()`` runs the front in the
    calling thread (the CLI path, with SIGTERM draining);
    ``start_background()`` runs it on a daemon thread (tests and
    benchmarks).
    """

    def __init__(self, bundle_path, config: Optional[TierConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 frontend_config: Optional[FrontendConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "the serving tier needs the 'fork' start method (workers "
                "share the template engine copy-on-write); this platform "
                "does not provide it")
        self.config = config or TierConfig()
        self.bundle_path = Path(bundle_path)
        bundle = ModelBundle.load(
            self.bundle_path, mmap_mode="r" if self.config.mmap else None)
        self._engine_config = engine_config or EngineConfig()
        #: built ONCE, pre-fork: every worker inherits these pages
        self.template = InferenceEngine(bundle, config=self._engine_config)
        self._ctx = multiprocessing.get_context("fork")
        self.metrics = registry or MetricsRegistry()
        self._spawned = 0
        #: the no-WAL catch-up log: requests for a respawned writer,
        #: wire deltas for respawned readers (kept even with a WAL so
        #: /stats can report the onboard history cheaply)
        self._onboard_requests: List[Dict] = []
        self._deltas: List[Dict] = []
        self._live: List[WorkerHandle] = []
        self.frontend = TierFrontend(self, host=host, port=port,
                                     config=frontend_config,
                                     registry=self.metrics)

    # -- process management (called from the frontend's loop thread) ----
    def spawn_worker(self, index: int, generation: int = 0) -> WorkerHandle:
        """Fork one worker; returns its handle with the parent pipe end."""
        fault_site("tier.fork", key=str(index))
        parent_sock, child_sock = socket.socketpair()
        role = "writer" if index == 0 else "reader"
        wal = (None if self.config.wal_path is None
               else str(self.config.wal_path))
        inherited = [handle.sock for handle in self._live
                     if handle.sock is not None]
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_sock, self.template, role, wal,
                  list(self._deltas), list(self._onboard_requests),
                  inherited),
            daemon=True, name=f"tier-worker-{index}.{generation}")
        process.start()
        child_sock.close()
        handle = WorkerHandle(index=index, role=role, process=process,
                              sock=parent_sock, pid=process.pid,
                              generation=generation)
        self._live.append(handle)
        self._spawned += 1
        return handle

    def reap(self, handle: WorkerHandle) -> None:
        """Retire a worker process (dead or being shut down)."""
        handle.dead = True
        if handle in self._live:
            self._live.remove(handle)
        process = handle.process
        process.join(timeout=0.2)
        if process.is_alive():
            process.terminate()
            process.join(timeout=self.config.shutdown_timeout_s)
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)

    def record_onboard(self, request: Dict, delta: Dict) -> None:
        """Log a committed onboard so future respawns catch up.

        Called by the front *after* the writer's WAL append succeeded
        and *before* the delta is broadcast — a reader respawned during
        the broadcast still inherits the delta at fork time.
        """
        self._onboard_requests.append(request)
        self._deltas.append(delta)

    @property
    def num_onboarded(self) -> int:
        return len(self._deltas)

    # -- lifecycle ------------------------------------------------------
    def start_background(self) -> "ServingTier":
        self.frontend.start_background()
        return self

    def serve_forever(self) -> None:
        self.frontend.serve_forever()

    def shutdown(self) -> None:
        self.frontend.shutdown()

    @property
    def url(self) -> str:
        return self.frontend.url

    @property
    def address(self):
        return self.frontend.address

    def stats(self) -> Dict:
        """Tier-level accounting (the front merges in worker stats)."""
        return {
            "workers": self.config.workers,
            "writer_index": 0,
            "mmap": self.config.mmap,
            "wal": (None if self.config.wal_path is None
                    else str(self.config.wal_path)),
            "spawned_total": self._spawned,
            "onboarded": self.num_onboarded,
            "pids": [handle.pid for handle in self._live],
        }


__all__ = ["ServingTier", "TierConfig", "TIER_PROTOCOL_VERSION",
           "WorkerHandle"]
