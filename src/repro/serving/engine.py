"""Batched inference over a loaded :class:`~repro.serving.ModelBundle`.

The engine loads a bundle once, freezes the reconstructed initial
embedding ``h0`` (one pass through the retrained feature builder, reusing
``HeteroGraph``'s cached normalized CSR operators), and then serves
queries without ever touching the training pipeline:

* **micro-batching** — queries are answered one *batch* per model
  forward: a direct :meth:`InferenceEngine.predict` call is a single
  batch however many ids it carries, and queued queries
  (:meth:`enqueue`) accumulate until an explicit :meth:`flush` or the
  ``max_batch_size`` auto-flush threshold.  A GNN forward is full-graph,
  so its cost is independent of how many queries share it; batching B
  cold queries into one flush is a ~B× throughput win.
* **LRU result cache** — per-node results are memoized (bounded by
  ``cache_size``; the full logits matrix is deliberately *not* pinned so
  memory stays flat under large-id-space workloads).  A warm hit skips
  the forward entirely.
* **telemetry** — every counter lives on a per-engine
  :class:`~repro.telemetry.MetricsRegistry` (queries, batches, forward
  passes, cache traffic, latency histograms with a ``cache=hit|miss``
  label), surfaced three ways: :meth:`InferenceEngine.stats` (the
  ``/stats`` endpoint, JSON-compatible with its pre-telemetry shape plus
  ``latency.p50_ms/p95_ms/p99_ms``), the Prometheus ``/metrics``
  endpoint, and snapshot/merge for future multi-worker aggregation.
  When a :class:`~repro.telemetry.Tracer` is attached, each batch and
  each model forward report as spans under the caller's trace id (the
  HTTP handler's ``http_request`` span), with per-op timings captured
  through :mod:`repro.tensor._profile`.

Onboarded nodes (see :mod:`repro.serving.onboarding`) are served from an
overlay: their results are computed once at onboarding time against the
updated graph, while every pre-existing node keeps being answered from
the frozen base state — so onboarding can never change an existing
prediction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..datasets import HeteroDataset
from ..faults import fault_site
from ..graph.adjacency import LRUCache
from ..telemetry import MetricsRegistry, Tracer, get_tracer
from ..tensor import Tensor, no_grad
from .admission import check_deadline
from .artifact import ModelBundle
from .onboarding import OnboardingManager, OnboardResult
from .wal import OnboardWAL, WalReplayError

_MISS = object()


@dataclass
class EngineConfig:
    """Serving knobs.

    ``max_batch_size`` is the queue's auto-flush threshold: once that
    many queries are pending, :meth:`InferenceEngine.enqueue` flushes
    them as one batch (= one model forward).  ``cache_size`` bounds the
    LRU result cache; ``auto_flush`` disables the threshold when False
    (callers then flush explicitly).
    """

    max_batch_size: int = 64
    cache_size: int = 4096
    auto_flush: bool = True
    #: per-relation fan-out for onboarding forwards: when set (and the
    #: bundled backbone supports sampling) a new node's prediction is
    #: computed on its sampled neighborhood view instead of a full pass
    #: over the updated graph — the O(neighborhood) onboarding path
    onboard_fanout: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        if self.cache_size <= 0:
            raise ValueError("cache_size must be positive")
        if self.onboard_fanout is not None and self.onboard_fanout <= 0:
            raise ValueError("onboard_fanout must be positive when set")


class InferenceEngine:
    """Answers ``predict`` / ``embed`` queries from a loaded bundle."""

    def __init__(self, bundle: ModelBundle,
                 config: Optional[EngineConfig] = None,
                 dataset: Optional[HeteroDataset] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.bundle = bundle
        self.config = config or EngineConfig()
        self.dataset, self.model, self.features = bundle.instantiate(dataset)
        with no_grad():
            self._h0 = np.asarray(self.features().data).copy()
        graph = self.dataset.graph
        self._num_target = graph.num_nodes_of(bundle.target_type)
        self._num_nodes = graph.num_nodes
        self._cache = LRUCache(maxsize=self.config.cache_size)
        self._pending: List[Tuple[str, int]] = []
        self._lock = threading.RLock()
        self._onboarding: Optional[OnboardingManager] = None
        #: overlay deltas *installed* from a peer's onboard (see
        #: :meth:`install_overlay`) — served exactly like locally
        #: onboarded nodes but never recomputed here
        self._installed: Dict[Tuple[str, int], OnboardResult] = {}
        self._wal: Optional[OnboardWAL] = None
        self._started = time.perf_counter()
        #: a PRIVATE registry per engine, so two engines in one process
        #: never cross-count; the HTTP server merges it with the global
        #: registry for /metrics
        self.metrics = registry or MetricsRegistry()
        self.tracer = tracer or get_tracer()
        m = self.metrics
        self._m_queries = m.counter(
            "engine_queries_total", "Queries answered", labels=("kind",))
        self._m_batches = m.counter(
            "engine_batches_total", "Micro-batches processed")
        self._m_forwards = m.counter(
            "engine_forward_passes_total", "Full model forward passes",
            labels=("kind",))
        self._m_cache = m.counter(
            "engine_cache_requests_total", "Result-cache lookups",
            labels=("result",))
        self._m_batch_seconds = m.histogram(
            "engine_batch_seconds", "Wall time per micro-batch")
        self._m_query_seconds = m.histogram(
            "engine_query_seconds",
            "Apportioned per-query wall time, split by cache outcome",
            labels=("cache",))
        self._m_pending = m.gauge(
            "engine_pending_queries", "Queries queued awaiting flush")

    @classmethod
    def from_path(cls, path, config: Optional[EngineConfig] = None,
                  dataset: Optional[HeteroDataset] = None,
                  registry: Optional[MetricsRegistry] = None,
                  tracer: Optional[Tracer] = None) -> "InferenceEngine":
        """Load a saved bundle file and build an engine around it."""
        return cls(ModelBundle.load(path), config=config, dataset=dataset,
                   registry=registry, tracer=tracer)

    # ------------------------------------------------------------------
    # Model forwards (one per flushed batch)
    # ------------------------------------------------------------------
    def _forward_logits(self) -> np.ndarray:
        """Full target-type logits from the frozen base state."""
        check_deadline("forward")
        fault_site("engine.forward", key="predict")
        self._m_forwards.inc(kind="predict")
        with self.tracer.span("forward", capture_ops=True, kind="predict"):
            with no_grad():
                logits = self.model(Tensor(self._h0))
        return np.asarray(logits.data)

    def _forward_embeddings(self) -> np.ndarray:
        """Full-graph node embeddings from the frozen base state."""
        if not getattr(self.model, "full_graph", False):
            raise ValueError(
                f"backbone {self.bundle.model_name!r} only embeds the "
                f"target type; embed() needs a full-graph model")
        check_deadline("forward")
        fault_site("engine.forward", key="embed")
        self._m_forwards.inc(kind="embed")
        with self.tracer.span("forward", capture_ops=True, kind="embed"):
            with no_grad():
                encoded = self.model.encode(Tensor(self._h0))
        return np.asarray(encoded.data)

    # ------------------------------------------------------------------
    # Micro-batched serving
    # ------------------------------------------------------------------
    def _validate_ids(self, kind: str, ids: np.ndarray) -> None:
        if ids.size == 0:
            return
        onboarded_targets = len(self._overlay_targets())
        limit = (self._num_target + onboarded_targets if kind == "predict"
                 else self._num_nodes)
        if ids.min() < 0 or ids.max() >= limit:
            raise ValueError(
                f"{kind} ids out of range [0, {limit}) "
                f"(got min={ids.min()}, max={ids.max()})")

    def _overlay_targets(self) -> Dict[int, OnboardResult]:
        overlay: Dict[int, OnboardResult] = {
            local_id: result
            for (node_type, local_id), result in self._installed.items()
            if node_type == self.bundle.target_type}
        if self._onboarding is not None:
            # a locally computed result is authoritative over an
            # installed copy of itself (they are identical by contract)
            overlay.update(self._onboarding.target_overlay())
        return overlay

    def _process(self, requests: Sequence[Tuple[str, int]]) -> Dict[Tuple[str, int], np.ndarray]:
        """Answer a batch of ``(kind, id)`` requests with ≤1 forward per kind.

        Results enter the LRU cache; onboarded target nodes come from the
        overlay.  Caller holds the lock.

        Per-query latency is apportioned, not measured per query: every
        request carries an equal share of the scan phase, and the
        requests that forced a forward additionally split the forward
        phase — recorded in ``engine_query_seconds`` under
        ``cache="hit"`` / ``cache="miss"`` so warm dictionary lookups
        never dilute (or hide) the cost of a cold query.
        """
        check_deadline("batch")
        fault_site("engine.flush")
        with self.tracer.span("batch", queries=len(requests)) as span:
            start = time.perf_counter()
            results: Dict[Tuple[str, int], np.ndarray] = {}
            misses: Dict[str, List[int]] = {}
            kind_counts: Dict[str, int] = {}
            hit_requests = 0
            miss_requests = 0
            overlay = self._overlay_targets()
            miss_keys = set()
            for kind, node_id in requests:
                kind_counts[kind] = kind_counts.get(kind, 0) + 1
                key = (kind, node_id)
                if key in results or key in miss_keys:
                    # a duplicate inside one batch shares its first
                    # occurrence's outcome for accounting purposes
                    if key in miss_keys:
                        miss_requests += 1
                    else:
                        hit_requests += 1
                    continue
                if kind == "predict" and node_id >= self._num_target:
                    results[key] = overlay[node_id].logits
                    hit_requests += 1
                    continue
                cached = self._cache.lookup(key, _MISS)
                if cached is not _MISS:
                    results[key] = cached
                    hit_requests += 1
                else:
                    misses.setdefault(kind, []).append(node_id)
                    miss_keys.add(key)
                    miss_requests += 1
            scan_end = time.perf_counter()
            for kind, node_ids in misses.items():
                matrix = (self._forward_logits() if kind == "predict"
                          else self._forward_embeddings())
                for node_id in node_ids:
                    row = matrix[node_id].copy()
                    self._cache.put((kind, node_id), row)
                    results[(kind, node_id)] = row
            end = time.perf_counter()

            for kind, count in kind_counts.items():
                self._m_queries.inc(count, kind=kind)
            self._m_batches.inc()
            self._m_cache.inc(hit_requests, result="hit")
            self._m_cache.inc(miss_requests, result="miss")
            self._m_batch_seconds.observe(end - start)
            total = max(len(requests), 1)
            scan_share = (scan_end - start) / total
            if hit_requests:
                self._m_query_seconds.observe(scan_share,
                                              count=hit_requests,
                                              cache="hit")
            if miss_requests:
                forward_share = (end - scan_end) / miss_requests
                self._m_query_seconds.observe(scan_share + forward_share,
                                              count=miss_requests,
                                              cache="miss")
            span.set(hits=hit_requests, misses=miss_requests)
        return results

    def _run(self, kind: str, node_ids) -> List[np.ndarray]:
        """Answer one call as ONE batch — a forward already computes the
        full matrix, so splitting a direct call would only repeat it."""
        ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
        with self._lock:
            self._validate_ids(kind, ids)
            results = self._process([(kind, int(node_id)) for node_id in ids])
            return [results[(kind, int(node_id))] for node_id in ids]

    @staticmethod
    def _format(kind: str, node_id: int, row: np.ndarray,
                label_names: List[str]) -> Dict:
        """The one place a result row becomes a JSON-able dict."""
        if kind == "predict":
            index = int(np.argmax(row))
            return {"node_id": node_id, "prediction": index,
                    "label": label_names[index]}
        return {"node_id": node_id, "embedding": row.tolist()}

    def predict(self, node_ids) -> np.ndarray:
        """Class index per target-type *local* node id (one batch)."""
        rows = self._run("predict", node_ids)
        return np.array([int(np.argmax(row)) for row in rows], dtype=np.int64)

    def predict_batch(self, node_ids) -> List[Dict]:
        """One batch of predictions as JSON-able dicts (the HTTP path)."""
        rows = self._run("predict", node_ids)
        ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
        return [self._format("predict", int(node_id), row,
                             self.bundle.label_names)
                for node_id, row in zip(ids, rows)]

    def predict_logits(self, node_ids) -> np.ndarray:
        """Raw classifier logits, one row per queried node."""
        return np.stack(self._run("predict", node_ids))

    def predict_labels(self, node_ids) -> List[str]:
        """Human-readable label (bundle label map) per queried node."""
        return [self.bundle.label_names[index]
                for index in self.predict(node_ids)]

    def embed(self, node_ids) -> np.ndarray:
        """Node embeddings by *global* id (base id space; full-graph models)."""
        return np.stack(self._run("embed", node_ids))

    # ------------------------------------------------------------------
    # Explicit queue API — for callers that trickle queries in and want
    # them coalesced into one forward (the HTTP server answers each
    # request synchronously via predict_batch instead)
    # ------------------------------------------------------------------
    def enqueue(self, node_id: int, kind: str = "predict") -> int:
        """Queue one query; returns the pending count.  Auto-flushes a
        full batch when ``config.auto_flush`` is set."""
        if kind not in ("predict", "embed"):
            raise ValueError(f"unknown query kind {kind!r}")
        with self._lock, self.tracer.span("enqueue", kind=kind):
            self._validate_ids(kind, np.array([node_id], dtype=np.int64))
            self._pending.append((kind, int(node_id)))
            self._m_pending.set(len(self._pending))
            if (self.config.auto_flush
                    and len(self._pending) >= self.config.max_batch_size):
                self.flush()
            return len(self._pending)

    def flush(self) -> List[Dict]:
        """Answer every pending query in one micro-batch; returns results
        in enqueue order as JSON-able dicts."""
        with self._lock:
            pending, self._pending = self._pending, []
            self._m_pending.set(0)
            if not pending:
                return []
            with self.tracer.span("flush", pending=len(pending)):
                results = self._process(pending)
            return [self._format(kind, node_id, results[(kind, node_id)],
                                 self.bundle.label_names)
                    for kind, node_id in pending]

    # ------------------------------------------------------------------
    # Online onboarding
    # ------------------------------------------------------------------
    def onboard(self, node_type: str, edges,
                raw_features=None) -> OnboardResult:
        """Add a new node online and return its (frozen) serving result.

        With a WAL attached (:meth:`attach_wal`), the request is
        durably logged *after* the in-memory onboard succeeds and
        *before* this method returns — so every result a caller ever
        saw is replayable, and a crashed half-onboard (which the
        manager rolled back anyway) never reaches the log.
        """
        with self._lock:
            if self._onboarding is None:
                self._onboarding = OnboardingManager(
                    self.bundle, self.dataset, self._h0,
                    fanout=self.config.onboard_fanout,
                    registry=self.metrics, tracer=self.tracer)
            fault_site("onboard.apply", key=node_type)
            result = self._onboarding.onboard(node_type, edges,
                                              raw_features=raw_features)
            if self._wal is not None and self._wal.writable:
                self._wal.append(node_type, edges, raw_features=raw_features)
            return result

    def install_overlay(self, result: OnboardResult) -> OnboardResult:
        """Adopt a peer's onboard result into this engine's overlay.

        The tier's single-writer protocol: one writer process computes
        an onboard (:meth:`onboard`, WAL first), then broadcasts the
        result as a compact delta (:meth:`OnboardResult.to_wire`); every
        reader installs it here.  Installation is pure bookkeeping — no
        graph mutation, no forward pass — so readers never block reads
        on writes, and the installed node serves the *writer's* exact
        logits.  Idempotent: re-installing the same node overwrites the
        same entry.
        """
        with self._lock:
            self._installed[(result.node_type, result.local_id)] = result
            return result

    def attach_wal(self, wal, replay: bool = True) -> int:
        """Attach an onboarding WAL (path or :class:`OnboardWAL`).

        Replays existing records through the normal onboarding path
        first (rebuilding the overlay a crash dropped), then opens the
        log for appending.  Returns the number of records replayed.
        Replay runs with the WAL closed, so replayed onboards are not
        re-appended.
        """
        if not isinstance(wal, OnboardWAL):
            wal = OnboardWAL(wal)
        with self._lock:
            if self._wal is not None:
                raise ValueError("engine already has a WAL attached")
            replayed = 0
            if replay:
                for index, record in enumerate(wal.records()):
                    try:
                        self.onboard(record["node_type"],
                                     record.get("edges") or {},
                                     raw_features=record.get("raw_features"))
                    except Exception as error:
                        raise WalReplayError(
                            f"replaying {wal.path} record {index} "
                            f"({record.get('node_type')!r}) failed: "
                            f"{error}") from error
                    replayed += 1
            self._wal = wal.open()
            return replayed

    def close(self) -> None:
        """Release owned resources (currently: the WAL file handle)."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()
                self._wal = None

    @property
    def num_onboarded(self) -> int:
        with self._lock:
            keys = set(self._installed)
            if self._onboarding is not None:
                keys.update(self._onboarding._results)
            return len(keys)

    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        """Serving counters (JSON-able), read from the metrics registry.

        Every pre-telemetry key is preserved bit-compatibly.  On the
        latency block: ``mean_query_ms`` is total micro-batch wall time
        divided by ALL answered queries — cache hits included — so it is
        an *amortized cost per answered query* (the throughput view),
        NOT the latency a cold query experiences.  ``mean_hit_ms`` /
        ``mean_miss_ms`` and the ``p50/p95/p99`` percentiles (from the
        ``engine_query_seconds`` histogram, hits and misses pooled)
        answer the experienced-latency question.
        """
        with self._lock:
            queries = int(self._m_queries.total())
            seconds = self._m_batch_seconds.sum_total()
            hist = self._m_query_seconds
            hit_count = hist.child_count(cache="hit")
            miss_count = hist.child_count(cache="miss")
            return {
                "bundle": {
                    "dataset": self.bundle.dataset.name,
                    "scale": self.bundle.dataset.scale,
                    "model": self.bundle.model_name,
                    "target_type": self.bundle.target_type,
                    "num_target_nodes": self._num_target,
                    "num_nodes": self._num_nodes,
                },
                "uptime_seconds": time.perf_counter() - self._started,
                "queries": queries,
                "batches": int(self._m_batches.total()),
                "forward_passes": int(self._m_forwards.total()),
                "pending": len(self._pending),
                "onboarded": self.num_onboarded,
                "cache": {
                    "hits": self._cache.hits,
                    "misses": self._cache.misses,
                    "size": len(self._cache),
                    "capacity": self._cache.maxsize,
                },
                "latency": {
                    "total_batch_seconds": seconds,
                    "mean_query_ms": (1e3 * seconds / queries
                                      if queries else 0.0),
                    "queries_per_second": (queries / seconds
                                           if seconds > 0 else 0.0),
                    "mean_hit_ms": (1e3 * hist.child_sum(cache="hit")
                                    / hit_count if hit_count else 0.0),
                    "mean_miss_ms": (1e3 * hist.child_sum(cache="miss")
                                     / miss_count if miss_count else 0.0),
                    "p50_ms": 1e3 * hist.aggregate_percentile(0.50),
                    "p95_ms": 1e3 * hist.aggregate_percentile(0.95),
                    "p99_ms": 1e3 * hist.aggregate_percentile(0.99),
                },
            }


__all__ = ["EngineConfig", "InferenceEngine"]
