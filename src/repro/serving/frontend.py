"""Async coalescing HTTP front for the preforked serving tier.

One asyncio accept loop owns every client connection *and* every worker
pipe, so there is no cross-thread synchronization anywhere on the hot
path.  The flow:

* a ``POST /predict`` is admitted (or shed — bounded queue, 503 +
  ``Retry-After``), stamped with its deadline, and parked in a pending
  deque;
* one **dispatch task per worker** drains up to ``max_batch`` queries
  from the deque into a single worker round-trip — concurrent in-flight
  requests coalesce into engine micro-batches exactly like the engine's
  own queue, but across processes.  While a worker computes, newly
  arriving requests pile up for the *next* batch instead of waiting in
  per-request lockstep;
* expired entries are answered **504** at dispatch time (their queue
  wait consumed the budget; the work never starts), so queue growth is
  bounded twice — by count at the door and by time at dispatch;
* a worker that dies mid-batch (EOF on its pipe) gets its entries
  transparently requeued for a sibling while the tier forks a
  replacement — callers see a retried answer, not an error;
* ``/onboard`` serializes through the single writer (worker 0), then
  broadcasts the overlay delta to the readers before the 200 reply —
  every worker serves the new node once the client hears about it
  (read-your-writes through any worker);
* ``/metrics`` pulls per-worker registry snapshots over the pipes and
  merges them with the front's own registry via
  :func:`~repro.telemetry.merge_snapshots` — one scrape, N+1 shards;
* SIGTERM (foreground mode) flips ``/readyz`` to 503, drains the
  pending queue bounded by ``drain_timeout_s``, then shuts workers
  down — the PR 8 drain discipline, moved in front of the fork pool.

HTTP parsing is a minimal hand-rolled HTTP/1.1 (request line, headers,
``Content-Length`` bodies, keep-alive) — the stdlib's blocking server
cannot sit on an asyncio loop, and the tier's protocol needs nothing
more.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from ..faults import fault_site
from ..telemetry import (
    CONTENT_TYPE as METRICS_CONTENT_TYPE,
    MetricsRegistry,
    get_registry,
    merge_snapshots,
    render_prometheus,
)
from .admission import Deadline, ShedError

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

_KNOWN_PATHS = ("/healthz", "/readyz", "/stats", "/metrics",
                "/predict", "/onboard")


class WorkerDied(RuntimeError):
    """The worker behind a pipe is gone (EOF, reset, hang, desync)."""

    def __init__(self, handle, where: str = "") -> None:
        super().__init__(
            f"tier worker {handle.index} (pid {handle.pid}) died"
            + (f" during {where}" if where else ""))
        self.handle = handle


@dataclass
class FrontendConfig:
    """Knobs of the async front."""

    #: per-request budget; None disables deadlines (benchmarks only)
    deadline_ms: Optional[float] = 2000.0
    #: pending predict QUERIES (not requests) admitted before shedding
    max_queue: int = 256
    #: queries per worker micro-batch (one pipe round-trip)
    max_batch: int = 64
    #: request body cap (413 beyond it)
    max_body_bytes: int = 1 << 20
    #: one worker round-trip's patience before declaring it dead
    call_timeout_s: float = 120.0
    #: graceful-drain budget at shutdown
    drain_timeout_s: float = 5.0
    #: asyncio stream limit for worker pipes (snapshots can be chunky)
    stream_limit: int = 1 << 25

    def __post_init__(self) -> None:
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive when set")
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")
        if self.max_body_bytes <= 0:
            raise ValueError("max_body_bytes must be positive")


class _Entry:
    """One admitted /predict request parked for dispatch."""

    __slots__ = ("ids", "future", "deadline")

    def __init__(self, ids: List[int], future: asyncio.Future,
                 deadline: Optional[Deadline]) -> None:
        self.ids = ids
        self.future = future
        self.deadline = deadline


class TierFrontend:
    """The asyncio edge of a :class:`~repro.serving.ServingTier`."""

    def __init__(self, tier, host: str = "127.0.0.1", port: int = 0,
                 config: Optional[FrontendConfig] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.tier = tier
        self.config = config or FrontendConfig()
        self._host = host
        self._port = port
        self.registry = registry or MetricsRegistry()
        m = self.registry
        self._m_requests = m.counter(
            "http_requests_total", "HTTP requests served",
            labels=("method", "path", "status"))
        self._m_seconds = m.histogram(
            "http_request_seconds", "HTTP request wall time",
            labels=("path",))
        self._m_shed = m.counter(
            "http_requests_shed_total", "Requests shed by admission",
            labels=("reason",))
        self._m_deadline = m.counter(
            "http_deadline_exceeded_total", "Requests past deadline")
        self._m_errors = m.counter(
            "http_internal_errors_total", "Handler crashes (HTTP 500)")
        self._m_batches = m.counter(
            "tier_batches_total", "Micro-batches dispatched to workers")
        self._m_batch_queries = m.histogram(
            "tier_batch_queries", "Queries per dispatched micro-batch",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0))
        self._m_queue_depth = m.gauge(
            "tier_queue_depth", "Pending queries at enqueue",
            aggregation="max")
        self._m_deaths = m.counter(
            "tier_worker_deaths_total", "Workers lost mid-service")
        self._m_respawns = m.counter(
            "tier_worker_respawns_total", "Replacement workers forked")
        self._m_requeued = m.counter(
            "tier_requeued_queries_total",
            "Queries transparently requeued after a worker death")
        self._m_broadcasts = m.counter(
            "tier_overlay_broadcasts_total",
            "Overlay deltas delivered to readers")
        self._m_workers = m.gauge(
            "tier_workers_alive", "Live workers", aggregation="last")

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._handles: List = []
        self._dispatch_tasks: List[asyncio.Task] = []
        self._respawn_locks: Dict[int, asyncio.Lock] = {}
        self._pending: Deque[_Entry] = deque()
        self._queued_queries = 0
        self._wake: Optional[asyncio.Event] = None
        self._writer_lock: Optional[asyncio.Lock] = None
        self._draining = False
        self._closing = False
        self._shut = False
        self._shutdown_done: Optional[asyncio.Event] = None
        self._respawns_used = 0
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[Tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def _startup(self) -> None:
        self._wake = asyncio.Event()
        self._writer_lock = asyncio.Lock()
        for index in range(self.tier.config.workers):
            handle = await self._boot_worker(index)
            self._handles.append(handle)
            self._respawn_locks[index] = asyncio.Lock()
        self._m_workers.set(float(len(self._handles)))
        self._server = await asyncio.start_server(
            self._handle_client, self._host, self._port)
        self._address = self._server.sockets[0].getsockname()[:2]
        self._dispatch_tasks = [
            asyncio.ensure_future(self._dispatch_loop(slot))
            for slot in range(len(self._handles))]

    async def _boot_worker(self, index: int, generation: int = 0):
        """Fork + connect + await the ready handshake."""
        handle = self.tier.spawn_worker(index, generation=generation)
        sock = handle.sock
        handle.sock = None  # asyncio owns it now
        try:
            reader, writer = await asyncio.open_connection(
                sock=sock, limit=self.config.stream_limit)
        except OSError as error:
            self.tier.reap(handle)
            raise WorkerDied(handle, "connect") from error
        handle.reader, handle.writer = reader, writer
        handle.lock = asyncio.Lock()
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.config.call_timeout_s)
            ready = json.loads(line) if line else {}
        except (asyncio.TimeoutError, OSError,
                json.JSONDecodeError) as error:
            self._close_pipe(handle)
            self.tier.reap(handle)
            raise WorkerDied(handle, "boot") from error
        if not ready.get("ok") or ready.get("op") != "ready":
            self._close_pipe(handle)
            self.tier.reap(handle)
            raise WorkerDied(handle, "boot handshake")
        return handle

    def start_background(self) -> "TierFrontend":
        """Run the loop on a daemon thread; returns once serving."""
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="tier-frontend")
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            error, self._startup_error = self._startup_error, None
            self._thread.join(timeout=5)
            self._thread = None
            raise error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._startup())
        except BaseException as error:  # surface to start_background
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            self._close_loop(loop)

    def _finished_shutdown(self) -> bool:
        return (self._shut and self._shutdown_done is not None
                and self._shutdown_done.is_set())

    def _close_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        if not self._finished_shutdown():
            loop.run_until_complete(self._shutdown_async())
        # duplicate _terminate tasks (double SIGTERM) may still be
        # parked on the done-event; retire them before closing
        leftovers = [task for task in asyncio.all_tasks(loop)
                     if not task.done()]
        for task in leftovers:
            task.cancel()
        if leftovers:
            loop.run_until_complete(
                asyncio.gather(*leftovers, return_exceptions=True))
        loop.close()

    def serve_forever(self) -> None:
        """Run the loop in the calling thread (the CLI path)."""
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        loop.run_until_complete(self._startup())
        self._started.set()

        def _drain() -> None:
            asyncio.ensure_future(self._terminate())

        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(signal.SIGTERM, _drain)
            loop.add_signal_handler(signal.SIGINT, _drain)
        try:
            loop.run_forever()
        finally:
            self._close_loop(loop)

    async def _terminate(self) -> None:
        await self._shutdown_async()
        asyncio.get_event_loop().stop()

    def shutdown(self, timeout_s: float = 30.0) -> None:
        """Thread-safe full stop (drain → workers down → loop stopped)."""
        loop, thread = self._loop, self._thread
        if loop is None or not loop.is_running():
            return
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown_async(), loop)
        with contextlib.suppress(Exception):
            future.result(timeout=timeout_s)
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=timeout_s)

    async def _shutdown_async(self) -> None:
        if self._shut:
            # a concurrent caller (double SIGTERM, shutdown() racing the
            # signal handler) must WAIT for the first pass to finish,
            # not return early and stop the loop under it
            if self._shutdown_done is not None:
                await self._shutdown_done.wait()
            return
        self._shut = True
        self._shutdown_done = asyncio.Event()
        try:
            self._draining = True  # /readyz flips 503; new work is shed
            drain_until = time.monotonic() + self.config.drain_timeout_s
            while self._pending and time.monotonic() < drain_until:
                await asyncio.sleep(0.02)
            while self._pending:  # past the budget: shed what is left
                entry = self._pending.popleft()
                self._resolve(entry, "shed", "draining")
            self._closing = True
            if self._wake is not None:
                self._wake.set()
            if self._dispatch_tasks:
                done = asyncio.gather(*self._dispatch_tasks,
                                      return_exceptions=True)
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(done, timeout=5.0)
                for task in self._dispatch_tasks:
                    task.cancel()
            for handle in list(self._handles):
                if handle is None or handle.dead:
                    continue
                with contextlib.suppress(Exception):
                    await asyncio.wait_for(
                        self._call(handle, {"op": "shutdown"}), timeout=2.0)
                self._close_pipe(handle)
                self.tier.reap(handle)
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            self._m_workers.set(0.0)
        finally:
            self._shutdown_done.set()

    # ------------------------------------------------------------------
    # Worker pipe RPC
    # ------------------------------------------------------------------
    @staticmethod
    def _close_pipe(handle) -> None:
        if handle.writer is not None:
            with contextlib.suppress(Exception):
                handle.writer.close()

    async def _call(self, handle, message: Dict) -> Dict:
        """One request/reply on a worker pipe (one in flight per worker)."""
        if handle.dead or handle.lock is None:
            raise WorkerDied(handle, message.get("op", "?"))
        async with handle.lock:
            if handle.dead:
                raise WorkerDied(handle, message.get("op", "?"))
            handle.seq += 1
            message = dict(message, id=handle.seq)
            try:
                handle.writer.write(
                    json.dumps(message, separators=(",", ":")).encode()
                    + b"\n")
                await handle.writer.drain()
                line = await asyncio.wait_for(
                    handle.reader.readline(),
                    timeout=self.config.call_timeout_s)
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.TimeoutError, asyncio.IncompleteReadError
                    ) as error:
                raise WorkerDied(handle, message["op"]) from error
            if not line:
                raise WorkerDied(handle, message["op"])
            try:
                reply = json.loads(line)
            except json.JSONDecodeError as error:
                raise WorkerDied(handle, message["op"]) from error
            if reply.get("id") != message["id"]:  # protocol desync
                raise WorkerDied(handle, message["op"])
            return reply

    async def _on_worker_death(self, slot: int, handle, where: str) -> None:
        """Account a death; fork a replacement unless disabled/exhausted."""
        lock = self._respawn_locks.get(slot)
        if lock is None:
            return
        async with lock:
            if self._handles[slot] is not handle:
                return  # a racing path already replaced it
            handle.dead = True
            self._m_deaths.inc()
            self._close_pipe(handle)
            self.tier.reap(handle)
            self._handles[slot] = None
            self._m_workers.set(float(self._alive_count()))
            if (self._closing or not self.tier.config.respawn):
                return
            generation = handle.generation
            while self._respawns_used < self.tier.config.max_respawns:
                self._respawns_used += 1
                generation += 1
                try:
                    replacement = await self._boot_worker(
                        slot, generation=generation)
                except Exception:
                    continue  # e.g. an armed fork/boot fault; try again
                self._handles[slot] = replacement
                self._m_respawns.inc()
                self._m_workers.set(float(self._alive_count()))
                return

    def _alive_count(self) -> int:
        return sum(1 for handle in self._handles
                   if handle is not None and not handle.dead)

    # ------------------------------------------------------------------
    # Coalescing dispatch
    # ------------------------------------------------------------------
    def _resolve(self, entry: _Entry, outcome: str, detail) -> None:
        if not entry.future.done():
            entry.future.set_result((outcome, detail))

    def _expired(self, entry: _Entry) -> bool:
        if entry.deadline is not None and entry.deadline.expired():
            self._m_deadline.inc()
            self._resolve(entry, "deadline",
                          "deadline exceeded while queued")
            return True
        return False

    def _enqueue(self, entry: _Entry) -> None:
        if self._draining:
            raise ShedError("draining")
        if self._queued_queries + len(entry.ids) > self.config.max_queue:
            raise ShedError("queue-full")
        self._pending.append(entry)
        self._queued_queries += len(entry.ids)
        self._m_queue_depth.set(float(self._queued_queries))
        self._wake.set()

    def _requeue(self, entries: List[_Entry]) -> None:
        """Put a dead worker's batch back at the FRONT of the queue —
        admission was already paid, so the bound does not re-apply."""
        for entry in reversed(entries):
            if entry.future.done():
                continue
            self._pending.appendleft(entry)
            self._queued_queries += len(entry.ids)
            self._m_requeued.inc(len(entry.ids))
        self._wake.set()

    async def _take_batch(self) -> Optional[List[_Entry]]:
        """Drain up to ``max_batch`` queries; None when closing + empty."""
        while True:
            batch: List[_Entry] = []
            taken = 0
            while self._pending:
                entry = self._pending[0]
                if batch and taken + len(entry.ids) > self.config.max_batch:
                    break
                self._pending.popleft()
                self._queued_queries -= len(entry.ids)
                if self._expired(entry):
                    continue
                batch.append(entry)
                taken += len(entry.ids)
                if taken >= self.config.max_batch:
                    break
            if batch:
                return batch
            if self._closing:
                return None
            self._wake.clear()
            await self._wake.wait()

    async def _dispatch_loop(self, slot: int) -> None:
        """One per worker: feed it micro-batches until shutdown."""
        while True:
            batch = await self._take_batch()
            if batch is None:
                return
            handle = self._handles[slot]
            if handle is None or handle.dead:
                self._requeue(batch)
                return  # the slot is gone for good; siblings take over
            try:
                reply = await self._call(
                    handle,
                    {"op": "predict",
                     "entries": [entry.ids for entry in batch]})
            except WorkerDied:
                await self._on_worker_death(slot, handle, "predict")
                self._requeue(batch)
                if self._handles[slot] is None:
                    return
                continue
            self._m_batches.inc()
            self._m_batch_queries.observe(
                float(sum(len(entry.ids) for entry in batch)))
            if not reply.get("ok"):
                detail = reply.get("error", "worker error")
                outcome = ("bad-request" if reply.get("kind") == "value"
                           else "internal")
                for entry in batch:
                    self._resolve(entry, outcome, detail)
                continue
            for entry, result in zip(batch, reply["results"]):
                if result.get("ok"):
                    self._resolve(entry, "ok", result["rows"])
                else:
                    self._resolve(entry, "bad-request",
                                  result.get("error", "bad request"))

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    async def _predict(self, payload: Dict) -> Tuple[int, Dict]:
        node_ids = payload.get("node_ids")
        if node_ids is None and "node_id" in payload:
            node_ids = [payload["node_id"]]
        if not isinstance(node_ids, list) or not node_ids:
            return 400, {"error": "missing 'node_ids'"}
        try:
            ids = [int(node_id) for node_id in node_ids]
        except (TypeError, ValueError):
            return 400, {"error": "'node_ids' must be integers"}
        deadline = (None if self.config.deadline_ms is None
                    else Deadline.after_ms(self.config.deadline_ms))
        entry = _Entry(ids, asyncio.get_event_loop().create_future(),
                       deadline)
        try:
            self._enqueue(entry)
        except ShedError as error:
            self._m_shed.inc(reason=error.reason)
            return 503, {"error": str(error), "reason": error.reason,
                         "retry_after_s": error.retry_after_s}
        outcome, detail = await entry.future
        if outcome == "ok":
            return 200, {"node_ids": [row["node_id"] for row in detail],
                         "predictions": [row["prediction"]
                                         for row in detail],
                         "labels": [row["label"] for row in detail]}
        if outcome == "bad-request":
            return 400, {"error": detail}
        if outcome == "deadline":
            return 504, {"error": detail}
        if outcome == "shed":
            self._m_shed.inc(reason=detail)
            return 503, {"error": f"request shed: {detail}",
                         "reason": detail, "retry_after_s": 1.0}
        self._m_errors.inc()
        return 500, {"error": detail}

    async def _onboard(self, payload: Dict) -> Tuple[int, Dict]:
        if self._draining:
            self._m_shed.inc(reason="draining")
            return 503, {"error": "request shed: draining",
                         "reason": "draining", "retry_after_s": 1.0}
        node_type = payload.get("node_type")
        if not node_type:
            return 400, {"error": "missing 'node_type'"}
        request = {"node_type": node_type,
                   "edges": payload.get("edges") or {},
                   "raw_features": payload.get("raw_features")}
        async with self._writer_lock:
            writer = self._handles[0]
            if writer is None or writer.dead:
                self._m_shed.inc(reason="writer-down")
                return 503, {"error": "onboarding writer unavailable",
                             "reason": "writer-down", "retry_after_s": 1.0}
            try:
                reply = await self._call(writer,
                                         {"op": "onboard", **request})
            except WorkerDied:
                await self._on_worker_death(0, writer, "onboard")
                self._m_shed.inc(reason="writer-respawn")
                return 503, {"error": "writer died mid-onboard; the "
                                      "respawned writer recovered from "
                                      "the WAL — retry",
                             "reason": "writer-respawn",
                             "retry_after_s": 1.0}
            if not reply.get("ok"):
                if reply.get("kind") == "value":
                    return 400, {"error": reply.get("error")}
                self._m_errors.inc()
                return 500, {"error": reply.get("error")}
            # log BEFORE broadcasting: a reader respawned mid-broadcast
            # inherits the delta at fork time instead of missing it
            self.tier.record_onboard(request, reply["delta"])
            await self._broadcast(reply["delta"])
            return 200, reply["result"]

    async def _broadcast(self, delta: Dict) -> None:
        """Install the writer's delta on every reader; a reader that
        fails the broadcast is respawned (and catches up at fork)."""
        for slot in range(1, len(self._handles)):
            handle = self._handles[slot]
            if handle is None or handle.dead:
                continue
            try:
                fault_site("tier.broadcast", key=str(slot))
                reply = await self._call(handle,
                                         {"op": "overlay", "delta": delta})
                if not reply.get("ok"):
                    raise WorkerDied(handle, "overlay")
            except WorkerDied:
                await self._on_worker_death(slot, handle, "broadcast")
            except Exception:  # injected broadcast fault
                await self._on_worker_death(slot, handle, "broadcast")
            else:
                self._m_broadcasts.inc()

    async def _stats(self) -> Tuple[int, Dict]:
        workers = []
        for slot in range(len(self._handles)):
            handle = self._handles[slot]
            if handle is None or handle.dead:
                workers.append({"error": "worker down", "slot": slot})
                continue
            try:
                reply = await self._call(handle, {"op": "stats"})
                workers.append(reply.get("stats")
                               if reply.get("ok")
                               else {"error": reply.get("error")})
            except WorkerDied:
                await self._on_worker_death(slot, handle, "stats")
                workers.append({"error": "worker died", "slot": slot})
        tier = self.tier.stats()
        tier.update({
            "alive": self._alive_count(),
            "deaths": int(self._m_deaths.total()),
            "respawns": int(self._m_respawns.total()),
            "draining": self._draining,
        })
        return 200, {
            "tier": tier,
            "frontend": {
                "queued_queries": self._queued_queries,
                "batches": int(self._m_batches.total()),
                "shed": int(self._m_shed.total()),
                "deadline_exceeded": int(self._m_deadline.total()),
                "requeued": int(self._m_requeued.total()),
                "broadcasts": int(self._m_broadcasts.total()),
            },
            "workers": workers,
        }

    async def _metrics(self) -> Tuple[int, bytes, str]:
        snapshots = [self.registry.snapshot(), get_registry().snapshot()]
        for slot in range(len(self._handles)):
            handle = self._handles[slot]
            if handle is None or handle.dead:
                continue
            try:
                reply = await self._call(handle, {"op": "snapshot"})
                if reply.get("ok"):
                    snapshots.append(reply["snapshot"])
            except WorkerDied:
                await self._on_worker_death(slot, handle, "snapshot")
        text = render_prometheus(merge_snapshots(snapshots))
        return 200, text.encode(), METRICS_CONTENT_TYPE

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _route(self, method: str, path: str,
                     body: bytes) -> Tuple[int, bytes, str, Dict[str, str]]:
        extra: Dict[str, str] = {}
        if path == "/metrics" and method == "GET":
            status, payload, content_type = await self._metrics()
            return status, payload, content_type, extra
        if method == "GET":
            if path == "/healthz":
                status, reply = 200, {"status": "ok",
                                      "workers": self._alive_count()}
            elif path == "/readyz":
                ready = not self._draining and self._alive_count() > 0
                status = 200 if ready else 503
                reply = {"status": "ok" if ready else "draining"}
            elif path == "/stats":
                status, reply = await self._stats()
            elif path in _KNOWN_PATHS:
                status, reply = 405, {"error": f"POST {path}"}
            else:
                status, reply = 404, {"error": f"unknown path {path}"}
        elif method == "POST":
            if path not in ("/predict", "/onboard"):
                status, reply = ((405, {"error": f"GET {path}"})
                                 if path in _KNOWN_PATHS
                                 else (404, {"error": f"unknown path "
                                                      f"{path}"}))
            else:
                try:
                    payload = json.loads(body.decode() or "{}")
                    if not isinstance(payload, dict):
                        raise ValueError("body must be a JSON object")
                except (ValueError, UnicodeDecodeError) as error:
                    payload = None
                    status, reply = 400, {"error": f"bad JSON body: "
                                                   f"{error}"}
                if payload is not None:
                    if path == "/predict":
                        status, reply = await self._predict(payload)
                    else:
                        status, reply = await self._onboard(payload)
        else:
            status, reply = 405, {"error": f"method {method} not allowed"}
        if status == 503 and isinstance(reply, dict):
            extra["Retry-After"] = str(
                max(1, int(reply.get("retry_after_s", 1.0))))
        return status, json.dumps(reply).encode(), "application/json", extra

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                if request_line in (b"\r\n", b"\n"):
                    continue
                try:
                    method, target, version = (
                        request_line.decode("latin-1").split())
                except ValueError:
                    break  # unparseable request line; hang up
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or 0)
                except ValueError:
                    length = 0
                path = target.split("?", 1)[0]
                if length > self.config.max_body_bytes:
                    status, body, content_type, extra = (
                        413, json.dumps(
                            {"error": "request body too large"}).encode(),
                        "application/json", {"Connection": "close"})
                else:
                    payload = (await reader.readexactly(length)
                               if length else b"")
                    started = time.perf_counter()
                    try:
                        status, body, content_type, extra = (
                            await self._route(method, path, payload))
                    except Exception as error:
                        self._m_errors.inc()
                        status, content_type, extra = (
                            500, "application/json", {})
                        body = json.dumps(
                            {"error": f"{type(error).__name__}: "
                                      f"{error}"}).encode()
                    label = path if path in _KNOWN_PATHS else "other"
                    self._m_requests.inc(method=method, path=label,
                                         status=str(status))
                    self._m_seconds.observe(
                        time.perf_counter() - started, path=label)
                keep_alive = (version == "HTTP/1.1"
                              and headers.get("connection", "").lower()
                              != "close"
                              and extra.get("Connection") != "close"
                              and status != 413)
                head = [f"HTTP/1.1 {status} "
                        f"{_REASONS.get(status, 'Unknown')}",
                        f"Content-Type: {content_type}",
                        f"Content-Length: {len(body)}",
                        "Connection: "
                        + ("keep-alive" if keep_alive else "close")]
                head += [f"{name}: {value}" for name, value in extra.items()
                         if name != "Connection"]
                writer.write(("\r\n".join(head) + "\r\n\r\n").encode()
                             + body)
                await writer.drain()
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError, asyncio.LimitOverrunError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise RuntimeError("frontend not started")
        return self._address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"


__all__ = ["FrontendConfig", "TierFrontend", "WorkerDied"]
