"""Write-ahead log for online onboarding — crash-safe overlay state.

Onboarded nodes live only in the engine's in-memory overlay; a crash
between onboarding a node and the next offline retrain would silently
un-onboard it (and its HTTP 200 reply already promised otherwise).
The WAL closes that hole:

* after each onboard **succeeds in memory** and **before the HTTP reply
  is sent**, the request (node type, edges, raw features) is appended
  to an fsync'd JSONL log (the shared :class:`repro.io.JsonlAppender`
  discipline — torn tails are sealed, every line durable on return);
* on engine start, :meth:`InferenceEngine.attach_wal` replays the log
  in order through the normal onboarding path, rebuilding the exact
  overlay — onboarding is deterministic (sampler seeded by global id),
  so replay reproduces the original predictions.

The WAL records *requests*, not results: results are derivable, and a
request-level log stays valid across bundle-compatible code changes.
A record that fails to replay (e.g. the bundle on disk changed under
the log) raises :class:`WalReplayError` naming the offending line —
serving with a silently partial overlay would break the 200-reply
promise the log exists to keep.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from ..io import JsonlAppender, read_jsonl

#: record schema version, bumped on incompatible layout changes
WAL_FORMAT_VERSION = 1


class WalReplayError(RuntimeError):
    """A WAL record could not be replayed against the loaded bundle."""


def _normalize_edges(edges) -> Dict[str, List[int]]:
    """Canonical JSON form: ``"src:name:dst"`` → sorted-order id list."""
    normalized: Dict[str, List[int]] = {}
    for key, value in (edges or {}).items():
        if not isinstance(key, str):
            key = ":".join(str(part) for part in key)
        ids = np.asarray(value, dtype=np.int64).ravel()
        normalized[key] = [int(node_id) for node_id in ids]
    return normalized


class OnboardWAL:
    """Append-only onboarding log over one JSONL file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._appender: Optional[JsonlAppender] = None

    # -- reading --------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Parse the replayable records (missing file → empty list).

        Tolerant of a torn tail (the in-flight record of a crash died
        *before* its HTTP reply, so dropping it keeps the promise) but
        strict about versioned records it cannot understand.
        """
        entries = []
        for payload in read_jsonl(self.path):
            if payload.get("kind") != "onboard":
                continue
            version = payload.get("format_version", WAL_FORMAT_VERSION)
            if version != WAL_FORMAT_VERSION:
                raise WalReplayError(
                    f"{self.path} has WAL format {version!r}; "
                    f"this build reads {WAL_FORMAT_VERSION}")
            entries.append(payload)
        return entries

    # -- writing --------------------------------------------------------
    def open(self) -> "OnboardWAL":
        """Open for appending (existing records kept, torn tail sealed)."""
        if self._appender is None:
            self._appender = JsonlAppender(self.path, append=True)
        return self

    @property
    def writable(self) -> bool:
        return self._appender is not None

    def append(self, node_type: str, edges,
               raw_features=None) -> None:
        """Durably log one successful onboard request."""
        if self._appender is None:
            raise ValueError(f"WAL {self.path} is not open for writing")
        record: Dict[str, Any] = {
            "kind": "onboard",
            "format_version": WAL_FORMAT_VERSION,
            "node_type": node_type,
            "edges": _normalize_edges(edges),
        }
        if raw_features is not None:
            raw = np.asarray(raw_features, dtype=np.float64).ravel()
            record["raw_features"] = [float(value) for value in raw]
        self._appender.write(record)

    def close(self) -> None:
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def __enter__(self) -> "OnboardWAL":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["OnboardWAL", "WAL_FORMAT_VERSION", "WalReplayError"]
