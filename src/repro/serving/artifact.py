"""Trained-model artifacts: the versioned :class:`ModelBundle`.

A finished AutoAC run produces three expensive things — the searched
completion assignment, the completed V⁻ attributes, and the retrained
backbone weights.  ``ModelBundle`` freezes all of them (plus the dataset
spec and label map needed to reconstruct the serving context) into one
``.npz`` archive with an embedded JSON manifest, built on the same
primitives as :mod:`repro.core.serialize` and carrying the same
``format_version`` discipline.  Loading a bundle in a fresh process and
instantiating it reproduces the in-process retrained model *exactly* —
the round-trip guarantee the serving engine relies on.

Durability (docs/ROBUSTNESS.md): :meth:`ModelBundle.save` writes through
:func:`repro.io.atomic_write_bytes` — tmp + fsync + rename — so a crash
mid-save can never tear the artifact at its published path, and the
archive carries a per-array SHA-256 checksum table.  :meth:`ModelBundle.
load` verifies every checksum and raises :class:`BundleIntegrityError`
on any mismatch, truncation, or unreadable archive: a torn or bit-rotted
bundle is *rejected*, never trusted.  Pre-checksum bundles still load
(nothing to verify) so existing artifacts stay servable.
"""

from __future__ import annotations

import json
import os
import shutil
import zipfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..completion import FixedAssignmentFeatures, SearchSpace
from ..core.serialize import (
    FORMAT_VERSION,
    PathLike,
    escape_state_key,
    pack_json,
    require_arrays,
    unescape_state_key,
    unpack_json,
)
from ..datasets import HeteroDataset, get_dataset
from ..io import atomic_writer, sha256_hex
from ..models import build_model
from ..tensor import no_grad

#: on-disk layout version of bundle archives (independent of the
#: search-result/state-dict version so the two formats can evolve apart)
BUNDLE_FORMAT_VERSION = FORMAT_VERSION

_MODEL_PREFIX = "model__state__"
_FEATURES_PREFIX = "features__state__"

#: archive entry holding the checksum table; excluded from its own table
_CHECKSUMS_KEY = "checksums_json"

#: layout version of the sidecar ``<bundle>.mmap/`` cache (bump to force
#: a rebuild when the unpacked layout changes)
_MMAP_CACHE_VERSION = 1

#: stamp file inside the mmap cache recording which archive it unpacks
_MMAP_STAMP = "stamp.json"


class BundleIntegrityError(ValueError):
    """A bundle failed load-time verification (torn, truncated, corrupt)."""


def _array_digest(array: np.ndarray) -> str:
    """SHA-256 over dtype, shape, and raw bytes (catches silent reshapes)."""
    contiguous = np.ascontiguousarray(array)
    header = f"{contiguous.dtype.str}|{contiguous.shape}|".encode()
    return sha256_hex(header + contiguous.tobytes())


@dataclass(frozen=True)
class DatasetSpec:
    """Everything needed to regenerate the dataset deterministically."""

    name: str
    scale: str
    seed: int

    def build(self) -> HeteroDataset:
        """Regenerate the dataset (identical arrays for identical specs)."""
        return get_dataset(self.name, scale=self.scale, seed=self.seed)


@dataclass
class ModelBundle:
    """A servable snapshot of one search + retrain run.

    Arrays keep their exact dtypes and values through save/load; the
    manifest keeps everything JSON-able.  ``completed`` holds the
    synthesized V⁻ attributes (rows follow ``dataset.missing_global_ids``)
    — the reusable output that downstream work (VGAE-for-HIN, active
    sampling) consumes without re-running the pipeline.
    """

    dataset: DatasetSpec
    model_name: str
    hidden_dim: int
    out_dim: int
    model_kwargs: Dict
    op_names: List[str]
    target_type: str
    num_classes: int
    label_names: List[str]
    assignment: np.ndarray          # op index per V⁻ node
    cluster_labels: np.ndarray      # cluster id per V⁻ node
    completed: np.ndarray           # (num_missing, hidden) completed attrs
    model_state: Dict[str, np.ndarray]
    features_state: Dict[str, np.ndarray]
    metrics: Dict[str, float] = field(default_factory=dict)
    meta: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def manifest(self) -> Dict:
        """The JSON-able header embedded in the archive."""
        return {
            "format_version": BUNDLE_FORMAT_VERSION,
            "kind": "autoac-model-bundle",
            "dataset": {"name": self.dataset.name, "scale": self.dataset.scale,
                        "seed": self.dataset.seed},
            "model": {"name": self.model_name, "hidden_dim": self.hidden_dim,
                      "out_dim": self.out_dim, "kwargs": self.model_kwargs},
            "op_names": self.op_names,
            "target_type": self.target_type,
            "num_classes": self.num_classes,
            "label_names": self.label_names,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    def save(self, path: PathLike) -> Path:
        """Atomically write the bundle to ``path`` (``.npz``).

        The archive is assembled in memory, checksummed per array, and
        committed with tmp + fsync + rename — the published path always
        holds either the previous complete bundle or this one.
        """
        path = Path(path)
        arrays = {
            "format_version": np.array([BUNDLE_FORMAT_VERSION],
                                       dtype=np.int64),
            "manifest_json": pack_json(self.manifest()),
            "assignment": np.asarray(self.assignment, dtype=np.int64),
            "cluster_labels": np.asarray(self.cluster_labels, dtype=np.int64),
            "completed": np.asarray(self.completed),
        }
        for key, value in self.model_state.items():
            arrays[_MODEL_PREFIX + escape_state_key(key)] = value
        for key, value in self.features_state.items():
            arrays[_FEATURES_PREFIX + escape_state_key(key)] = value
        checksums = {key: _array_digest(np.asarray(value))
                     for key, value in arrays.items()}
        arrays[_CHECKSUMS_KEY] = pack_json({"algo": "sha256",
                                            "arrays": checksums})
        with atomic_writer(path, fault_key=path.name) as buffer:
            np.savez_compressed(buffer, **arrays)
        return path

    @staticmethod
    def _verify(archive, path: Path) -> None:
        """Check every recorded checksum; absent table → legacy, skip."""
        if _CHECKSUMS_KEY not in archive.files:
            return
        table = unpack_json(archive[_CHECKSUMS_KEY])
        recorded: Dict[str, str] = dict(table.get("arrays") or {})
        missing = sorted(set(recorded) - set(archive.files))
        if missing:
            raise BundleIntegrityError(
                f"{path} is torn: checksummed arrays {missing} are absent "
                f"from the archive")
        for key, expected in sorted(recorded.items()):
            actual = _array_digest(np.asarray(archive[key]))
            if actual != expected:
                raise BundleIntegrityError(
                    f"{path} is corrupt: array {key!r} sha256 mismatch "
                    f"(recorded {expected[:12]}…, found {actual[:12]}…); "
                    f"refusing to serve a torn artifact")

    @classmethod
    def load(cls, path: PathLike,
             mmap_mode: Optional[str] = None) -> "ModelBundle":
        """Read a bundle back, verifying integrity.

        ``mmap_mode=None`` (default) loads every array into process
        memory.  ``mmap_mode="r"`` serves the arrays as **read-only
        memory maps**: the compressed archive is unpacked once into a
        sidecar ``<bundle>.npz.mmap/`` directory of raw ``.npy`` files
        (checksum-verified, keyed by the archive's SHA-256 so a
        replaced bundle rebuilds the cache), and every subsequent load
        — in this process or any other on the same host — maps the same
        files, so N loads share one physical copy of the pages instead
        of N full-size allocations.  This is what lets a preforked
        serving tier (:mod:`repro.serving.tier`) keep one copy of the
        model weights + completed attributes across all workers.

        Raises :class:`BundleIntegrityError` for unreadable/torn/corrupt
        archives and plain ``ValueError`` for well-formed archives of the
        wrong kind.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(path)
        if mmap_mode is not None:
            if mmap_mode != "r":
                raise ValueError(
                    f"mmap_mode must be None or 'r' (bundles are served "
                    f"read-only), got {mmap_mode!r}")
            return cls._load_mmap(path)
        try:
            archive_ctx = np.load(path)
        except (zipfile.BadZipFile, OSError, ValueError) as error:
            raise BundleIntegrityError(
                f"{path} is not a readable bundle archive "
                f"(truncated or corrupt?): {error}") from error
        with archive_ctx as archive:
            try:
                # verify checksums BEFORE structural checks: a corrupt
                # archive should report as torn, not merely malformed
                cls._verify(archive, path)
                require_arrays(
                    archive,
                    ["manifest_json", "assignment", "cluster_labels",
                     "completed"],
                    path, kind="model-bundle")
                manifest = unpack_json(archive["manifest_json"])
            except BundleIntegrityError:
                raise
            except (zipfile.BadZipFile, zlib.error, OSError, KeyError,
                    UnicodeDecodeError, json.JSONDecodeError) as error:
                # individual members unreadable → torn mid-archive
                raise BundleIntegrityError(
                    f"{path} has unreadable archive members "
                    f"(truncated or corrupt?): {error}") from error
            if manifest.get("kind") != "autoac-model-bundle":
                raise ValueError(f"{path} is not a model bundle "
                                 f"(kind={manifest.get('kind')!r})")
            model_state, features_state = {}, {}
            for key in archive.files:
                if key.startswith(_MODEL_PREFIX):
                    model_state[unescape_state_key(
                        key[len(_MODEL_PREFIX):])] = archive[key].copy()
                elif key.startswith(_FEATURES_PREFIX):
                    features_state[unescape_state_key(
                        key[len(_FEATURES_PREFIX):])] = archive[key].copy()
            spec = manifest["dataset"]
            model = manifest["model"]
            return cls(
                dataset=DatasetSpec(name=spec["name"], scale=spec["scale"],
                                    seed=int(spec["seed"])),
                model_name=model["name"],
                hidden_dim=int(model["hidden_dim"]),
                out_dim=int(model["out_dim"]),
                model_kwargs=dict(model.get("kwargs") or {}),
                op_names=list(manifest["op_names"]),
                target_type=manifest["target_type"],
                num_classes=int(manifest["num_classes"]),
                label_names=list(manifest["label_names"]),
                assignment=archive["assignment"].copy(),
                cluster_labels=archive["cluster_labels"].copy(),
                completed=archive["completed"].copy(),
                model_state=model_state,
                features_state=features_state,
                metrics=dict(manifest.get("metrics") or {}),
                meta=dict(manifest.get("meta") or {}),
            )

    # ------------------------------------------------------------------
    # mmap-backed loading (zero-copy page sharing across processes)
    # ------------------------------------------------------------------
    @staticmethod
    def _mmap_cache_dir(path: Path) -> Path:
        return path.with_name(path.name + ".mmap")

    @staticmethod
    def _mmap_cache_valid(cache: Path, digest: str) -> bool:
        try:
            meta = json.loads((cache / _MMAP_STAMP).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        return (meta.get("digest") == digest
                and meta.get("cache_version") == _MMAP_CACHE_VERSION)

    @classmethod
    def _build_mmap_cache(cls, path: Path, cache: Path, digest: str) -> None:
        """Unpack the (verified) archive into raw ``.npy`` files.

        The cache is assembled in a sibling tmp directory and published
        with one ``os.replace`` so readers never see a half-built cache;
        a concurrent builder that loses the rename race adopts the
        winner's cache instead of failing.
        """
        bundle = cls.load(path)  # eager + checksum-verified
        tmp = cache.with_name(f"{cache.name}.tmp.{os.getpid()}")
        if tmp.exists():
            shutil.rmtree(tmp)
        arrays_dir = tmp / "arrays"
        arrays_dir.mkdir(parents=True)
        arrays: Dict[str, np.ndarray] = {
            "assignment": bundle.assignment,
            "cluster_labels": bundle.cluster_labels,
            "completed": bundle.completed,
        }
        for key, value in bundle.model_state.items():
            arrays[_MODEL_PREFIX + escape_state_key(key)] = np.asarray(value)
        for key, value in bundle.features_state.items():
            arrays[_FEATURES_PREFIX + escape_state_key(key)] = np.asarray(value)
        for name, value in arrays.items():
            np.save(arrays_dir / f"{name}.npy", np.ascontiguousarray(value))
        (tmp / "manifest.json").write_text(
            json.dumps(bundle.manifest(), indent=2, sort_keys=True) + "\n")
        (tmp / _MMAP_STAMP).write_text(json.dumps(
            {"algo": "sha256", "digest": digest,
             "cache_version": _MMAP_CACHE_VERSION, "source": path.name},
            indent=2, sort_keys=True) + "\n")
        if cache.exists():  # stale cache for a replaced archive
            shutil.rmtree(cache)
        try:
            os.replace(tmp, cache)
        except OSError:
            if cls._mmap_cache_valid(cache, digest):
                shutil.rmtree(tmp, ignore_errors=True)  # lost the race
            else:
                raise

    @classmethod
    def _load_mmap(cls, path: Path) -> "ModelBundle":
        digest = sha256_hex(path.read_bytes())
        cache = cls._mmap_cache_dir(path)
        if not cls._mmap_cache_valid(cache, digest):
            cls._build_mmap_cache(path, cache, digest)
        try:
            manifest = json.loads((cache / "manifest.json").read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise BundleIntegrityError(
                f"{cache} has an unreadable manifest: {error}") from error
        if manifest.get("kind") != "autoac-model-bundle":
            raise ValueError(f"{path} is not a model bundle "
                             f"(kind={manifest.get('kind')!r})")

        def _open(name: str) -> np.ndarray:
            file = cache / "arrays" / f"{name}.npy"
            try:
                return np.load(file, mmap_mode="r")
            except ValueError:
                return np.load(file)  # zero-size arrays cannot be mapped
            except OSError as error:
                raise BundleIntegrityError(
                    f"{cache} is missing array {name!r}: {error}") from error

        model_state: Dict[str, np.ndarray] = {}
        features_state: Dict[str, np.ndarray] = {}
        for file in sorted((cache / "arrays").glob("*.npy")):
            name = file.name[:-len(".npy")]
            if name.startswith(_MODEL_PREFIX):
                model_state[unescape_state_key(
                    name[len(_MODEL_PREFIX):])] = _open(name)
            elif name.startswith(_FEATURES_PREFIX):
                features_state[unescape_state_key(
                    name[len(_FEATURES_PREFIX):])] = _open(name)
        spec = manifest["dataset"]
        model = manifest["model"]
        return cls(
            dataset=DatasetSpec(name=spec["name"], scale=spec["scale"],
                                seed=int(spec["seed"])),
            model_name=model["name"],
            hidden_dim=int(model["hidden_dim"]),
            out_dim=int(model["out_dim"]),
            model_kwargs=dict(model.get("kwargs") or {}),
            op_names=list(manifest["op_names"]),
            target_type=manifest["target_type"],
            num_classes=int(manifest["num_classes"]),
            label_names=list(manifest["label_names"]),
            assignment=_open("assignment"),
            cluster_labels=_open("cluster_labels"),
            completed=_open("completed"),
            model_state=model_state,
            features_state=features_state,
            metrics=dict(manifest.get("metrics") or {}),
            meta=dict(manifest.get("meta") or {}),
        )

    # ------------------------------------------------------------------
    def space(self) -> SearchSpace:
        return SearchSpace(self.op_names)

    def instantiate(self, dataset: Optional[HeteroDataset] = None) -> Tuple:
        """Rebuild ``(dataset, model, features)`` with the saved weights.

        The returned modules are in eval mode and bit-identical to the
        modules that produced the bundle.  ``dataset`` may be supplied to
        skip regeneration (it must match the bundle's spec).
        """
        dataset = dataset if dataset is not None else self.dataset.build()
        features = FixedAssignmentFeatures(dataset, self.hidden_dim,
                                           self.assignment, space=self.space())
        features.load_state_dict(self.features_state)
        model = build_model(self.model_name, dataset,
                            hidden_dim=self.hidden_dim, out_dim=self.out_dim,
                            **self.model_kwargs)
        model.load_state_dict(self.model_state)
        model.eval()
        features.eval()
        return dataset, model, features


def default_label_names(num_classes: int) -> List[str]:
    """Synthetic datasets have integer classes; name them deterministically."""
    return [f"class_{index}" for index in range(num_classes)]


def build_bundle(dataset: HeteroDataset, dataset_spec: DatasetSpec,
                 model_name: str, model, features: FixedAssignmentFeatures,
                 hidden_dim: int, out_dim: int,
                 model_kwargs: Optional[Mapping] = None,
                 cluster_labels: Optional[np.ndarray] = None,
                 label_names: Optional[List[str]] = None,
                 metrics: Optional[Mapping[str, float]] = None,
                 meta: Optional[Mapping] = None) -> ModelBundle:
    """Assemble a :class:`ModelBundle` from trained modules.

    The completed attributes are materialized here (one forward through
    the frozen feature builder, no gradients) so consumers of the bundle
    never need the completion ops at all.
    """
    model.eval()
    features.eval()
    with no_grad():
        completed_tensor = features.completed()
    if completed_tensor is None:
        completed = np.zeros((0, hidden_dim))
    else:
        completed = np.asarray(completed_tensor.data).copy()
    assignment = np.asarray(features.assignment, dtype=np.int64)
    if cluster_labels is None:
        cluster_labels = np.zeros_like(assignment)
    return ModelBundle(
        dataset=dataset_spec,
        model_name=model_name,
        hidden_dim=hidden_dim,
        out_dim=out_dim,
        model_kwargs=dict(model_kwargs or {}),
        op_names=list(features.space),
        target_type=dataset.target_type,
        num_classes=dataset.num_classes,
        label_names=list(label_names
                         or default_label_names(dataset.num_classes)),
        assignment=assignment,
        cluster_labels=np.asarray(cluster_labels, dtype=np.int64),
        completed=completed,
        model_state=model.state_dict(),
        features_state=features.state_dict(),
        metrics=dict(metrics or {}),
        meta=dict(meta or {}),
    )


def bundle_from_result(result, dataset: HeteroDataset,
                       dataset_spec: DatasetSpec, model_name: str,
                       config) -> ModelBundle:
    """Bundle a ``run_autoac(..., keep_artifacts=True)`` result.

    ``config`` is the :class:`~repro.core.AutoACConfig` the run used (the
    manifest needs its dimensions and model kwargs).
    """
    if result.artifacts is None:
        raise ValueError(
            "result has no retrain artifacts; run the pipeline with "
            "keep_artifacts=True to export a bundle")
    search = result.search
    return build_bundle(
        dataset, dataset_spec, model_name,
        result.artifacts.model, result.artifacts.features,
        hidden_dim=config.hidden_dim, out_dim=config.out_dim,
        model_kwargs=config.model_kwargs,
        cluster_labels=search.cluster_labels,
        metrics={"macro_f1": result.final.macro_f1,
                 "micro_f1": result.final.micro_f1,
                 "val_macro_f1": result.final.val_macro_f1,
                 "best_val_score": search.best_val_score},
        meta={"search_seconds": search.search_seconds,
              "retrain_seconds": result.final.train_seconds,
              "search_epochs": search.epochs_run,
              "retrain_epochs": result.final.epochs_run},
    )


__all__ = ["BUNDLE_FORMAT_VERSION", "BundleIntegrityError", "DatasetSpec",
           "ModelBundle", "build_bundle", "bundle_from_result",
           "default_label_names"]
