"""Request deadlines, bounded admission, and a circuit breaker.

Three small primitives the HTTP layer composes to stay predictable
under overload and partial failure:

* :class:`Deadline` — a monotonic-clock expiry carried through the
  request in a :mod:`contextvars` variable, so deep engine code can
  call :func:`check_deadline` without any parameter plumbing.  The
  server answers **504** when a request's budget runs out; the work
  already done is abandoned at the next check, not interrupted.
* :class:`AdmissionController` — a bounded two-stage gate: up to
  ``max_inflight`` requests execute, up to ``max_queue`` more wait for
  a slot, everything beyond that is *shed immediately* with
  :class:`ShedError` (the server maps it to **503** + ``Retry-After``).
  Shedding at the door keeps queue time bounded — an unbounded backlog
  converts overload into timeouts for everyone.
* :class:`CircuitBreaker` — closed → open after ``failure_threshold``
  consecutive failures, half-open (one probe) after ``cooldown_s``.
  Guards the onboarding write path: once writes are known-broken,
  failing fast beats grinding every request through the same error.

All three are clock-injectable for deterministic tests and none of
them import the HTTP layer; they are plain synchronization objects.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional


class DeadlineExceeded(RuntimeError):
    """The request's time budget ran out (HTTP 504 at the edge)."""


class ShedError(RuntimeError):
    """The request was refused admission (HTTP 503 at the edge)."""

    def __init__(self, reason: str, retry_after_s: float = 1.0) -> None:
        super().__init__(f"request shed: {reason}")
        self.reason = reason
        self.retry_after_s = retry_after_s


class CircuitOpenError(ShedError):
    """The guarded dependency is failing; calls are refused for now."""

    def __init__(self, retry_after_s: float) -> None:
        super().__init__("circuit-open", retry_after_s=retry_after_s)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Deadline:
    """An absolute expiry on the monotonic clock."""

    expires_at: float
    clock: Callable[[], float] = time.monotonic

    @classmethod
    def after_ms(cls, budget_ms: float,
                 clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(expires_at=clock() + budget_ms / 1e3, clock=clock)

    def remaining_s(self) -> float:
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        return self.remaining_s() <= 0.0


#: the ambient deadline for the current request, if any — set by the
#: HTTP handler, read by :func:`check_deadline` deep in the engine
current_deadline: contextvars.ContextVar[Optional[Deadline]] = \
    contextvars.ContextVar("repro_serving_deadline", default=None)


@contextlib.contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[None]:
    """Install ``deadline`` as the ambient deadline for the block."""
    token = current_deadline.set(deadline)
    try:
        yield
    finally:
        current_deadline.reset(token)


def check_deadline(stage: str = "") -> None:
    """Raise :class:`DeadlineExceeded` if the ambient deadline passed.

    Cheap enough to sprinkle at natural yield points (batch entry, per
    forward); a no-op when no deadline is installed, so library callers
    outside the server never pay or fail.
    """
    deadline = current_deadline.get()
    if deadline is not None and deadline.expired():
        raise DeadlineExceeded(
            "request deadline exceeded"
            + (f" (at {stage})" if stage else ""))


# ---------------------------------------------------------------------------
# Bounded admission
# ---------------------------------------------------------------------------
class AdmissionController:
    """Two-stage bounded gate: ``max_inflight`` running, ``max_queue``
    waiting, the rest shed.

    :meth:`admit` is a context manager wrapping the whole request body;
    it blocks (bounded by the queue and the caller's timeout) until a
    slot frees, and releases the slot on exit however the body ends.
    :meth:`drain` flips the gate shut: new arrivals are shed with
    ``reason="draining"`` while in-flight requests finish —
    :meth:`wait_idle` is the graceful-shutdown barrier.
    """

    def __init__(self, max_inflight: int = 8, max_queue: int = 16) -> None:
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self._inflight = 0
        self._queued = 0
        self._draining = False
        self._condition = threading.Condition()

    # -- introspection (for /stats and tests) ---------------------------
    @property
    def inflight(self) -> int:
        with self._condition:
            return self._inflight

    @property
    def queued(self) -> int:
        with self._condition:
            return self._queued

    @property
    def draining(self) -> bool:
        with self._condition:
            return self._draining

    # -- the gate -------------------------------------------------------
    @contextlib.contextmanager
    def admit(self, timeout_s: Optional[float] = None) -> Iterator[None]:
        """Hold one execution slot for the body, or shed.

        ``timeout_s`` bounds the queue wait (callers pass the request's
        remaining deadline budget); expiry sheds with
        ``reason="queue-timeout"`` rather than raising
        :class:`DeadlineExceeded` — the work never started, so 503
        retry-later is the honest answer.
        """
        self._acquire(timeout_s)
        try:
            yield
        finally:
            self._release()

    def _acquire(self, timeout_s: Optional[float]) -> None:
        with self._condition:
            if self._draining:
                raise ShedError("draining")
            if self._inflight < self.max_inflight:
                self._inflight += 1
                return
            if self._queued >= self.max_queue:
                raise ShedError("queue-full")
            self._queued += 1
            try:
                deadline = (None if timeout_s is None
                            else time.monotonic() + timeout_s)
                while True:
                    if self._draining:
                        raise ShedError("draining")
                    if self._inflight < self.max_inflight:
                        self._inflight += 1
                        return
                    remaining = (None if deadline is None
                                 else deadline - time.monotonic())
                    if remaining is not None and remaining <= 0:
                        raise ShedError("queue-timeout")
                    self._condition.wait(timeout=remaining)
            finally:
                self._queued -= 1

    def _release(self) -> None:
        with self._condition:
            self._inflight -= 1
            self._condition.notify_all()

    # -- shutdown -------------------------------------------------------
    def drain(self) -> None:
        """Refuse new work; wakes queued waiters so they shed promptly."""
        with self._condition:
            self._draining = True
            self._condition.notify_all()

    def wait_idle(self, timeout_s: Optional[float] = None) -> bool:
        """Block until nothing is in flight; True if idle was reached."""
        deadline = (None if timeout_s is None
                    else time.monotonic() + timeout_s)
        with self._condition:
            while self._inflight > 0:
                remaining = (None if deadline is None
                             else deadline - time.monotonic())
                if remaining is not None and remaining <= 0:
                    return False
                self._condition.wait(timeout=remaining)
            return True


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------
class CircuitBreaker:
    """Consecutive-failure breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failures open the circuit; after
    ``cooldown_s`` one probe call is let through (half-open) — success
    closes the circuit, failure re-opens it for another cooldown.
    :meth:`guard` wraps the protected call; while open it raises
    :class:`CircuitOpenError` carrying the time until the next probe.
    """

    def __init__(self, failure_threshold: int = 3, cooldown_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure_threshold must be positive")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._clock() - self._opened_at >= self.cooldown_s:
                return "half-open"
            return "open"

    def _admit(self) -> None:
        with self._lock:
            if self._opened_at is None:
                return
            elapsed = self._clock() - self._opened_at
            if elapsed < self.cooldown_s:
                raise CircuitOpenError(
                    retry_after_s=max(self.cooldown_s - elapsed, 0.0))
            if self._probing:
                # one probe at a time in half-open: concurrent callers
                # are refused until the probe settles the verdict
                raise CircuitOpenError(retry_after_s=self.cooldown_s)
            self._probing = True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()

    @contextlib.contextmanager
    def guard(self) -> Iterator[None]:
        """Run the protected call, feeding the breaker its outcome.

        :class:`DeadlineExceeded` and :class:`ShedError` pass through
        without counting as failures — they say nothing about the
        health of the guarded dependency.
        """
        self._admit()
        try:
            yield
        except (DeadlineExceeded, ShedError):
            with self._lock:
                self._probing = False
            raise
        except Exception:
            self.record_failure()
            raise
        else:
            self.record_success()


__all__ = [
    "AdmissionController",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "ShedError",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]
