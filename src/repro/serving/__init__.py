"""``repro.serving`` — trained-model artifacts and the online inference layer.

Turns a finished search + retrain run into a servable artifact
(:class:`ModelBundle`), answers queries through a micro-batching
:class:`InferenceEngine` with an LRU result cache, onboards brand-new
nodes online (:mod:`repro.serving.onboarding`), and exposes the whole
thing over stdlib HTTP (:class:`ServingServer`).  Entry points on the
CLI: ``repro export`` / ``repro serve`` / ``repro predict``.
"""

from .artifact import (
    BUNDLE_FORMAT_VERSION,
    DatasetSpec,
    ModelBundle,
    build_bundle,
    bundle_from_result,
    default_label_names,
)
from .engine import EngineConfig, InferenceEngine
from .onboarding import OnboardResult, OnboardingManager, parse_relation
from .server import ServingServer, make_handler

__all__ = [
    "BUNDLE_FORMAT_VERSION",
    "DatasetSpec",
    "ModelBundle",
    "build_bundle",
    "bundle_from_result",
    "default_label_names",
    "EngineConfig",
    "InferenceEngine",
    "OnboardResult",
    "OnboardingManager",
    "parse_relation",
    "ServingServer",
    "make_handler",
]
