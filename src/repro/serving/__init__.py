"""``repro.serving`` — trained-model artifacts and the online inference layer.

Turns a finished search + retrain run into a servable artifact
(:class:`ModelBundle`, written atomically with per-array checksums —
:class:`BundleIntegrityError` on load means a torn/corrupt file),
answers queries through a micro-batching :class:`InferenceEngine` with
an LRU result cache, onboards brand-new nodes online
(:mod:`repro.serving.onboarding`, crash-safe via the
:class:`OnboardWAL`), and exposes the whole thing over stdlib HTTP
(:class:`ServingServer` with per-request deadlines, bounded admission,
and a circuit breaker — see :mod:`repro.serving.admission`).  For
horizontal scale, :class:`ServingTier` preforks N worker processes over
one mmap-backed bundle behind an async coalescing front
(:class:`TierFrontend`) — see docs/SCALING.md.  Entry points on the
CLI: ``repro export`` / ``repro serve`` / ``repro predict``.
"""

from .admission import (
    AdmissionController,
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    ShedError,
    check_deadline,
    deadline_scope,
)
from .artifact import (
    BUNDLE_FORMAT_VERSION,
    BundleIntegrityError,
    DatasetSpec,
    ModelBundle,
    build_bundle,
    bundle_from_result,
    default_label_names,
)
from .engine import EngineConfig, InferenceEngine
from .frontend import FrontendConfig, TierFrontend, WorkerDied
from .onboarding import OnboardResult, OnboardingManager, parse_relation
from .server import ServerConfig, ServingServer, make_handler
from .tier import TIER_PROTOCOL_VERSION, ServingTier, TierConfig, WorkerHandle
from .wal import OnboardWAL, WalReplayError

__all__ = [
    "AdmissionController",
    "BUNDLE_FORMAT_VERSION",
    "BundleIntegrityError",
    "CircuitBreaker",
    "CircuitOpenError",
    "DatasetSpec",
    "Deadline",
    "DeadlineExceeded",
    "ModelBundle",
    "OnboardWAL",
    "ShedError",
    "WalReplayError",
    "build_bundle",
    "bundle_from_result",
    "check_deadline",
    "deadline_scope",
    "default_label_names",
    "EngineConfig",
    "FrontendConfig",
    "InferenceEngine",
    "OnboardResult",
    "OnboardingManager",
    "parse_relation",
    "ServerConfig",
    "ServingServer",
    "ServingTier",
    "TIER_PROTOCOL_VERSION",
    "TierConfig",
    "TierFrontend",
    "WorkerDied",
    "WorkerHandle",
    "make_handler",
]
