"""Online onboarding of new nodes — the serving-time analogue of AutoAC.

The paper completes attributes for the no-attribute nodes (V⁻) that exist
at training time.  A live system keeps receiving *new* nodes (a fresh
movie, a new user) that must be served before the next retrain.  This
module implements that path on top of a loaded bundle:

1. the node (plus its edges to existing nodes) is appended to a private
   copy of the graph — :meth:`~repro.graph.HeteroGraph.append_node`
   invalidates only the adjacency-cache entries whose node type is
   affected, so unrelated cached CSR blocks survive;
2. if its type has no raw attributes, the node is routed to a completion
   cluster by majority vote over its onboarded/base V⁻ neighbors and the
   cluster's *searched* completion op is run inductively to synthesize
   its attribute (``one_hot``, the only non-inductive op, falls back to
   the cluster centroid of the bundle's completed attributes);
3. one forward on the updated graph (existing rows of ``h0`` frozen)
   yields the node's prediction/embedding, which is stored in an overlay.

Pre-existing nodes keep being served from the *base* state, so onboarding
never changes an existing answer; the overlay is folded into ground truth
at the next offline retrain.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

import time

from ..completion import build_op
from ..datasets import HeteroDataset
from ..graph import Relation
from ..graph.sampler import NeighborSampler
from ..models import build_model
from ..telemetry import MetricsRegistry, Tracer
from ..tensor import Tensor, no_grad
from .artifact import ModelBundle

EdgeSpec = Mapping[Union[Relation, str], "np.ndarray"]


def parse_relation(key: Union[Relation, str]) -> Relation:
    """Accept ``(src, name, dst)`` tuples or ``"src:name:dst"`` strings."""
    if isinstance(key, str):
        parts = tuple(key.split(":"))
        if len(parts) != 3:
            raise ValueError(
                f"relation string must look like 'src:name:dst', got {key!r}")
        return parts  # type: ignore[return-value]
    key = tuple(key)
    if len(key) != 3:
        raise ValueError(f"relation must have 3 components, got {key!r}")
    return key  # type: ignore[return-value]


@dataclass
class OnboardResult:
    """Everything the serving layer knows about one onboarded node."""

    node_type: str
    local_id: int                       # local id within its type (stable)
    global_id: int                      # in the updated graph at onboard time
    cluster: Optional[int]              # completion cluster (V⁻ types only)
    op_name: Optional[str]              # searched op used for the attribute
    completed: Optional[np.ndarray]     # synthesized attribute (hidden dim)
    logits: Optional[np.ndarray]        # classifier logits (target type only)
    prediction: Optional[int]
    label: Optional[str]
    embedding: Optional[np.ndarray]

    def to_json(self) -> Dict:
        return {
            "node_type": self.node_type,
            "node_id": self.local_id,
            "global_id": self.global_id,
            "cluster": self.cluster,
            "op": self.op_name,
            "prediction": self.prediction,
            "label": self.label,
            "embedding": (None if self.embedding is None
                          else self.embedding.tolist()),
        }

    def to_wire(self) -> Dict:
        """The *complete* result as a JSON-able overlay delta.

        Unlike :meth:`to_json` (the client-facing reply, which drops
        the logits), the wire form carries everything a reader process
        needs to serve this node from its overlay without recomputing —
        the payload the tier's writer broadcasts after an onboard.
        Python floats round-trip JSON exactly, so an installed delta
        serves bit-identical answers.
        """

        def _array(value):
            if value is None:
                return None
            value = np.asarray(value)
            return {"dtype": value.dtype.str, "data": value.tolist()}

        return {
            "node_type": self.node_type,
            "local_id": self.local_id,
            "global_id": self.global_id,
            "cluster": self.cluster,
            "op_name": self.op_name,
            "completed": _array(self.completed),
            "logits": _array(self.logits),
            "prediction": self.prediction,
            "label": self.label,
            "embedding": _array(self.embedding),
        }

    @classmethod
    def from_wire(cls, payload: Mapping) -> "OnboardResult":
        """Rebuild a result from :meth:`to_wire` output (exact)."""

        def _array(entry):
            if entry is None:
                return None
            return np.asarray(entry["data"], dtype=np.dtype(entry["dtype"]))

        return cls(
            node_type=payload["node_type"],
            local_id=int(payload["local_id"]),
            global_id=int(payload["global_id"]),
            cluster=(None if payload.get("cluster") is None
                     else int(payload["cluster"])),
            op_name=payload.get("op_name"),
            completed=_array(payload.get("completed")),
            logits=_array(payload.get("logits")),
            prediction=(None if payload.get("prediction") is None
                        else int(payload["prediction"])),
            label=payload.get("label"),
            embedding=_array(payload.get("embedding")),
        )


class OnboardingManager:
    """Owns the mutable serving-side graph and the onboarded-node overlay."""

    def __init__(self, bundle: ModelBundle, base_dataset: HeteroDataset,
                 base_h0: np.ndarray,
                 fanout: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None) -> None:
        self.bundle = bundle
        self.base = base_dataset
        #: when set (and the backbone supports sampling), the onboarding
        #: forward runs on a sampled neighborhood view around the new node
        #: instead of the whole updated graph
        self._fanout = fanout
        # the engine hands down its private registry/tracer so onboarding
        # shows up in the same /metrics scrape and trace stream
        self.metrics = registry or MetricsRegistry()
        self.tracer = tracer or Tracer(None)
        self._m_onboards = self.metrics.counter(
            "onboard_nodes_total", "Nodes onboarded online",
            labels=("node_type",))
        self._m_failures = self.metrics.counter(
            "onboard_failures_total", "Onboard attempts rolled back",
            labels=("node_type",))
        self._m_seconds = self.metrics.histogram(
            "onboard_seconds", "Wall time per onboarded node")
        self._m_overlay = self.metrics.gauge(
            "onboard_overlay_size", "Onboarded nodes served from overlay",
            aggregation="max")
        self._dataset: Optional[HeteroDataset] = None  # mutable copy, lazy
        self._h0 = np.asarray(base_h0).copy()
        self._results: Dict[Tuple[str, int], OnboardResult] = {}
        # bundle rows (assignment / cluster_labels / completed) follow the
        # base dataset's missing_global_ids: per-type contiguous blocks
        self._missing_row_start: Dict[str, int] = {}
        offset = 0
        for node_type in base_dataset.missing_types:
            self._missing_row_start[node_type] = offset
            offset += base_dataset.graph.num_nodes_of(node_type)

    def __len__(self) -> int:
        return len(self._results)

    def target_overlay(self) -> Dict[int, OnboardResult]:
        """Onboarded *target-type* nodes keyed by their stable local id."""
        return {local_id: result
                for (node_type, local_id), result in self._results.items()
                if node_type == self.bundle.target_type}

    def result(self, node_type: str, local_id: int) -> OnboardResult:
        return self._results[(node_type, local_id)]

    # ------------------------------------------------------------------
    def _mutable_dataset(self) -> HeteroDataset:
        if self._dataset is None:
            self._dataset = replace(
                self.base,
                graph=self.base.graph.copy(),
                features=dict(self.base.features),
                labels=self.base.labels.copy(),
                latent_communities=None,
            )
        return self._dataset

    def _base_cluster(self, node_type: str, local_id: int) -> Optional[int]:
        """Completion cluster of an existing V⁻ node (None for V⁺ nodes)."""
        if node_type not in self._missing_row_start:
            return None
        if local_id >= self.base.graph.num_nodes_of(node_type):
            onboarded = self._results.get((node_type, local_id))
            return None if onboarded is None else onboarded.cluster
        row = self._missing_row_start[node_type] + local_id
        if row >= self.bundle.cluster_labels.shape[0]:
            return None
        return int(self.bundle.cluster_labels[row])

    def _vote_cluster(self, node_type: str,
                      neighbors: List[Tuple[str, int]]) -> int:
        """Majority completion cluster over V⁻ neighbors, with fallbacks."""
        votes = [cluster for other_type, local_id in neighbors
                 for cluster in [self._base_cluster(other_type, local_id)]
                 if cluster is not None]
        if not votes:  # fall back to the node type's own majority cluster
            start = self._missing_row_start[node_type]
            count = self.base.graph.num_nodes_of(node_type)
            votes = self.bundle.cluster_labels[start:start + count].tolist()
        if not votes:
            return 0
        return int(np.bincount(np.asarray(votes, dtype=np.int64)).argmax())

    def _cluster_op(self, cluster: int) -> int:
        """The searched op of a cluster (majority over its members)."""
        members = self.bundle.assignment[self.bundle.cluster_labels == cluster]
        pool = members if members.size else self.bundle.assignment
        if not pool.size:
            raise ValueError("bundle has no completion assignment to "
                             "onboard attribute-less nodes with")
        return int(np.bincount(np.asarray(pool, dtype=np.int64)).argmax())

    def _synthesize_attribute(self, dataset: HeteroDataset, node_type: str,
                              new_local: int, cluster: int,
                              op_index: int) -> np.ndarray:
        """Run the cluster's searched completion op for the new node.

        Topology ops are rebuilt on the updated graph and applied with the
        *saved* transform weights — the inductive analogue of training-time
        completion.  ``one_hot`` has no inductive form, so the cluster
        centroid of the bundle's completed attributes stands in.
        """
        op_name = self.bundle.op_names[op_index]
        if op_name == "one_hot":
            members = np.flatnonzero(self.bundle.cluster_labels == cluster)
            pool = (self.bundle.completed[members] if members.size
                    else self.bundle.completed)
            if pool.shape[0] == 0:
                return np.zeros(self.bundle.hidden_dim)
            return pool.mean(axis=0)
        op = build_op(op_name, dataset, self.bundle.hidden_dim)
        gid = dataset.graph.to_global(node_type, np.array([new_local]))[0]
        row = int(np.flatnonzero(dataset.missing_global_ids == gid)[0])
        weight = self.bundle.features_state[f"ops.{op_index}.weight"]
        return np.asarray(op._base[row] @ weight)

    def _updated_model(self, dataset: HeteroDataset):
        """The bundle's backbone rebuilt over the updated graph."""
        try:
            model = build_model(self.bundle.model_name, dataset,
                                hidden_dim=self.bundle.hidden_dim,
                                out_dim=self.bundle.out_dim,
                                **self.bundle.model_kwargs)
            model.load_state_dict(self.bundle.model_state)
        except (KeyError, ValueError) as error:
            raise RuntimeError(
                f"backbone {self.bundle.model_name!r} cannot be rebuilt "
                f"inductively after onboarding: {error}") from error
        model.eval()
        return model

    # ------------------------------------------------------------------
    def onboard(self, node_type: str, edges: EdgeSpec,
                raw_features=None) -> OnboardResult:
        """Append one node, synthesize its attribute, freeze its result."""
        start = time.perf_counter()
        with self.tracer.span("onboard", node_type=node_type):
            try:
                result = self._onboard(node_type, edges, raw_features)
            except Exception:
                # the rollback in _onboard already ran; count the attempt
                self._m_failures.inc(node_type=node_type)
                raise
        self._m_onboards.inc(node_type=node_type)
        self._m_seconds.observe(time.perf_counter() - start)
        self._m_overlay.set(len(self._results))
        return result

    def _onboard(self, node_type: str, edges: EdgeSpec,
                 raw_features=None) -> OnboardResult:
        dataset = self._mutable_dataset()
        graph = dataset.graph
        if node_type not in graph.node_types:
            raise KeyError(f"unknown node type {node_type!r}")
        parsed = {parse_relation(key): np.asarray(value, dtype=np.int64).ravel()
                  for key, value in edges.items()}
        neighbors: List[Tuple[str, int]] = []
        for relation, ids in parsed.items():
            other = relation[2] if relation[0] == node_type else relation[0]
            neighbors.extend((other, int(local_id)) for local_id in ids)

        attributed = dataset.features[node_type] is not None
        raw = None
        if attributed:
            if raw_features is None:
                raise ValueError(
                    f"type {node_type!r} is attributed; onboarding needs "
                    f"its raw feature vector")
            raw = np.asarray(raw_features, dtype=np.float64).ravel()
            raw_dim = dataset.features[node_type].shape[1]
            if raw.shape[0] != raw_dim:
                raise ValueError(
                    f"raw feature dim {raw.shape[0]} != {raw_dim} "
                    f"for type {node_type!r}")

        # everything past this point must be atomic: a failure (most
        # commonly a backbone with node-count-dependent parameters that
        # cannot be rebuilt inductively) rolls the graph/features/labels
        # back so retried onboards cannot grow ghost state
        old_features = dataset.features[node_type]
        old_labels = dataset.labels
        new_local = graph.append_node(node_type, parsed)
        try:
            gid = int(graph.to_global(node_type, np.array([new_local]))[0])
            cluster: Optional[int] = None
            op_name: Optional[str] = None
            if attributed:
                dataset.features[node_type] = np.vstack([old_features, raw])
                weight = self.bundle.features_state[
                    f"projector.projections.{node_type}.weight"]
                bias = self.bundle.features_state[
                    f"projector.projections.{node_type}.bias"]
                h0_row = raw @ weight + bias
                completed_row = None
            else:
                cluster = self._vote_cluster(node_type, neighbors)
                op_index = self._cluster_op(cluster)
                op_name = self.bundle.op_names[op_index]
                completed_row = self._synthesize_attribute(
                    dataset, node_type, new_local, cluster, op_index)
                h0_row = completed_row
            if node_type == dataset.target_type:
                dataset.labels = np.concatenate(
                    [old_labels, np.array([-1], dtype=old_labels.dtype)])

            h0_updated = np.insert(self._h0, gid, h0_row, axis=0)

            model = self._updated_model(dataset)
            logits_row = prediction = label = embedding = None
            sampled = (self._fanout is not None
                       and getattr(model, "supports_sampling", False))
            with no_grad():
                if sampled:
                    # /predict on a fresh node touches only its sampled
                    # neighborhood: one bounded view forward, not a pass
                    # over the whole updated graph.  Seeded by the node's
                    # global id so a retried onboard is deterministic.
                    sampler = NeighborSampler(
                        graph, fanout=self._fanout,
                        num_layers=getattr(model, "num_layers", 2),
                        seed=int(gid))
                    view = sampler.sample(np.array([gid], dtype=np.int64))
                    encoded = model.encode(
                        Tensor(h0_updated[view.node_ids]), view=view)
                    embedding = np.asarray(encoded.data[0]).copy()
                    if node_type == dataset.target_type:
                        logits_row = np.asarray(
                            model.classifier(
                                encoded[view.seed_local]).data[0]).copy()
                else:
                    encoded = model.encode(Tensor(h0_updated))
                    if getattr(model, "full_graph", False):
                        target_ids = graph.global_ids(dataset.target_type)
                        logits = model.classifier(encoded[target_ids])
                        embedding = np.asarray(encoded.data[gid]).copy()
                    else:
                        logits = model.classifier(encoded)
                        if node_type == dataset.target_type:
                            embedding = np.asarray(
                                encoded.data[new_local]).copy()
                    if node_type == dataset.target_type:
                        logits_row = np.asarray(
                            logits.data[new_local]).copy()
            if logits_row is not None:
                prediction = int(np.argmax(logits_row))
                label = self.bundle.label_names[prediction]
        except Exception:
            graph.pop_node(node_type)
            dataset.features[node_type] = old_features
            dataset.labels = old_labels
            raise

        self._h0 = h0_updated
        result = OnboardResult(
            node_type=node_type, local_id=new_local, global_id=gid,
            cluster=cluster, op_name=op_name, completed=completed_row,
            logits=logits_row, prediction=prediction, label=label,
            embedding=embedding)
        self._results[(node_type, new_local)] = result
        return result


__all__ = ["OnboardResult", "OnboardingManager", "parse_relation"]
