"""Op-level profiler for the autograd engine.

Every public op in ``repro.tensor`` routes through the instrumentation
choke point in :mod:`repro.tensor._profile`; this module installs a hook
there and aggregates, per op name, the call count, total wall time and
total bytes of output allocated.  Backward closures report separately as
``"<op>.backward"``.  Composite ops (e.g. the unfused ``cross_entropy``)
also record the primitives they call, so times are *inclusive* — the
table answers "where does wall time pass through", not "exclusive
self-time".

Usage::

    with Profiler() as prof:
        run_autoac(dataset, "simple_hgn")
    print(prof.report().render())

or via ``python -m repro profile`` / ``run_autoac(..., profile=True)``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..tensor import _profile


@dataclass
class OpStat:
    """Aggregate statistics of one op name."""

    name: str
    calls: int = 0
    seconds: float = 0.0
    bytes_allocated: int = 0

    def record(self, seconds: float, nbytes: int) -> None:
        self.calls += 1
        self.seconds += seconds
        self.bytes_allocated += nbytes


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:,.1f} {unit}" if unit != "B" else f"{int(value):,} B"
        value /= 1024.0
    return f"{int(count):,} B"


@dataclass
class ProfileReport:
    """Frozen snapshot of a profiling session, renderable as a table."""

    stats: List[OpStat] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stat.seconds for stat in self.stats)

    @property
    def total_calls(self) -> int:
        return sum(stat.calls for stat in self.stats)

    def top(self, n: Optional[int] = None) -> List[OpStat]:
        """Stats sorted by total time, slowest first (all when ``n`` is None)."""
        ranked = sorted(self.stats, key=lambda s: s.seconds, reverse=True)
        return ranked if n is None else ranked[:n]

    def as_rows(self) -> List[Dict]:
        """Machine-readable rows (used by tests and JSON dumps)."""
        return [
            {"op": stat.name, "calls": stat.calls,
             "total_ms": stat.seconds * 1e3,
             "bytes": stat.bytes_allocated}
            for stat in self.top()
        ]

    def to_json(self) -> Dict:
        """The whole report as one JSON-able dict (``repro profile
        --json``): totals plus the ranked per-op rows."""
        return {"total_seconds": self.total_seconds,
                "total_calls": self.total_calls,
                "ops": self.as_rows()}

    def publish(self, registry=None) -> None:
        """Register per-op totals as ``tensor_op_*`` metrics.

        Targets the process-global registry by default, so a profiled
        run shows up in the same ``/metrics`` scrape as everything
        else.  Counters only ever add, so publishing two sessions
        accumulates — the Prometheus-native behaviour.
        """
        from ..telemetry import get_registry
        registry = registry or get_registry()
        seconds = registry.counter("tensor_op_seconds_total",
                                   "Inclusive wall time per autograd op",
                                   labels=("op",))
        calls = registry.counter("tensor_op_calls_total",
                                 "Calls per autograd op", labels=("op",))
        nbytes = registry.counter("tensor_op_bytes_total",
                                  "Output bytes allocated per autograd op",
                                  labels=("op",))
        for stat in self.stats:
            seconds.inc(stat.seconds, op=stat.name)
            calls.inc(stat.calls, op=stat.name)
            nbytes.inc(stat.bytes_allocated, op=stat.name)

    def render(self, limit: Optional[int] = 30) -> str:
        """Fixed-width per-op table: calls, total ms, share, bytes."""
        rows = self.top(limit)
        total = self.total_seconds or 1.0
        header = (f"{'op':<28} {'calls':>8} {'total ms':>10} "
                  f"{'share':>7} {'bytes out':>12}")
        lines = [header, "-" * len(header)]
        for stat in rows:
            lines.append(
                f"{stat.name:<28} {stat.calls:>8} {stat.seconds * 1e3:>10.2f} "
                f"{stat.seconds / total:>7.1%} "
                f"{_format_bytes(stat.bytes_allocated):>12}")
        lines.append("-" * len(header))
        lines.append(
            f"{'total (inclusive)':<28} {self.total_calls:>8} "
            f"{self.total_seconds * 1e3:>10.2f} {'':>7} {'':>12}")
        return "\n".join(lines)


class Profiler:
    """Collects per-op statistics while active (context manager).

    Profilers nest: an inner profiler temporarily replaces the outer
    hook and restores it on exit (the outer one misses the inner span —
    acceptable for the intended "wrap one run" usage).
    """

    def __init__(self, registry=None) -> None:
        self._stats: Dict[str, OpStat] = {}
        self._previous = None
        self._active = False
        #: when set, the session's per-op totals are published into this
        #: telemetry registry (``tensor_op_*``) on context-manager exit
        self.registry = registry

    # the hook installed into repro.tensor._profile
    def _record(self, name: str, seconds: float, nbytes: int) -> None:
        stat = self._stats.get(name)
        if stat is None:
            stat = self._stats[name] = OpStat(name)
        stat.record(seconds, nbytes)

    def __enter__(self) -> "Profiler":
        if self._active:
            raise RuntimeError("Profiler is not reentrant")
        self._previous = _profile.set_hook(self._record)
        self._active = True
        return self

    def __exit__(self, *exc) -> None:
        _profile.set_hook(self._previous)
        self._previous = None
        self._active = False
        if self.registry is not None:
            self.report().publish(self.registry)

    def reset(self) -> None:
        """Drop all collected statistics."""
        self._stats.clear()

    def report(self) -> ProfileReport:
        """Snapshot the collected statistics."""
        return ProfileReport([OpStat(s.name, s.calls, s.seconds,
                                     s.bytes_allocated)
                              for s in self._stats.values()])


@contextlib.contextmanager
def profile() -> Iterator[Profiler]:
    """Shorthand ``with profile() as prof:`` (a fresh :class:`Profiler`)."""
    with Profiler() as prof:
        yield prof


__all__ = ["Profiler", "ProfileReport", "OpStat", "profile"]
