"""``repro.perf`` — the runtime performance layer.

Two orthogonal tools:

* **Runtime profiles** (:mod:`.profiles`) — named bundles of engine
  settings.  ``"reference"`` (default) is bit-for-bit the historical
  float64 unfused engine; ``"fast"`` switches the whole stack to float32
  and enables the fused kernels, cutting AutoAC search wall-time ≥2×
  at numerically-equivalent quality (guarded by
  ``benchmarks/test_search_speedup.py``).
* **Op-level profiler** (:mod:`.profiler`) — per-op call counts, wall
  time and allocated bytes for every autograd op, exposed as
  ``python -m repro profile`` and ``run_autoac(..., profile=True)``.
"""

from .profiler import ProfileReport, Profiler, profile
from .recording import current_commit, is_dirty_commit, merge_bench_rows
from .profiles import (
    RuntimeProfile,
    current_profile,
    get_profile,
    profile_names,
    runtime_profile,
    set_runtime_profile,
)

__all__ = [
    "RuntimeProfile",
    "current_profile",
    "get_profile",
    "profile_names",
    "runtime_profile",
    "set_runtime_profile",
    "Profiler",
    "ProfileReport",
    "profile",
    "current_commit",
    "is_dirty_commit",
    "merge_bench_rows",
]
