"""Perf-trajectory recording: commit stamping and row-merge policy.

``BENCH_perf.json`` (repo root) is an append-mostly trajectory of
``{name, value, unit, commit}`` rows written by the benchmark suite's
``record_benchmark`` fixture.  Rows are stamped with ``git describe
--always --dirty`` so a measurement is never attributed to a commit it
was not taken on; an uncommitted tree stamps ``<sha>-dirty``.

The merge policy (:func:`merge_bench_rows`) keeps the trajectory free of
stale duplicates:

* re-recording a benchmark at the **same** commit (clean or dirty)
  replaces its earlier row — idempotent per ``(name, commit)``;
* a **clean**-commit row additionally evicts every ``-dirty`` row of the
  same benchmark, whatever commit the dirty row was stamped with.  Dirty
  rows are provisional by construction (the measured tree was never
  committed, so the stamped sha can never be checked out to reproduce
  them); once the benchmark is re-recorded at a clean commit they are
  superseded, not history.

Only moving to a *new clean commit* grows the trajectory.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Dict, List, Sequence

DIRTY_SUFFIX = "-dirty"


def is_dirty_commit(commit: str) -> bool:
    """True for rows stamped on an uncommitted tree (``<sha>-dirty``)."""
    return str(commit).endswith(DIRTY_SUFFIX)


def current_commit(repo_root) -> str:
    """Short HEAD hash via ``git describe --always --dirty``.

    Appends ``-dirty`` for uncommitted changes so trajectory rows are
    never attributed to a commit they weren't measured on; returns
    ``"unknown"`` outside a git checkout.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(repo_root), capture_output=True, text=True, timeout=10)
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except (OSError, subprocess.SubprocessError):
        pass
    return "unknown"


def merge_bench_rows(existing: Sequence[Dict],
                     fresh: Sequence[Dict]) -> List[Dict]:
    """Merge freshly measured rows into the rows already on disk.

    Returns ``existing`` (order preserved) with superseded rows dropped,
    followed by ``fresh``.  A fresh row supersedes an existing row when:

    * it has the same ``(name, commit)`` — a re-run at the same tree; or
    * the fresh row is stamped on a **clean** commit and the existing
      row is a ``-dirty`` row of the same benchmark name (provisional
      measurements give way to the committed one).

    Malformed existing entries (non-dicts) are dropped rather than
    crashing the flush — the trajectory file is best-effort history.
    """
    fresh = [dict(row) for row in fresh]
    direct = {(row.get("name"), row.get("commit")) for row in fresh}
    clean_names = {row.get("name") for row in fresh
                   if not is_dirty_commit(row.get("commit", ""))}
    kept = []
    for row in existing:
        if not isinstance(row, dict):
            continue
        name, commit = row.get("name"), row.get("commit")
        if (name, commit) in direct:
            continue
        if name in clean_names and is_dirty_commit(str(commit)):
            continue
        kept.append(row)
    return kept + fresh


__all__ = ["DIRTY_SUFFIX", "current_commit", "is_dirty_commit",
           "merge_bench_rows"]
