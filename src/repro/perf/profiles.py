"""Named runtime profiles: bundles of engine-wide performance settings.

A profile fixes three independent switches:

* the default float dtype (:mod:`repro.tensor.dtype`),
* the fused kernels (:func:`repro.tensor.functional.set_fused_kernels`),
* whether :class:`~repro.core.search.AutoACSearcher` may reuse completion
  candidates across the upper/lower steps of one epoch (the search-loop
  cache; searchers resolve it at construction unless their config pins
  it).

``reference`` — float64, unfused, no search cache — reproduces the
historical engine bit-for-bit and stays the process default.  ``fast`` —
float32, fused, cached — is the ≥2× profile used for production-style
search runs.  Apply one with::

    with runtime_profile("fast"):
        result = run_autoac(dataset, "simple_hgn")

or process-wide with :func:`set_runtime_profile`.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from ..tensor import get_default_dtype, set_default_dtype
from ..tensor.functional import fused_kernels_enabled, set_fused_kernels


@dataclass(frozen=True)
class RuntimeProfile:
    """One named bundle of engine performance settings."""

    name: str
    dtype: np.dtype
    fused_kernels: bool
    candidate_cache: bool

    def describe(self) -> str:
        return (f"{self.name}: dtype={np.dtype(self.dtype).name}, "
                f"fused_kernels={'on' if self.fused_kernels else 'off'}, "
                f"search candidate cache="
                f"{'on' if self.candidate_cache else 'off'}")


_PROFILES: Dict[str, RuntimeProfile] = {
    "reference": RuntimeProfile("reference", np.dtype(np.float64),
                                fused_kernels=False, candidate_cache=False),
    "fast": RuntimeProfile("fast", np.dtype(np.float32),
                           fused_kernels=True, candidate_cache=True),
}

_CURRENT = [_PROFILES["reference"]]


def profile_names() -> List[str]:
    """The registered profile names (``reference`` and ``fast``)."""
    return list(_PROFILES)


def get_profile(name: str) -> RuntimeProfile:
    """Look up a profile by name."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise KeyError(f"unknown runtime profile {name!r}; "
                       f"expected one of {profile_names()}") from None


def current_profile() -> RuntimeProfile:
    """The profile currently applied to the engine."""
    return _CURRENT[0]


def set_runtime_profile(name: str) -> RuntimeProfile:
    """Apply a profile process-wide; returns the previously active one.

    Only affects tensors/modules created *after* the switch — existing
    float64 parameters are not converted.
    """
    profile = get_profile(name)
    previous = _CURRENT[0]
    set_default_dtype(profile.dtype)
    set_fused_kernels(profile.fused_kernels)
    _CURRENT[0] = profile
    return previous


@contextlib.contextmanager
def runtime_profile(name: str) -> Iterator[RuntimeProfile]:
    """Scoped profile switch; on exit the *actual* prior engine state is
    restored — including dtype/fused settings that were set manually
    outside any named profile — not merely the previous profile's
    defaults.

    Build the dataset, model and searcher *inside* the block so every
    array is allocated in the profile's dtype.
    """
    previous_profile = _CURRENT[0]
    previous_dtype = get_default_dtype()
    previous_fused = fused_kernels_enabled()
    set_runtime_profile(name)
    try:
        yield _CURRENT[0]
    finally:
        set_default_dtype(previous_dtype)
        set_fused_kernels(previous_fused)
        _CURRENT[0] = previous_profile


__all__ = ["RuntimeProfile", "profile_names", "get_profile",
           "current_profile", "set_runtime_profile", "runtime_profile"]
