"""MAGNN (Fu et al., WWW'20) — metapath-instance aggregation.

Faithful-but-tractable reproduction: metapath instances are reduced to
(endpoint, center, endpoint) triples (see
:func:`repro.graph.metapath.metapath_instances`) and encoded with the
paper's *mean* instance encoder (a *linear* encoder is also available; the
RotatE encoder is replaced by these — the substitution is recorded in
DESIGN.md).  Intra-metapath aggregation is multi-head attention over
instances; inter-metapath aggregation is HAN-style semantic attention.
"""

from __future__ import annotations

import numpy as np

from ..datasets import HeteroDataset
from ..graph.metapath import metapath_instances
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    concat,
    elu,
    gather_rows,
    init,
    leaky_relu,
    scatter_add,
    segment_softmax,
)
from .base import BaseHGNN
from .semantic import SemanticAttention


class MetapathInstanceLayer(Module):
    """Intra-metapath attention over (u, center, v) instance triples."""

    def __init__(self, in_dim: int, out_dim: int, num_heads: int,
                 instances: tuple, target_offset: int, n_target: int,
                 encoder: str = "mean", negative_slope: float = 0.2,
                 attn_dropout: float = 0.3) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.encoder = encoder
        src, center, dst = instances
        # attach a self instance per target node so isolated nodes keep content
        loops = np.arange(n_target, dtype=np.int64) + target_offset
        self.inst_src = np.concatenate([src, loops])
        self.inst_center = np.concatenate([center, loops])
        self.inst_dst = np.concatenate([dst, loops])
        self.dst_local = self.inst_dst - target_offset
        self.n_target = n_target
        self.negative_slope = negative_slope
        self.proj = Linear(in_dim, out_dim, bias=False)
        if encoder == "linear":
            self.encoder_proj = Linear(3 * out_dim, out_dim, bias=False)
        elif encoder == "rotate":
            if out_dim % 2 != 0:
                raise ValueError("rotate encoder needs an even out_dim")
            # learnable rotation phase per complex coordinate (RotatE)
            self.phase = Parameter(init.uniform((out_dim // 2,),
                                                -np.pi, np.pi), name="phase")
        elif encoder != "mean":
            raise ValueError(f"unknown instance encoder {encoder!r}")
        self.attn_inst = Parameter(init.xavier_uniform((num_heads, self.head_dim)),
                                   name="attn_inst")
        self.attn_dst = Parameter(init.xavier_uniform((num_heads, self.head_dim)),
                                  name="attn_dst")
        self.attn_dropout = Dropout(attn_dropout)

    def forward(self, h_all: Tensor) -> Tensor:
        projected = self.proj(h_all)
        h_src = gather_rows(projected, self.inst_src)
        h_center = gather_rows(projected, self.inst_center)
        h_dst = gather_rows(projected, self.inst_dst)
        if self.encoder == "mean":
            inst = (h_src + h_center + h_dst) * (1.0 / 3.0)
        elif self.encoder == "rotate":
            inst = self._rotate_encode(h_src, h_center, h_dst)
        else:
            inst = self.encoder_proj(concat([h_src, h_center, h_dst], axis=1))
        inst_heads = inst.reshape(-1, self.num_heads, self.head_dim)
        dst_heads = h_dst.reshape(-1, self.num_heads, self.head_dim)
        logits = leaky_relu(
            (inst_heads * self.attn_inst).sum(axis=-1)
            + (dst_heads * self.attn_dst).sum(axis=-1),
            self.negative_slope,
        )
        alpha = segment_softmax(logits, self.dst_local, self.n_target)
        alpha = self.attn_dropout(alpha)
        weighted = inst_heads * alpha.reshape(-1, self.num_heads, 1)
        out = scatter_add(weighted, self.dst_local, self.n_target)
        return out.reshape(self.n_target, self.num_heads * self.head_dim)

    def _rotate_encode(self, h_src: Tensor, h_center: Tensor,
                       h_dst: Tensor) -> Tensor:
        """MAGNN's relational-rotation encoder (RotatE, Fu et al. §3.2.1).

        Embeddings are read as complex vectors (first half = real part);
        each hop multiplies the running encoding by a learnable unit-norm
        rotation, and the instance embedding is the mean of all hops.
        """
        from ..tensor import cos as t_cos, sin as t_sin

        phase_re = t_cos(self.phase).reshape(1, -1)
        phase_im = t_sin(self.phase).reshape(1, -1)
        half = h_src.shape[1] // 2

        def split(h: Tensor):
            return h[:, :half], h[:, half:]

        def rotate(re: Tensor, im: Tensor):
            return (re * phase_re - im * phase_im,
                    re * phase_im + im * phase_re)

        o_re, o_im = split(h_src)
        rot_re, rot_im = rotate(o_re, o_im)
        c_re, c_im = split(h_center)
        o1_re, o1_im = c_re + rot_re, c_im + rot_im
        rot1_re, rot1_im = rotate(o1_re, o1_im)
        d_re, d_im = split(h_dst)
        o2_re, o2_im = d_re + rot1_re, d_im + rot1_im
        mean_re = (o_re + o1_re + o2_re) * (1.0 / 3.0)
        mean_im = (o_im + o1_im + o2_im) * (1.0 / 3.0)
        return concat([mean_re, mean_im], axis=1)


class MAGNN(BaseHGNN):
    full_graph = False

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_heads: int = 4,
                 encoder: str = "mean", attn_dim: int = 128,
                 cap_per_center: int = 24, dropout: float = 0.5,
                 seed: int = 0) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        if not dataset.metapaths:
            raise ValueError("MAGNN requires the dataset to define metapaths")
        rng = np.random.default_rng(seed)
        target_offset = dataset.graph.offset_of(dataset.target_type)
        n_target = dataset.graph.num_nodes_of(dataset.target_type)
        self.path_layers = ModuleList()
        for metapath in dataset.metapaths:
            if metapath[0] != dataset.target_type:
                continue
            instances = metapath_instances(dataset.graph, metapath,
                                           cap_per_center, rng)
            self.path_layers.append(MetapathInstanceLayer(
                hidden_dim, out_dim, num_heads, instances,
                target_offset, n_target, encoder=encoder))
        if not len(self.path_layers):
            raise ValueError("no metapath starts at the target type")
        self.semantic = SemanticAttention(out_dim, attn_dim)
        self.dropout = Dropout(dropout)
        self.out_proj = Linear(out_dim, out_dim)

    def encode(self, h0: Tensor) -> Tensor:
        h = self.dropout(h0)
        per_path = [layer(h) for layer in self.path_layers]
        combined = self.semantic(per_path)
        return self.out_proj(elu(combined))


__all__ = ["MAGNN", "MetapathInstanceLayer"]
