"""FastGTN — the efficient formulation of GTN (Yun et al., NeurIPS'19).

GTN learns soft selections of relation adjacency matrices whose products
form composite meta-paths.  The original composes sparse matrices
explicitly (the reason it is by far the slowest baseline in the paper's
Table II); FastGTN — published by the same authors — applies the selected
adjacencies to the feature matrix instead, channel by channel, which is
algebraically equivalent up to normalization.  We implement the FastGTN
form and keep the name GTN in experiment tables.
"""

from __future__ import annotations

from typing import List

import numpy as np
import scipy.sparse as sp

from ..datasets import HeteroDataset
from ..graph import row_normalized_adjacency
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    concat,
    elu,
    init,
    softmax,
    spmm,
)
from .base import BaseHGNN


def _relation_adjacencies(dataset: HeteroDataset) -> List[sp.csr_matrix]:
    """Row-normalized global adjacency per relation, plus identity."""
    graph = dataset.graph
    n = graph.num_nodes
    adjacencies = []
    for relation in graph.relations:
        pairs = graph.edges_global(relation)
        adj = sp.coo_matrix(
            (np.ones(pairs.shape[1]), (pairs[1], pairs[0])), shape=(n, n)
        ).tocsr()  # messages flow src -> dst, i.e. rows are destinations
        adjacencies.append(row_normalized_adjacency(adj))
    adjacencies.append(sp.eye(n, format="csr"))
    return adjacencies


class GTNChannel(Module):
    """One channel: K soft relation selections applied sequentially."""

    def __init__(self, adjacencies: List[sp.csr_matrix], depth: int) -> None:
        super().__init__()
        self.adjacencies = adjacencies
        self.depth = depth
        self.selection = Parameter(
            init.normal((depth, len(adjacencies)), std=0.1), name="selection")

    def forward(self, x: Tensor) -> Tensor:
        h = x
        weights = softmax(self.selection, axis=-1)  # (depth, R+1)
        for level in range(self.depth):
            mixed = None
            for rel, adj in enumerate(self.adjacencies):
                term = spmm(adj, h) * weights[level, rel].reshape(1, 1)
                mixed = term if mixed is None else mixed + term
            h = mixed
        return h


class FastGTN(BaseHGNN):
    full_graph = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_channels: int = 2, depth: int = 2,
                 dropout: float = 0.5) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        adjacencies = _relation_adjacencies(dataset)
        self.channels = ModuleList([
            GTNChannel(adjacencies, depth) for _ in range(num_channels)
        ])
        self.mix = Linear(hidden_dim * num_channels, out_dim)
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor) -> Tensor:
        h = self.dropout(h0)
        outputs = [channel(h) for channel in self.channels]
        return self.mix(elu(concat(outputs, axis=1)))


__all__ = ["FastGTN", "GTNChannel"]
