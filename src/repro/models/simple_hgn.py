"""SimpleHGN (Lv et al., KDD'21) — the HGB SOTA and AutoAC's main backbone.

GAT-style attention extended with (1) learnable edge-type embeddings inside
the attention logits, (2) node-level residual connections, and (3) an edge
attention residual ``alpha = (1-beta) * alpha + beta * alpha_prev`` carried
across layers.  Final-layer outputs are L2-normalized as in the HGB
implementation.

Aggregation fast path: the attention-weighted neighborhood sum
``out[v] = Σ_e α_e · proj[src_e]`` is expressed as a CSR×dense product
with a *fixed* sparsity pattern (edges grouped by destination, built once
per layer) and per-forward attention values, via
:func:`~repro.tensor.weighted_spmm`.  This replaces the ``np.add.at``
scatter — the slowest primitive in the engine — with compiled sparse
matmul kernels.  ``use_sparse=False`` restores the original
gather/scatter path; both produce identical results up to float
summation order.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..datasets import HeteroDataset
from ..graph.sampler import GraphView
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    SparseTensor,
    Tensor,
    attention_aggregate,
    elu,
    fused_kernels_enabled,
    gather_rows,
    head_dot,
    init,
    l2_normalize,
    leaky_relu,
    scatter_add,
    segment_softmax,
    weighted_spmm,
)
from .base import BaseHGNN, edge_arrays_with_self_loops


def build_attention_pattern(src: np.ndarray, dst: np.ndarray,
                            num_nodes: int
                            ) -> Tuple[np.ndarray, SparseTensor]:
    """Edge order + static CSR pattern for attention-weighted aggregation.

    Built once and shared by every layer of a model (the topology never
    changes across layers, only the attention values do).
    """
    order = np.argsort(dst, kind="stable")
    pattern = SparseTensor.from_edges(dst[order], src[order],
                                      shape=(num_nodes, num_nodes))
    return order, pattern


class SimpleHGNLayer(Module):
    def __init__(self, in_dim: int, out_dim: int, num_heads: int,
                 edge_dim: int, num_edge_types: int,
                 src: np.ndarray, dst: np.ndarray, etype: np.ndarray,
                 num_nodes: int, negative_slope: float = 0.05,
                 beta: float = 0.05, attn_dropout: float = 0.3,
                 residual: bool = True, use_sparse: bool = True,
                 aggregation: Optional[Tuple[np.ndarray,
                                             SparseTensor]] = None) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.src, self.dst, self.etype = src, dst, etype
        self.num_nodes = num_nodes
        self.negative_slope = negative_slope
        self.beta = beta
        self.proj = Linear(in_dim, out_dim, bias=False)
        self.edge_table = Parameter(
            init.xavier_uniform((num_edge_types, num_heads * edge_dim)),
            name="edge_table")
        self.edge_dim = edge_dim
        self.attn_src = Parameter(init.xavier_uniform((num_heads, self.head_dim)),
                                  name="attn_src")
        self.attn_dst = Parameter(init.xavier_uniform((num_heads, self.head_dim)),
                                  name="attn_dst")
        self.attn_edge = Parameter(init.xavier_uniform((num_heads, edge_dim)),
                                   name="attn_edge")
        self.residual_proj = Linear(in_dim, out_dim, bias=False) if residual else None
        self.attn_dropout = Dropout(attn_dropout)
        self.use_sparse = bool(use_sparse)
        if self.use_sparse:
            # static CSR pattern (dst rows, src cols); attention values are
            # filled in per forward through weighted_spmm
            if aggregation is None:
                aggregation = build_attention_pattern(src, dst, num_nodes)
            self._edge_order, self._pattern = aggregation

    def forward(self, h: Tensor, alpha_prev: Optional[Tensor] = None,
                topo: Optional[tuple] = None):
        """One layer over the constructor topology or, for the sampled
        path, an explicit ``(src, dst, etype, num_nodes, edge_order,
        pattern)`` tuple in view-local ids (``edge_order``/``pattern`` may
        be None to force the gather/scatter route).  Edge-type ids are
        shared with the full graph, so the edge-type table transfers."""
        if topo is None:
            src, dst, etype, n = self.src, self.dst, self.etype, self.num_nodes
            edge_order = self._edge_order if self.use_sparse else None
            pattern = self._pattern if self.use_sparse else None
        else:
            src, dst, etype, n, edge_order, pattern = topo
        projected = self.proj(h).reshape(n, self.num_heads, self.head_dim)
        score_src = head_dot(projected, self.attn_src)
        score_dst = head_dot(projected, self.attn_dst)
        edge_embed = gather_rows(self.edge_table, etype).reshape(
            -1, self.num_heads, self.edge_dim)
        score_edge = head_dot(edge_embed, self.attn_edge)  # (E, H)
        logits = leaky_relu(
            gather_rows(score_src, src) + gather_rows(score_dst, dst)
            + score_edge,
            self.negative_slope,
        )
        alpha = segment_softmax(logits, dst, n)
        if alpha_prev is not None and self.beta > 0:
            alpha = alpha * (1.0 - self.beta) + alpha_prev * self.beta
        alpha = self.attn_dropout(alpha)
        if self.use_sparse and pattern is not None:
            alpha_sorted = gather_rows(alpha, edge_order)  # (E, H)
            out = weighted_spmm(pattern, alpha_sorted, projected)
            out = out.reshape(n, self.num_heads * self.head_dim)
        elif fused_kernels_enabled():
            out = attention_aggregate(alpha, projected, src, dst,
                                      n).reshape(n, self.num_heads * self.head_dim)
        else:
            messages = gather_rows(projected, src) * alpha.reshape(
                -1, self.num_heads, 1)
            out = scatter_add(messages, dst, n).reshape(
                n, self.num_heads * self.head_dim)
        if self.residual_proj is not None:
            out = out + self.residual_proj(h)
        return out, alpha


class SimpleHGN(BaseHGNN):
    full_graph = True
    supports_sampling = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 edge_dim: int = 16, negative_slope: float = 0.05,
                 beta: float = 0.05, dropout: float = 0.5,
                 normalize_output: bool = True,
                 use_sparse: bool = True) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        src, dst, etype, num_edge_types = edge_arrays_with_self_loops(dataset)
        n = dataset.graph.num_nodes
        self.num_layers = num_layers
        self.normalize_output = normalize_output
        self.use_sparse = bool(use_sparse)
        aggregation = (build_attention_pattern(src, dst, n)
                       if use_sparse else None)
        dims = [hidden_dim] * num_layers + [out_dim]
        self.layers = ModuleList([
            SimpleHGNLayer(dims[i], dims[i + 1], num_heads, edge_dim,
                           num_edge_types, src, dst, etype, n,
                           negative_slope=negative_slope, beta=beta,
                           use_sparse=use_sparse, aggregation=aggregation)
            for i in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def _view_topology(self, view: GraphView) -> tuple:
        """The layer-shared topology tuple of a view, memoized on it.

        The attention CSR pattern depends only on the view's topology, so
        every SimpleHGN layer — and every SimpleHGN instance run over the
        same view — shares one pattern.
        """
        src, dst, etype, _ = view.edge_arrays_with_self_loops()
        n = view.num_nodes
        if self.use_sparse:
            edge_order, pattern = view.cached(
                ("attention_pattern",),
                lambda: build_attention_pattern(src, dst, n))
        else:
            edge_order = pattern = None
        return (src, dst, etype, n, edge_order, pattern)

    def encode(self, h0: Tensor, view: Optional[GraphView] = None) -> Tensor:
        topo = None if view is None else self._view_topology(view)
        h = h0
        alpha = None
        for index, layer in enumerate(self.layers):
            h, alpha = layer(self.dropout(h), alpha, topo)
            if index < self.num_layers - 1:
                h = elu(h)
        if self.normalize_output:
            h = l2_normalize(h, axis=-1)
        return h


__all__ = ["SimpleHGN", "SimpleHGNLayer", "build_attention_pattern"]
