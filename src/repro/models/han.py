"""HAN (Wang et al., WWW'19) — hierarchical attention over metapaths.

Node-level: a GAT layer per metapath over the metapath-induced graph of the
target type.  Semantic-level: attention across metapath-specific embeddings.
Only target-type nodes are embedded (``full_graph = False``).
"""

from __future__ import annotations

import numpy as np

from ..datasets import HeteroDataset
from ..graph import metapath_edge_list
from ..tensor import Dropout, ModuleList, Tensor, elu
from .base import BaseHGNN
from .gat import GATLayer
from .semantic import SemanticAttention


class HAN(BaseHGNN):
    full_graph = False

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 attn_dim: int = 128, dropout: float = 0.5) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        if not dataset.metapaths:
            raise ValueError("HAN requires the dataset to define metapaths")
        self.target_ids = dataset.graph.global_ids(dataset.target_type)
        n_target = self.target_ids.shape[0]
        self.num_layers = num_layers

        # per metapath: edge list with self loops over local target ids
        self.edge_lists = []
        for metapath in dataset.metapaths:
            if metapath[0] != dataset.target_type:
                continue
            src, dst, _ = metapath_edge_list(dataset.graph, metapath)
            loops = np.arange(n_target, dtype=np.int64)
            self.edge_lists.append((np.concatenate([src, loops]),
                                    np.concatenate([dst, loops])))
        if not self.edge_lists:
            raise ValueError("no metapath starts at the target type")

        dims = [hidden_dim] * num_layers + [out_dim]
        self.path_layers = ModuleList()
        for layer_index in range(num_layers):
            per_path = ModuleList([
                GATLayer(dims[layer_index], dims[layer_index + 1], num_heads,
                         src, dst, n_target)
                for (src, dst) in self.edge_lists
            ])
            self.path_layers.append(per_path)
        self.semantic = ModuleList([
            SemanticAttention(dims[layer_index + 1], attn_dim)
            for layer_index in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor) -> Tensor:
        h = h0[self.target_ids]
        for layer_index in range(self.num_layers):
            h = self.dropout(h)
            per_path = [layer(h) for layer in self.path_layers[layer_index]]
            h = self.semantic[layer_index](per_path)
            if layer_index < self.num_layers - 1:
                h = elu(h)
        return h


__all__ = ["HAN"]
