"""Semantic (inter-metapath) attention shared by HAN and MAGNN.

Given per-metapath embeddings ``z_p`` of the same node set, computes
``w_p = mean_v q^T tanh(W z_p[v] + b)``, softmaxes over metapaths, and
returns the weighted combination (Wang et al., WWW'19, Eq. 7-9).
"""

from __future__ import annotations

from typing import List

from ..tensor import Linear, Module, Parameter, Tensor, init, softmax, stack, tanh


class SemanticAttention(Module):
    def __init__(self, in_dim: int, attn_dim: int = 128) -> None:
        super().__init__()
        self.transform = Linear(in_dim, attn_dim)
        self.query = Parameter(init.xavier_uniform((attn_dim, 1)), name="query")

    def forward(self, per_path: List[Tensor]) -> Tensor:
        if not per_path:
            raise ValueError("semantic attention needs at least one metapath")
        if len(per_path) == 1:
            return per_path[0]
        scores = []
        for z in per_path:
            score = (tanh(self.transform(z)) @ self.query).mean()  # scalar
            scores.append(score)
        weights = softmax(stack(scores).reshape(1, -1), axis=-1)  # (1, P)
        combined = None
        for index, z in enumerate(per_path):
            term = z * weights[:, index].reshape(1, 1)
            combined = term if combined is None else combined + term
        return combined


__all__ = ["SemanticAttention"]
