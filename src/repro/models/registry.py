"""Model registry: name → constructor, with per-model default capabilities."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..datasets import HeteroDataset
from .base import BaseHGNN
from .fastgtn import FastGTN
from .gat import GAT
from .gatne import GATNE
from .gcn import GCN
from .han import HAN
from .hetgnn import HetGNN
from .hetsann import HetSANN
from .hgca import HGCA
from .hgt import HGT
from .magnn import MAGNN
from .mlp import MLP
from .simple_hgn import SimpleHGN

MODEL_REGISTRY: Dict[str, Callable[..., BaseHGNN]] = {
    "mlp": MLP,
    "gcn": GCN,
    "gat": GAT,
    "simple_hgn": SimpleHGN,
    "han": HAN,
    "magnn": MAGNN,
    "hgt": HGT,
    "hetsann": HetSANN,
    "gtn": FastGTN,
    "hetgnn": HetGNN,
    "hgca": HGCA,
    "gatne": GATNE,
}

#: models whose ``encode`` spans all nodes (usable for link prediction)
FULL_GRAPH_MODELS: List[str] = [
    name for name, cls in MODEL_REGISTRY.items() if cls.full_graph
]

#: the two backbones AutoAC is combined with in the paper
AUTOAC_BACKBONES: List[str] = ["magnn", "simple_hgn"]


def build_model(name: str, dataset: HeteroDataset, hidden_dim: int = 64,
                out_dim: int = 64, **kwargs) -> BaseHGNN:
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; "
                       f"available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](dataset, hidden_dim=hidden_dim,
                               out_dim=out_dim, **kwargs)


__all__ = ["MODEL_REGISTRY", "FULL_GRAPH_MODELS", "AUTOAC_BACKBONES",
           "build_model"]
