"""HetSANN (Hong et al., AAAI'20) — type-aware attention without metapaths.

Each relation carries its own source-side transform and attention vector;
attention is normalized per destination node across *all* incoming
relations jointly (the paper's "type-aware" softmax).
"""

from __future__ import annotations

import numpy as np

from ..datasets import HeteroDataset
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    elu,
    gather_rows,
    init,
    leaky_relu,
    scatter_add,
    segment_softmax,
)
from .base import BaseHGNN, edge_arrays_with_self_loops


class HetSANNLayer(Module):
    def __init__(self, in_dim: int, out_dim: int, num_heads: int,
                 num_edge_types: int, src: np.ndarray, dst: np.ndarray,
                 etype: np.ndarray, num_nodes: int,
                 negative_slope: float = 0.2,
                 attn_dropout: float = 0.3) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.src, self.dst, self.etype = src, dst, etype
        self.num_nodes = num_nodes
        self.num_edge_types = num_edge_types
        self.negative_slope = negative_slope
        self.rel_proj = ModuleList([Linear(in_dim, out_dim, bias=False)
                                    for _ in range(num_edge_types)])
        self.attn_src = Parameter(
            init.xavier_uniform((num_edge_types, num_heads, self.head_dim)),
            name="attn_src")
        self.attn_dst = Parameter(
            init.xavier_uniform((num_edge_types, num_heads, self.head_dim)),
            name="attn_dst")
        self.attn_dropout = Dropout(attn_dropout)

    def forward(self, h: Tensor) -> Tensor:
        n = self.num_nodes
        # relation-specific projections of all nodes (dense but few relations)
        projected = [proj(h).reshape(n, self.num_heads, self.head_dim)
                     for proj in self.rel_proj]
        # per-edge source message under its relation's transform
        msg = None
        logits = None
        for rel in range(self.num_edge_types):
            mask = self.etype == rel
            if not mask.any():
                continue
            rel_src = self.src[mask]
            rel_dst = self.dst[mask]
            h_rel = projected[rel]
            m = gather_rows(h_rel, rel_src)
            score = (m * self.attn_src[rel]).sum(axis=-1) + \
                (gather_rows(h_rel, rel_dst) * self.attn_dst[rel]).sum(axis=-1)
            if msg is None:
                msg, logits = [m], [score]
                self._order = [mask]
            else:
                msg.append(m)
                logits.append(score)
                self._order.append(mask)
        from ..tensor import concat
        all_msg = concat(msg, axis=0)
        all_logits = leaky_relu(concat(logits, axis=0), self.negative_slope)
        all_dst = np.concatenate([self.dst[mask] for mask in self._order])
        alpha = self.attn_dropout(segment_softmax(all_logits, all_dst, n))
        out = scatter_add(all_msg * alpha.reshape(-1, self.num_heads, 1),
                          all_dst, n)
        return out.reshape(n, self.num_heads * self.head_dim)


class HetSANN(BaseHGNN):
    full_graph = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 dropout: float = 0.5) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        src, dst, etype, num_edge_types = edge_arrays_with_self_loops(dataset)
        n = dataset.graph.num_nodes
        self.num_layers = num_layers
        dims = [hidden_dim] * num_layers + [out_dim]
        self.layers = ModuleList([
            HetSANNLayer(dims[i], dims[i + 1], num_heads, num_edge_types,
                         src, dst, etype, n)
            for i in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor) -> Tensor:
        h = h0
        for index, layer in enumerate(self.layers):
            h = layer(self.dropout(h))
            if index < self.num_layers - 1:
                h = elu(h)
        return h


__all__ = ["HetSANN", "HetSANNLayer"]
