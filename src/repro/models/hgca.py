"""HGCA (He et al., TNNLS'22) — contrastive attribute completion, simplified.

The published system unifies attribute completion and representation
learning with unsupervised contrastive alignment between a structure
encoder and an attribute encoder.  Substitution (recorded in DESIGN.md):
the structure encoder is a per-node embedding propagated by two rounds of
symmetric-normalized diffusion, the attribute encoder is the projected
zero-filled attribute matrix, and an InfoNCE loss over attributed nodes
aligns the two; classification reads the fused embedding.  The contrastive
term is exposed via ``auxiliary_loss`` and added to the trainer's loss.
"""

from __future__ import annotations

import numpy as np

from ..datasets import HeteroDataset
from ..graph import sym_normalized_adjacency
from ..tensor import (
    Dropout,
    Linear,
    Parameter,
    Tensor,
    concat,
    elu,
    init,
    l2_normalize,
    log,
    spmm,
)
from .base import BaseHGNN


class HGCA(BaseHGNN):
    full_graph = True

    #: trainer adds ``loss_weight * auxiliary_loss()`` when this is set
    has_auxiliary_loss = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, temperature: float = 0.5,
                 loss_weight: float = 0.5, dropout: float = 0.5,
                 num_contrast_samples: int = 128, seed: int = 0) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        n = dataset.graph.num_nodes
        self.adj = sym_normalized_adjacency(dataset.graph.adjacency(),
                                            self_loops=True)
        self.structure_embed = Parameter(init.normal((n, hidden_dim), std=0.1),
                                         name="structure_embed")
        self.attr_proj = Linear(hidden_dim, hidden_dim)
        self.fuse = Linear(2 * hidden_dim, out_dim)
        self.temperature = temperature
        self.loss_weight = loss_weight
        self.dropout = Dropout(dropout)
        rng = np.random.default_rng(seed)
        attributed = dataset.attributed_global_ids
        size = min(num_contrast_samples, attributed.shape[0])
        self.contrast_ids = rng.choice(attributed, size=size, replace=False)
        self._last_h0: Tensor | None = None

    def _structure(self) -> Tensor:
        z = self.structure_embed
        z = spmm(self.adj, z)
        z = spmm(self.adj, z)
        return z

    def encode(self, h0: Tensor) -> Tensor:
        self._last_h0 = h0
        structure = self._structure()
        attribute = self.attr_proj(self.dropout(h0))
        return self.fuse(elu(concat([structure, attribute], axis=1)))

    def auxiliary_loss(self) -> Tensor:
        """InfoNCE alignment of structure and attribute views (V⁺ sample)."""
        if self._last_h0 is None:
            raise RuntimeError("run encode() before auxiliary_loss()")
        ids = self.contrast_ids
        structure = l2_normalize(self._structure()[ids])
        attribute = l2_normalize(self.attr_proj(self._last_h0[ids]))
        logits = (structure @ attribute.transpose()) * (1.0 / self.temperature)
        # InfoNCE: diagonal entries are the positives
        from ..tensor import cross_entropy
        targets = np.arange(ids.shape[0])
        return cross_entropy(logits, targets) * self.loss_weight


__all__ = ["HGCA"]
