"""HetGNN (Zhang et al., KDD'19) — typed neighbor aggregation, simplified.

The published model samples neighbors by random walk with restart, encodes
per-type neighbor sets with Bi-LSTMs and combines types with attention.
Substitution (recorded in DESIGN.md): fixed-budget typed neighbor sampling
and a mean set encoder replace the Bi-LSTM (the set order is an artifact
in the original too); the type-level attention combine is kept.
"""

from __future__ import annotations

import numpy as np

from ..datasets import HeteroDataset
from ..graph import typed_neighbor_sample
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    concat,
    elu,
    gather_rows,
    init,
    leaky_relu,
    softmax,
    stack,
)
from .base import BaseHGNN


class HetGNN(BaseHGNN):
    full_graph = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, neighbor_budget: int = 10,
                 dropout: float = 0.5, seed: int = 0) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        rng = np.random.default_rng(seed)
        graph = dataset.graph
        # per node type: sampled neighbor table per neighbor type
        self.samples = {}
        for node_type in graph.node_types:
            self.samples[node_type] = typed_neighbor_sample(
                graph, node_type, neighbor_budget, rng)
        self.type_names = list(graph.node_types)
        self.content_proj = Linear(hidden_dim, out_dim)
        self.neighbor_proj = ModuleList([Linear(hidden_dim, out_dim)
                                         for _ in self.type_names])
        self.type_attention = Parameter(init.xavier_uniform((2 * out_dim, 1)),
                                        name="type_attention")
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor) -> Tensor:
        graph = self.dataset.graph
        h0 = self.dropout(h0)
        self_embed = self.content_proj(h0)  # (N, out)
        per_type_rows = []
        for node_type in self.type_names:
            tables = self.samples[node_type]
            # mean-encode each neighbor type's sampled set
            type_embeds = []
            for type_index, neighbor_type in enumerate(self.type_names):
                table = tables[neighbor_type]  # (n_type, budget) global ids
                flat = gather_rows(h0, table.reshape(-1))
                pooled = flat.reshape(table.shape[0], table.shape[1],
                                      self.hidden_dim).mean(axis=1)
                type_embeds.append(self.neighbor_proj[type_index](pooled))
            own = self_embed[graph.global_ids(node_type)]
            # attention over {self} ∪ neighbor types
            candidates = [own] + type_embeds
            scores = []
            for candidate in candidates:
                pair = concat([own, candidate], axis=1)
                scores.append(leaky_relu(pair @ self.type_attention, 0.2))
            score_mat = concat(scores, axis=1)  # (n_type_nodes, T+1)
            weights = softmax(score_mat, axis=-1)
            mixed = None
            for index, candidate in enumerate(candidates):
                term = candidate * weights[:, index].reshape(-1, 1)
                mixed = term if mixed is None else mixed + term
            per_type_rows.append(mixed)
        return concat(per_type_rows, axis=0)  # global order = type order


__all__ = ["HetGNN"]
