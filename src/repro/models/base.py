"""Shared plumbing for the heterogeneous GNN zoo.

Every model consumes the global initial embedding ``h0`` (``(N, hidden)``,
produced by a feature builder) and exposes:

* ``encode(h0)`` — node representations; ``(N, d)`` for full-graph models,
  ``(N_target, d)`` for metapath models that only embed the target type;
* ``forward(h0)`` — classification logits over the target type.

Link prediction uses ``encode`` directly (only full-graph models qualify).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..datasets import HeteroDataset
from ..tensor import Linear, Module, Tensor


class BaseHGNN(Module):
    """Base heterogeneous GNN: encode + target-type classifier head."""

    #: whether ``encode`` covers all global nodes (needed for link prediction)
    full_graph: bool = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 out_dim: int) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.out_dim = out_dim
        self.classifier = Linear(out_dim, dataset.num_classes)

    # ------------------------------------------------------------------
    def encode(self, h0: Tensor) -> Tensor:
        raise NotImplementedError

    def target_embeddings(self, h0: Tensor) -> Tensor:
        """Representations of the target type, shape ``(N_target, out_dim)``."""
        encoded = self.encode(h0)
        if self.full_graph:
            return encoded[self.dataset.graph.global_ids(self.dataset.target_type)]
        return encoded

    def forward(self, h0: Tensor) -> Tensor:
        return self.classifier(self.target_embeddings(h0))


def edge_arrays_with_self_loops(
    dataset: HeteroDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Global ``(src, dst, etype)`` arrays plus a self-loop pseudo-relation.

    Self loops get their own edge-type id (``num_relations``), the HGB
    convention SimpleHGN relies on.  Returns ``(src, dst, etype,
    num_edge_types)``.
    """
    graph = dataset.graph
    src, dst, etype = graph.all_edges_global()
    loops = np.arange(graph.num_nodes, dtype=np.int64)
    src = np.concatenate([src, loops])
    dst = np.concatenate([dst, loops])
    etype = np.concatenate([etype,
                            np.full(graph.num_nodes, graph.num_relations,
                                    dtype=np.int64)])
    return src, dst, etype, graph.num_relations + 1


__all__ = ["BaseHGNN", "edge_arrays_with_self_loops"]
