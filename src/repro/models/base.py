"""Shared plumbing for the heterogeneous GNN zoo.

Every model consumes the global initial embedding ``h0`` (``(N, hidden)``,
produced by a feature builder) and exposes:

* ``encode(h0)`` — node representations; ``(N, d)`` for full-graph models,
  ``(N_target, d)`` for metapath models that only embed the target type;
* ``forward(h0)`` — classification logits over the target type.

Link prediction uses ``encode`` directly (only full-graph models qualify).

Sampled execution: models that declare ``supports_sampling = True``
additionally accept a :class:`~repro.graph.GraphView` — ``encode(h0_view,
view=view)`` runs the same layer math over the view's sub-operators and
returns ``(V, d)`` where ``V`` is the view size, with the batch's seed
nodes in the first rows.  Full-graph-only models keep the default
``supports_sampling = False`` and raise a clear error if handed a view.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..datasets import HeteroDataset
from ..graph.sampler import GraphView
from ..tensor import Linear, Module, Tensor


class BaseHGNN(Module):
    """Base heterogeneous GNN: encode + target-type classifier head."""

    #: whether ``encode`` covers all global nodes (needed for link prediction)
    full_graph: bool = True
    #: whether ``encode``/``forward`` accept a sampled ``view=`` (mini-batch
    #: execution); models without a view-aware message-passing path keep
    #: False and are rejected by the mini-batch trainer up front
    supports_sampling: bool = False

    def __init__(self, dataset: HeteroDataset, hidden_dim: int,
                 out_dim: int) -> None:
        super().__init__()
        self.dataset = dataset
        self.hidden_dim = hidden_dim
        self.out_dim = out_dim
        self.classifier = Linear(out_dim, dataset.num_classes)

    # ------------------------------------------------------------------
    def encode(self, h0: Tensor,
               view: Optional[GraphView] = None) -> Tensor:
        raise NotImplementedError

    def _require_sampling(self) -> None:
        if not self.supports_sampling:
            raise ValueError(
                f"{type(self).__name__} is full-graph only "
                f"(supports_sampling=False); it cannot run on a sampled "
                f"GraphView")

    def target_embeddings(self, h0: Tensor,
                          view: Optional[GraphView] = None) -> Tensor:
        """Target-type representations.

        Full graph: ``(N_target, out_dim)``.  With a view whose seeds are
        target-type nodes: ``(B, out_dim)`` — the seed rows, which the
        sampler places first in the view.
        """
        if view is not None:
            self._require_sampling()
            encoded = self.encode(h0, view=view)
            return encoded[view.seed_local]
        encoded = self.encode(h0)
        if self.full_graph:
            return encoded[self.dataset.graph.global_ids(self.dataset.target_type)]
        return encoded

    def forward(self, h0: Tensor,
                view: Optional[GraphView] = None) -> Tensor:
        return self.classifier(self.target_embeddings(h0, view=view))


def edge_arrays_with_self_loops(
    dataset: HeteroDataset,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Global ``(src, dst, etype)`` arrays plus a self-loop pseudo-relation.

    Self loops get their own edge-type id (``num_relations``), the HGB
    convention SimpleHGN relies on.  Returns ``(src, dst, etype,
    num_edge_types)``.  The arrays are built once per graph and cached on
    it (see :meth:`repro.graph.HeteroGraph.edge_arrays_with_self_loops`) —
    every edge-list model constructed over the same topology shares them;
    sampled views cache their own analogue per view.
    """
    return dataset.graph.edge_arrays_with_self_loops()


__all__ = ["BaseHGNN", "edge_arrays_with_self_loops"]
