"""``repro.models`` — the heterogeneous GNN zoo of the paper's baselines."""

from .base import BaseHGNN, edge_arrays_with_self_loops
from .fastgtn import FastGTN
from .gat import GAT, GATLayer
from .gatne import GATNE
from .gcn import GCN
from .han import HAN
from .hetgnn import HetGNN
from .hetsann import HetSANN
from .hgca import HGCA
from .hgt import HGT
from .magnn import MAGNN
from .mlp import MLP
from .registry import (
    AUTOAC_BACKBONES,
    FULL_GRAPH_MODELS,
    MODEL_REGISTRY,
    build_model,
)
from .semantic import SemanticAttention
from .simple_hgn import SimpleHGN

__all__ = [
    "BaseHGNN",
    "edge_arrays_with_self_loops",
    "MLP",
    "GCN",
    "GAT",
    "GATLayer",
    "SimpleHGN",
    "HAN",
    "MAGNN",
    "HGT",
    "HetSANN",
    "FastGTN",
    "HetGNN",
    "HGCA",
    "GATNE",
    "SemanticAttention",
    "MODEL_REGISTRY",
    "FULL_GRAPH_MODELS",
    "AUTOAC_BACKBONES",
    "build_model",
]
