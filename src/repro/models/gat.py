"""GAT (Veličković et al.) on the homogenized heterogeneous graph.

Multi-head additive attention over the global edge list (self loops
included), matching the HGB configuration (LeakyReLU slope ``s`` is a
hyperparameter per dataset in the paper's Appendix B).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..datasets import HeteroDataset
from ..graph.sampler import GraphView
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    attention_aggregate,
    elu,
    fused_kernels_enabled,
    gather_rows,
    head_dot,
    init,
    leaky_relu,
    scatter_add,
    segment_softmax,
)
from .base import BaseHGNN, edge_arrays_with_self_loops


class GATLayer(Module):
    """One multi-head GAT layer over a fixed global edge list."""

    def __init__(self, in_dim: int, out_dim: int, num_heads: int,
                 src: np.ndarray, dst: np.ndarray, num_nodes: int,
                 negative_slope: float = 0.2,
                 attn_dropout: float = 0.3) -> None:
        super().__init__()
        if out_dim % num_heads != 0:
            raise ValueError("out_dim must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = out_dim // num_heads
        self.src, self.dst, self.num_nodes = src, dst, num_nodes
        self.negative_slope = negative_slope
        self.proj = Linear(in_dim, out_dim, bias=False)
        self.attn_src = Parameter(init.xavier_uniform((num_heads, self.head_dim)),
                                  name="attn_src")
        self.attn_dst = Parameter(init.xavier_uniform((num_heads, self.head_dim)),
                                  name="attn_dst")
        self.attn_dropout = Dropout(attn_dropout)

    def forward(self, h: Tensor,
                edges: Optional[Tuple[np.ndarray, np.ndarray, int]] = None
                ) -> Tensor:
        """One attention layer over the constructor's edges — or, for the
        sampled path, over an explicit ``(src, dst, num_nodes)`` triple in
        view-local ids (the weights are topology-free, so they transfer)."""
        if edges is None:
            src, dst, n = self.src, self.dst, self.num_nodes
        else:
            src, dst, n = edges
        projected = self.proj(h).reshape(n, self.num_heads, self.head_dim)
        score_src = head_dot(projected, self.attn_src)  # (N, H)
        score_dst = head_dot(projected, self.attn_dst)
        edge_score = leaky_relu(
            gather_rows(score_src, src) + gather_rows(score_dst, dst),
            self.negative_slope,
        )
        alpha = segment_softmax(edge_score, dst, n)  # (E, H)
        alpha = self.attn_dropout(alpha)
        if fused_kernels_enabled():
            # one node for gather × alpha × scatter (no (E, H, d) graph
            # intermediates); values match the composite
            out = attention_aggregate(alpha, projected, src, dst, n)
        else:
            messages = gather_rows(projected, src) * alpha.reshape(
                -1, self.num_heads, 1)
            out = scatter_add(messages, dst, n)
        return out.reshape(n, self.num_heads * self.head_dim)


class GAT(BaseHGNN):
    full_graph = True
    supports_sampling = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 negative_slope: float = 0.05, dropout: float = 0.5) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        src, dst, _, _ = edge_arrays_with_self_loops(dataset)
        n = dataset.graph.num_nodes
        self.num_layers = num_layers
        dims = [hidden_dim] * num_layers + [out_dim]
        self.layers = ModuleList([
            GATLayer(dims[i], dims[i + 1], num_heads, src, dst, n,
                     negative_slope=negative_slope)
            for i in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor, view: Optional[GraphView] = None) -> Tensor:
        edges = None
        if view is not None:
            src, dst, _, _ = view.edge_arrays_with_self_loops()
            edges = (src, dst, view.num_nodes)
        h = h0
        for index, layer in enumerate(self.layers):
            h = layer(self.dropout(h), edges)
            if index < self.num_layers - 1:
                h = elu(h)
        return h


__all__ = ["GAT", "GATLayer"]
