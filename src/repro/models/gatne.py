"""GATNE (Cen et al., KDD'19) — multiplex network embedding, simplified.

The published GATNE-T learns a base embedding plus per-edge-type embeddings
aggregated from neighbors and combined with self-attention, trained by
heterogeneous skip-gram over random walks.  Substitution (recorded in
DESIGN.md): the same base + per-relation aggregated edge embeddings with
self-attention, but trained directly by the link-prediction BCE objective
of the harness (the walk-based pretext only matters at web scale).  Node
attributes are ignored, as in GATNE-T.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..datasets import HeteroDataset
from ..graph import row_normalized_adjacency
from ..tensor import (
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    init,
    softmax,
    spmm,
    stack,
    tanh,
)
from .base import BaseHGNN


class GATNE(BaseHGNN):
    full_graph = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, edge_dim: int = 16,
                 attn_dim: int = 16) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        graph = dataset.graph
        n = graph.num_nodes
        self.base = Parameter(init.normal((n, out_dim), std=0.1), name="base")
        self.edge_embeds = ModuleList()
        self.rel_adjs = []
        for relation in graph.relations:
            pairs = graph.edges_global(relation)
            adj = sp.coo_matrix(
                (np.ones(pairs.shape[1]), (pairs[1], pairs[0])), shape=(n, n)
            ).tocsr()
            self.rel_adjs.append(row_normalized_adjacency(adj))
        self.num_rel = len(self.rel_adjs)
        self.edge_table = Parameter(init.normal((n, edge_dim), std=0.1),
                                    name="edge_table")
        self.attn_w = Parameter(init.xavier_uniform((edge_dim, attn_dim)),
                                name="attn_w")
        self.attn_q = Parameter(init.xavier_uniform((attn_dim, 1)),
                                name="attn_q")
        self.out_transform = Linear(edge_dim, out_dim, bias=False)

    def encode(self, h0: Tensor) -> Tensor:
        """Embeddings ``base + W^T attn-combined relation views`` (ignores h0)."""
        views = [spmm(adj, self.edge_table) for adj in self.rel_adjs]
        stacked = stack(views, axis=1)  # (N, R, edge_dim)
        scores = tanh(stacked @ self.attn_w) @ self.attn_q  # (N, R, 1)
        weights = softmax(scores.reshape(-1, self.num_rel), axis=-1)
        combined = (stacked * weights.reshape(-1, self.num_rel, 1)).sum(axis=1)
        return self.base + self.out_transform(combined)


__all__ = ["GATNE"]
