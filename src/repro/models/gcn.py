"""GCN (Kipf & Welling) on the homogenized heterogeneous graph.

The HGB benchmark's strongest "simple" baseline: node types are ignored,
messages flow over the symmetric renormalized adjacency.
"""

from __future__ import annotations

from ..datasets import HeteroDataset
from ..graph import sym_normalized_adjacency
from ..tensor import Dropout, Linear, ModuleList, Tensor, relu, spmm
from .base import BaseHGNN


class GCN(BaseHGNN):
    full_graph = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2,
                 dropout: float = 0.5) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        self.num_layers = num_layers
        self.adj = sym_normalized_adjacency(dataset.graph.adjacency(),
                                            self_loops=True)
        dims = [hidden_dim] * num_layers + [out_dim]
        self.layers = ModuleList([
            Linear(dims[i], dims[i + 1]) for i in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor) -> Tensor:
        h = h0
        for index, layer in enumerate(self.layers):
            h = spmm(self.adj, layer(self.dropout(h)))
            if index < self.num_layers - 1:
                h = relu(h)
        return h


__all__ = ["GCN"]
