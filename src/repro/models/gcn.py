"""GCN (Kipf & Welling) on the homogenized heterogeneous graph.

The HGB benchmark's strongest "simple" baseline: node types are ignored,
messages flow over the symmetric renormalized adjacency.  The operator is
fetched from the graph's LRU cache as a CSR
:class:`~repro.tensor.SparseTensor` and applied through the autograd-aware
:func:`~repro.tensor.spmm` fast path; ``use_sparse=False`` falls back to a
dense ``(N, N)`` matmul (validation/debugging only — same values, O(N²)
memory).
"""

from __future__ import annotations

from typing import Optional

from ..datasets import HeteroDataset
from ..graph.sampler import GraphView
from ..tensor import Dropout, Linear, ModuleList, Tensor, relu, spmm
from .base import BaseHGNN


class GCN(BaseHGNN):
    full_graph = True
    supports_sampling = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2,
                 dropout: float = 0.5, use_sparse: bool = True) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        self.num_layers = num_layers
        self.use_sparse = bool(use_sparse)
        self.adj = dataset.graph.normalized_adjacency(mode="sym",
                                                      self_loops=True)
        self._adj_dense = None if self.use_sparse else Tensor(self.adj.to_dense())
        dims = [hidden_dim] * num_layers + [out_dim]
        self.layers = ModuleList([
            Linear(dims[i], dims[i + 1]) for i in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def _propagate(self, h: Tensor) -> Tensor:
        if self.use_sparse:
            return spmm(self.adj, h)
        return self._adj_dense @ h

    def encode(self, h0: Tensor, view: Optional[GraphView] = None) -> Tensor:
        if view is not None:
            # normalized sub-adjacency, memoized on the (immutable) view —
            # always the CSR path: a view is batch-fan-out sized by design
            adj = view.normalized_adjacency(mode="sym", self_loops=True)
        h = h0
        for index, layer in enumerate(self.layers):
            h = layer(self.dropout(h))
            h = spmm(adj, h) if view is not None else self._propagate(h)
            if index < self.num_layers - 1:
                h = relu(h)
        return h


__all__ = ["GCN"]
