"""HGT (Hu et al., WWW'20) — heterogeneous graph transformer, compact form.

Type-specific K/Q/V projections, per-relation attention priors and
per-relation diagonal key/message scalings (the full HGT uses dense
per-relation matrices; diagonal scaling keeps the parameter count sane at
this scale while staying relation-aware), softmax attention per destination
node, and a type-specific output projection with residual.
"""

from __future__ import annotations

import math

import numpy as np

from ..datasets import HeteroDataset
from ..tensor import (
    Dropout,
    Linear,
    Module,
    ModuleList,
    Parameter,
    Tensor,
    elu,
    gather_rows,
    init,
    scatter_add,
    segment_softmax,
)
from .base import BaseHGNN, edge_arrays_with_self_loops


class HGTLayer(Module):
    def __init__(self, dim: int, num_heads: int, num_node_types: int,
                 num_edge_types: int, src: np.ndarray, dst: np.ndarray,
                 etype: np.ndarray, node_type_index: np.ndarray,
                 num_nodes: int, attn_dropout: float = 0.3) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.src, self.dst, self.etype = src, dst, etype
        self.node_type_index = node_type_index
        self.num_nodes = num_nodes
        self.scale = 1.0 / math.sqrt(self.head_dim)

        self.key_proj = ModuleList([Linear(dim, dim, bias=False)
                                    for _ in range(num_node_types)])
        self.query_proj = ModuleList([Linear(dim, dim, bias=False)
                                      for _ in range(num_node_types)])
        self.value_proj = ModuleList([Linear(dim, dim, bias=False)
                                      for _ in range(num_node_types)])
        self.out_proj = ModuleList([Linear(dim, dim, bias=False)
                                    for _ in range(num_node_types)])
        self.rel_prior = Parameter(init.ones((num_edge_types, num_heads)),
                                   name="rel_prior")
        self.rel_key_scale = Parameter(init.ones((num_edge_types, num_heads,
                                                  self.head_dim)),
                                       name="rel_key_scale")
        self.rel_msg_scale = Parameter(init.ones((num_edge_types, num_heads,
                                                  self.head_dim)),
                                       name="rel_msg_scale")
        self.attn_dropout = Dropout(attn_dropout)
        self.skip = Parameter(init.ones((num_node_types,)), name="skip")

    def _typed_projection(self, h: Tensor, projections: ModuleList) -> Tensor:
        """Apply the type-specific projection to every node."""
        pieces = None
        for type_id, proj in enumerate(projections):
            mask = (self.node_type_index == type_id).astype(np.float64)
            term = proj(h) * Tensor(mask.reshape(-1, 1))
            pieces = term if pieces is None else pieces + term
        return pieces

    def forward(self, h: Tensor) -> Tensor:
        n = self.num_nodes
        keys = self._typed_projection(h, self.key_proj).reshape(
            n, self.num_heads, self.head_dim)
        queries = self._typed_projection(h, self.query_proj).reshape(
            n, self.num_heads, self.head_dim)
        values = self._typed_projection(h, self.value_proj).reshape(
            n, self.num_heads, self.head_dim)

        k_edge = gather_rows(keys, self.src) * gather_rows(self.rel_key_scale,
                                                           self.etype)
        q_edge = gather_rows(queries, self.dst)
        prior = gather_rows(self.rel_prior, self.etype)
        logits = (k_edge * q_edge).sum(axis=-1) * self.scale * prior
        alpha = self.attn_dropout(segment_softmax(logits, self.dst, n))
        messages = gather_rows(values, self.src) * gather_rows(
            self.rel_msg_scale, self.etype)
        aggregated = scatter_add(messages * alpha.reshape(-1, self.num_heads, 1),
                                 self.dst, n).reshape(n, -1)
        out = self._typed_projection(elu(aggregated), self.out_proj)
        # sigmoid-gated residual per node type (HGT's skip connection)
        from ..tensor import gather_rows as t_gather, sigmoid
        gate = t_gather(sigmoid(self.skip), self.node_type_index).reshape(-1, 1)
        return out * gate + h * (1.0 - gate)


class HGT(BaseHGNN):
    full_graph = True

    def __init__(self, dataset: HeteroDataset, hidden_dim: int = 64,
                 out_dim: int = 64, num_layers: int = 2, num_heads: int = 4,
                 dropout: float = 0.5) -> None:
        super().__init__(dataset, hidden_dim, out_dim)
        if hidden_dim != out_dim:
            raise ValueError("HGT keeps one width; set hidden_dim == out_dim")
        src, dst, etype, num_edge_types = edge_arrays_with_self_loops(dataset)
        n = dataset.graph.num_nodes
        self.layers = ModuleList([
            HGTLayer(hidden_dim, num_heads, len(dataset.graph.node_types),
                     num_edge_types, src, dst, etype,
                     dataset.graph.node_type_index, n)
            for _ in range(num_layers)
        ])
        self.dropout = Dropout(dropout)

    def encode(self, h0: Tensor) -> Tensor:
        h = h0
        for layer in self.layers:
            h = layer(self.dropout(h))
        return h


__all__ = ["HGT", "HGTLayer"]
