"""Property/fuzz tests: the journal heals any torn tail, resume is exact.

The scheduler's crash-safety claim is quantified over *every* possible
kill point: a run killed mid-write leaves a journal truncated at an
arbitrary byte offset, and (a) the readers must parse the surviving
prefix without error, and (b) resuming from it must reproduce the
uninterrupted run's leaderboard bit for bit.

Hypothesis-style, dependency-free: the read-level property is checked
exhaustively at every byte offset (parsing is cheap); the resume-level
property — each case re-executes real trials — is checked at every
record boundary plus a seeded random sample of mid-record offsets.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autotune import (
    DatasetRef,
    TrialJournal,
    TrialScheduler,
    TuneTask,
    build_strategy,
)


def make_scheduler(journal, resume=False, seed=0):
    """The reference run: a real ASHA ladder on the tiny IMDB task."""
    task = TuneTask(dataset=DatasetRef("imdb", "tiny", 0), model_name="gcn",
                    hidden_dim=16, out_dim=16, num_slots=4, max_budget=4)
    strategy = build_strategy("asha", num_slots=task.num_slots,
                              num_ops=task.num_ops,
                              max_budget=task.max_budget, seed=seed,
                              num_trials=4, eta=2, min_budget=2)
    return TrialScheduler(task, strategy, journal=str(journal),
                          resume=resume)


@pytest.fixture(scope="module")
def reference_run(tmp_path_factory):
    """One uninterrupted run: journal bytes + the leaderboard to match."""
    journal = tmp_path_factory.mktemp("fuzz") / "reference.jsonl"
    report = make_scheduler(journal).run()
    data = journal.read_bytes()
    leaderboard = [(r.trial_id, r.score, r.budget_used)
                   for r in report.leaderboard()]
    return {"data": data, "leaderboard": leaderboard,
            "total": len(report.results)}


def header_end(data: bytes) -> int:
    return data.index(b"\n") + 1


class TestReadHealsEveryTruncation:
    def test_every_byte_offset_parses_to_a_prefix(self, reference_run,
                                                  tmp_path):
        data = reference_run["data"]
        path = tmp_path / "cut.jsonl"
        path.write_bytes(data)
        reference = TrialJournal.read_all(path)
        full_trials = [json.dumps(t, sort_keys=True)
                       for t in reference.trials]

        for offset in range(header_end(data), len(data) + 1):
            path.write_bytes(data[:offset])
            contents = TrialJournal.read_all(path)  # must never raise
            got = [json.dumps(t, sort_keys=True) for t in contents.trials]
            # surviving trials are an exact prefix of the full run's
            assert got == full_trials[:len(got)], f"offset {offset}"
            # timelines only ever belong to surviving trial ids
            trial_ids = {t["trial"]["trial_id"] for t in contents.trials}
            assert set(contents.timelines) <= trial_ids, f"offset {offset}"
            # the footer is all-or-nothing
            if contents.footer is not None:
                assert contents.footer == reference.footer

    def test_torn_header_refuses_to_parse(self, reference_run, tmp_path):
        data = reference_run["data"]
        path = tmp_path / "torn_header.jsonl"
        # offsets that tear the header JSON itself (header_end - 1 would
        # only tear the newline, leaving a complete — readable — header)
        for offset in (1, header_end(data) // 2, header_end(data) - 2):
            path.write_bytes(data[:offset])
            with pytest.raises(ValueError, match="not a trial journal"):
                TrialJournal.read_all(path)


class TestResumeHealsEveryKill:
    def kill_offsets(self, data: bytes):
        """Every record boundary + a seeded sample of mid-record tears."""
        boundaries = [i + 1 for i, byte in enumerate(data)
                      if byte == ord("\n")]
        start = header_end(data)
        rng = np.random.default_rng(0xFA22)
        interior = sorted(int(o) for o in
                          rng.integers(start, len(data), size=6))
        return sorted(set(boundaries + interior + [start, len(data)]))

    def test_resume_reproduces_the_leaderboard_from_any_kill(
            self, reference_run, tmp_path):
        data = reference_run["data"]
        for offset in self.kill_offsets(data):
            journal = tmp_path / f"kill_{offset}.jsonl"
            journal.write_bytes(data[:offset])
            surviving = len(TrialJournal.read_all(journal).trials)

            report = make_scheduler(journal, resume=True).run()
            got = [(r.trial_id, r.score, r.budget_used)
                   for r in report.leaderboard()]
            assert got == reference_run["leaderboard"], f"offset {offset}"
            assert report.stats.replayed == surviving, f"offset {offset}"
            assert (report.stats.replayed + report.stats.executed
                    == reference_run["total"]), f"offset {offset}"

            # the healed journal parses clean and carries the full run
            healed = TrialJournal.read_all(journal)
            assert len(healed.trials) == reference_run["total"]
            assert healed.footer is not None

    def test_resume_after_kill_during_resume(self, reference_run, tmp_path):
        """Two nested kills: truncate, resume, truncate the healed
        journal mid-record, resume again — still the same leaderboard."""
        data = reference_run["data"]
        journal = tmp_path / "double_kill.jsonl"
        first_cut = header_end(data) + (len(data) - header_end(data)) // 3
        journal.write_bytes(data[:first_cut])
        make_scheduler(journal, resume=True).run()

        healed = journal.read_bytes()
        journal.write_bytes(healed[:len(healed) - 11])  # tear the tail
        report = make_scheduler(journal, resume=True).run()
        got = [(r.trial_id, r.score, r.budget_used)
               for r in report.leaderboard()]
        assert got == reference_run["leaderboard"]
